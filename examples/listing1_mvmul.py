#!/usr/bin/env python3
"""The paper's Listing 1 application, end to end.

Listing 1 of the paper shows the *entire* code change GPS asks of a
programmer: allocate with ``cudaMallocGPS`` and bracket iteration 0 with
``cuGPSTrackingStart()``/``cuGPSTrackingStop()``. This example runs the
same iterative matrix-vector multiply through the simulator and narrates
what GPS does under the hood at each step.

Run:  python examples/listing1_mvmul.py
"""

from __future__ import annotations

import repro
from repro.harness.report import format_table
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    config = repro.default_system(4)
    workload = repro.get_workload("mvmul")
    program = workload.build(4, scale=1.0, iterations=10)

    print("Listing 1 structure:")
    print("  cudaMallocGPS(mat);  cudaMallocGPS(vec1);  cudaMallocGPS(vec2);")
    print("  iter 0: cuGPSTrackingStart();  mvmul x2;  cuGPSTrackingStop();")
    print("  iters 1..N: mvmul(mat, vec1, vec2); mvmul(mat, vec2, vec1);")
    print()

    result = repro.simulate(program, "gps", config)
    tracking = result.extras["tracking"]
    print("What the profiling phase discovered:")
    print(f"  GPS pages under management : {tracking['pages']}")
    print(f"  unsubscriptions performed  : {tracking['unsubscribed']}")
    print(f"  pages demoted (1 sub)      : {tracking['demoted']}  <- the matrix rows")
    print(f"  still-replicated pages     : {sum(result.subscriber_histogram.values())}"
          f"  <- the vectors, all-to-all {dict(result.subscriber_histogram)}")
    print()

    rows = []
    single = repro.simulate(
        workload.build(1, scale=1.0, iterations=10), "memcpy", repro.default_system(1)
    )
    for paradigm in repro.FIGURE8_ORDER:
        multi = repro.simulate(program, paradigm, config)
        rows.append(
            [
                repro.LABELS[paradigm],
                fmt_time(multi.total_time),
                single.total_time / multi.total_time,
                fmt_bytes(multi.interconnect_bytes),
            ]
        )
    print(
        format_table(
            ["paradigm", "time", "speedup", "interconnect"],
            rows,
            title="Listing 1 mvmul on 4 GPUs (10 iterations)",
        )
    )
    print()
    print("GPS broadcasts only the small output-vector slices each iteration;")
    print("the matrix — the bulk of the data — was demoted to conventional")
    print("pages after profiling and never touches the interconnect.")


if __name__ == "__main__":
    main()
