#!/usr/bin/env python3
"""Sweep interconnects and GPU counts: where does each paradigm pay off?

Reproduces the flavour of the paper's Figures 12 and 13 on a configurable
subset: every PCIe generation plus NVLink, for 4 and (optionally) 16 GPUs.

Run:  python examples/interconnect_comparison.py [--sixteen]
"""

from __future__ import annotations

import argparse

import repro
from repro.harness.report import format_table, geomean

APPS = ("jacobi", "pagerank", "ct")
PARADIGMS = ("memcpy", "rdl", "gps", "infinite")
LINKS = ("pcie3", "pcie4", "pcie5", "pcie6", "nvlink2")


def sweep(num_gpus: int, scale: float, iterations: int) -> None:
    """Print the geomean speedup matrix for one GPU count."""
    rows = []
    for link_name in LINKS:
        link = repro.LINKS_BY_NAME[link_name]
        config = repro.default_system(num_gpus, link)
        row = [link.name]
        for paradigm in PARADIGMS:
            speedups = []
            for app in APPS:
                workload = repro.get_workload(app)
                speedup, _, _ = repro.speedup_over_single_gpu(
                    lambda n: workload.build(n, scale=scale, iterations=iterations),
                    paradigm,
                    config,
                )
                speedups.append(speedup)
            row.append(geomean(speedups))
        rows.append(row)
    print(
        format_table(
            ["interconnect"] + [repro.LABELS[p] for p in PARADIGMS],
            rows,
            title=f"Geomean speedup over 1 GPU ({num_gpus} GPUs, {', '.join(APPS)})",
        )
    )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sixteen", action="store_true", help="also sweep a 16-GPU system"
    )
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--iterations", type=int, default=8)
    args = parser.parse_args()

    sweep(4, args.scale, args.iterations)
    if args.sixteen:
        sweep(16, args.scale, args.iterations)
    print("Note how only GPS converts added bandwidth into scaling —")
    print("the paper's Figure 13 observation.")


if __name__ == "__main__":
    main()
