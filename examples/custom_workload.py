#!/usr/bin/env python3
"""Authoring a custom workload: a 2D halo-exchange wave solver.

Shows the trace-program API directly — buffers, access ranges, phases —
without going through the built-in workload generators, then compares GPS
against memcpy on the custom trace. Use this as the template for porting
your own application's communication pattern onto the simulator.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

import repro
from repro.harness.report import format_table
from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from repro.trace.records import AccessRange, MemOp, PatternKind, PatternSpec
from repro.units import MiB, fmt_time

NUM_GPUS = 4
FIELD = 16 * MiB
HALO = 256 * 1024
ITERATIONS = 8


def shard(gpu: int) -> tuple:
    """Byte range of one GPU's slab (equal split, line-aligned)."""
    per = FIELD // NUM_GPUS
    return gpu * per, (gpu + 1) * per


def build_wave_program() -> TraceProgram:
    """A double-buffered 9-point wave stencil with halo reads."""
    seq = PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128)
    reuse_writes = PatternSpec(
        PatternKind.REUSE, revisit_prob=0.3, revisit_window=256, bytes_per_txn=128
    )
    buffers = (BufferSpec("wave_a", FIELD), BufferSpec("wave_b", FIELD))

    # Initialisation: each GPU fills its own slab of both fields.
    init_kernels = []
    for gpu in range(NUM_GPUS):
        start, end = shard(gpu)
        init_kernels.append(
            KernelSpec(
                "init",
                gpu,
                compute_ops=1e6,
                accesses=(
                    AccessRange("wave_a", start, end - start, MemOp.WRITE, seq),
                    AccessRange("wave_b", start, end - start, MemOp.WRITE, seq),
                ),
            )
        )
    phases = [Phase("setup/init", tuple(init_kernels), iteration=-1)]

    names = ("wave_a", "wave_b")
    for it in range(ITERATIONS):
        for sub in range(2):  # full ping-pong period per iteration
            src, dst = names[sub % 2], names[(sub + 1) % 2]
            kernels = []
            for gpu in range(NUM_GPUS):
                start, end = shard(gpu)
                accesses = [
                    AccessRange(src, start, end - start, MemOp.READ, seq),
                    AccessRange(dst, start, end - start, MemOp.WRITE, reuse_writes),
                ]
                if gpu > 0:
                    accesses.append(AccessRange(src, start - HALO, HALO, MemOp.READ, seq))
                if gpu < NUM_GPUS - 1:
                    accesses.append(AccessRange(src, end, HALO, MemOp.READ, seq))
                payload = sum(a.total_bytes() for a in accesses)
                kernels.append(
                    KernelSpec(
                        f"wave{sub}",
                        gpu,
                        compute_ops=12.0 * payload,  # 9-point + damping terms
                        accesses=tuple(accesses),
                    )
                )
            phases.append(Phase(f"it{it}/wave{sub}", tuple(kernels), iteration=it))
    return TraceProgram(
        name="wave2d",
        num_gpus=NUM_GPUS,
        buffers=buffers,
        phases=tuple(phases),
        metadata={"workload": "wave2d", "remote_mlp": 96, "scale": 1.0},
    )


def main() -> None:
    program = build_wave_program()
    config = repro.default_system(NUM_GPUS)
    rows = []
    for paradigm in ("um", "rdl", "memcpy", "gps", "infinite"):
        result = repro.simulate(program, paradigm, config)
        rows.append(
            [
                repro.LABELS[paradigm],
                fmt_time(result.total_time),
                result.interconnect_bytes // 1024,
            ]
        )
    print(
        format_table(
            ["paradigm", "time", "interconnect KiB"],
            rows,
            title=f"Custom 2D wave solver on {NUM_GPUS} GPUs",
        )
    )
    gps = repro.simulate(program, "gps", config)
    print()
    print(f"GPS subscriber histogram: {gps.subscriber_histogram}")
    print("(halo pages pair up; interior pages were demoted to conventional)")


if __name__ == "__main__":
    main()
