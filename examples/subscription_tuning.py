#!/usr/bin/env python3
"""Manual subscription management through the GPS driver API.

Exercises the paper's section 4 programming interface directly on a
:class:`repro.GPSRuntime` — the Python analogue of ``cudaMallocGPS``,
``cuMemAdvise(..., CU_MEM_ADVISE_GPS_(UN)SUBSCRIBE)`` and the tracking
APIs — and shows how manual hints, automatic profiling, and wrong hints
behave (wrong hints cost performance, never correctness).

Run:  python examples/subscription_tuning.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.runtime import MemAdvise
from repro.units import MiB, fmt_bytes

PAGE = repro.PAGE_64K


def show(runtime: repro.GPSRuntime, label: str) -> None:
    """Print per-GPU replica memory and the subscription histogram."""
    usage = ", ".join(
        f"GPU{g}={fmt_bytes(m.bytes_in_use)}" for g, m in enumerate(runtime.memories)
    )
    hist = dict(runtime.subscriptions.subscriber_histogram(only_shared=False))
    print(f"{label:38s} {usage}   pages-by-subscribers={hist}")


def main() -> None:
    runtime = repro.GPSRuntime(repro.default_system(4))

    # Allocation: like cudaMallocGPS, replicated and subscribed-by-default.
    halos = runtime.malloc_gps("halos", 2 * MiB)
    interior = runtime.malloc_gps("interior", 8 * MiB, manual=True)
    show(runtime, "after cudaMallocGPS (all-to-all)")

    # -- Manual route: the expert knows only GPUs 0 and 1 share `halos`. --
    for gpu in (2, 3):
        runtime.mem_advise(gpu, "halos", MemAdvise.GPS_UNSUBSCRIBE)
    # The interior region is only ever touched by its owner; trim it too.
    for gpu in (1, 2, 3):
        runtime.mem_advise(gpu, "interior", MemAdvise.GPS_UNSUBSCRIBE)
    show(runtime, "after manual cuMemAdvise trimming")

    # -- Automatic route: profile a synthetic access pattern instead. --
    runtime2 = repro.GPSRuntime(repro.default_system(4))
    data = runtime2.malloc_gps("data", 4 * MiB)
    pages = np.array(list(data.pages(PAGE)))
    runtime2.tracking_start()
    runtime2.record_accesses(0, pages)          # GPU0 touches everything
    runtime2.record_accesses(1, pages[: len(pages) // 2])  # GPU1 half
    summary = runtime2.tracking_stop()
    show(runtime2, "after automatic profiling")
    print(f"tracking summary: {summary}")

    # -- Wrong hints are a performance problem, not a correctness one. --
    vpn = int(pages[-1])  # GPU1 never touched this page -> unsubscribed
    resolution = runtime2.resolve_load(1, vpn)
    print(
        f"GPU1 load to unsubscribed page {vpn:#x}: "
        f"{'local' if resolution.local else f'served remotely by GPU{resolution.source_gpu}'}"
        " (no fault, paper section 3.2)"
    )

    # The last subscriber can never be removed.
    try:
        for gpu in range(4):
            runtime2.mem_advise(gpu, "data", MemAdvise.GPS_UNSUBSCRIBE)
    except repro.ReproError as err:
        print(f"unsubscribing the last subscriber raises: {err}")


if __name__ == "__main__":
    main()
