#!/usr/bin/env python3
"""Regenerate every paper figure/table in one run.

A thin front-end over :mod:`repro.harness.experiments` for people who want
the whole evaluation section without pytest. At the default reduced scale
this takes a few minutes; pass ``--full`` for benchmark-grade settings.

Run:  python examples/paper_figures.py [--full] [--out DIR]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.harness import experiments
from repro.harness.ascii_plot import line_plot
from repro.harness.export import to_json
from repro.harness.report import format_speedup_matrix, format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="benchmark-grade scale")
    parser.add_argument("--out", type=Path, help="directory for JSON exports")
    args = parser.parse_args()

    scale = 1.0 if args.full else 0.4
    iterations = 16 if args.full else 6
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    def emit(name: str, result: dict, rendered: str) -> None:
        print()
        print("=" * 72)
        print(rendered)
        if args.out:
            to_json(result, path=args.out / f"{name}.json")

    result = experiments.table2_applications()
    emit(
        "table2",
        result,
        format_table(
            ["name", "description", "comm_pattern"],
            [[r["name"], r["description"], r["comm_pattern"]] for r in result["rows"]],
            title="Table 2: applications",
        ),
    )

    result = experiments.fig3_bandwidth_gap()
    emit(
        "fig3",
        result,
        format_table(
            ["platform", "local GB/s", "remote GB/s", "gap"],
            [[r["platform"], r["local_gb_s"], r["remote_gb_s"], r["gap"]] for r in result["rows"]],
            title="Figure 3: bandwidth gap",
        ),
    )

    result = experiments.fig1_motivation(scale=scale, iterations=iterations)
    emit("fig1", result, format_speedup_matrix(
        {
            "paradigms": result["interconnects"],
            "speedups": result["speedups"],
            "geomean": result["geomean"],
        },
        title="Figure 1: strong scaling under pre-GPS best practice",
    ))

    result = experiments.fig8_end_to_end(scale=scale, iterations=iterations)
    emit("fig8", result, format_speedup_matrix(result, title="Figure 8: 4-GPU speedups"))

    result = experiments.fig9_subscriber_distribution(scale=scale, iterations=2)
    rows = [
        [w, d.get(2, 0.0), d.get(3, 0.0), d.get(4, 0.0)]
        for w, d in result["percent_by_subscribers"].items()
    ]
    emit("fig9", result, format_table(
        ["app", "2 subs %", "3 subs %", "4 subs %"], rows, title="Figure 9"
    ))

    result = experiments.fig10_interconnect_traffic(scale=scale, iterations=iterations)
    rows = [
        [w] + [result["normalized_to_memcpy"][w][p] for p in result["paradigms"]]
        for w in result["workloads"]
    ]
    emit("fig10", result, format_table(
        ["app"] + result["paradigms"], rows, title="Figure 10: traffic vs memcpy"
    ))

    result = experiments.fig11_subscription_benefit(scale=scale, iterations=iterations)
    emit("fig11", result, format_speedup_matrix(result, title="Figure 11"))

    result = experiments.fig13_bandwidth_sensitivity(scale=scale, iterations=iterations)
    rows = [
        [link] + [result["geomean"][link][p] for p in result["paradigms"]]
        for link in result["links"]
    ]
    emit("fig13", result, format_table(
        ["link"] + list(result["paradigms"]), rows, title="Figure 13"
    ))

    result = experiments.fig14_write_queue_hit_rate(scale=scale)
    series = {
        w: [(s, 100 * result["hit_rate"][w][s]) for s in result["queue_sizes"]]
        for w in ("ct", "eqwp", "diffusion", "hit")
    }
    emit("fig14", result, line_plot(
        series, title="Figure 14: write-queue hit rate (%) vs size"
    ))

    result = experiments.gps_tlb_sensitivity(scale=scale)
    rows = [
        [w] + [100 * result["hit_rate"][w][s] for s in result["tlb_sizes"]]
        for w in result["workloads"]
    ]
    emit("gps-tlb", result, format_table(
        ["app"] + [str(s) for s in result["tlb_sizes"]],
        rows,
        title="GPS-TLB hit rate (%) vs entries",
    ))

    if args.full:
        result = experiments.fig12_sixteen_gpus(scale=scale)
        emit("fig12", result, format_speedup_matrix(result, title="Figure 12: 16 GPUs"))
        result = experiments.page_size_sensitivity(scale=scale)
        rows = [[ps, result["slowdown_vs_64k"][ps]] for ps in result["page_sizes"]]
        emit("page-size", result, format_table(
            ["page size", "slowdown vs 64 KiB"], rows, title="Page-size sensitivity"
        ))

    print()
    print("Done. (Figures 12 and the page-size study run with --full.)")


if __name__ == "__main__":
    main()
