#!/usr/bin/env python3
"""Quickstart: simulate one workload under every paradigm.

Builds the paper's Jacobi trace for a 4-GPU PCIe 6.0 system, runs it under
all six memory-management paradigms, and prints the strong-scaling speedup
and interconnect traffic of each — a one-screen tour of the library.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.harness.report import format_table
from repro.units import fmt_bytes, fmt_time


def main() -> None:
    workload = repro.get_workload("jacobi")
    config = repro.default_system(num_gpus=4, link=repro.PCIE6)

    # The single-GPU baseline: same total problem on one GPU.
    single = repro.simulate(
        workload.build(1, scale=0.5, iterations=8),
        "memcpy",
        repro.default_system(1),
    )
    print(f"single-GPU time: {fmt_time(single.total_time)}")

    program = workload.build(4, scale=0.5, iterations=8)
    rows = []
    for paradigm in repro.FIGURE8_ORDER:
        result = repro.simulate(program, paradigm, config)
        rows.append(
            [
                repro.LABELS[paradigm],
                fmt_time(result.total_time),
                single.total_time / result.total_time,
                fmt_bytes(result.interconnect_bytes),
            ]
        )
    print()
    print(
        format_table(
            ["paradigm", "time", "speedup vs 1 GPU", "interconnect bytes"],
            rows,
            title="Jacobi on 4x GV100 over PCIe 6.0",
        )
    )

    # Peek inside GPS: subscription state and write-queue behaviour.
    gps = repro.simulate(program, "gps", config)
    print()
    print(f"GPS profiling: {gps.extras['tracking']}")
    print(f"subscriber histogram (shared pages): {gps.subscriber_histogram}")
    queue = gps.write_queue_stats[0]
    print(
        f"GPU0 write queue: {queue.stores_seen} stores, "
        f"{100 * queue.hit_rate:.1f}% coalesced, "
        f"{100 * queue.bandwidth_reduction:.1f}% bandwidth saved"
    )


if __name__ == "__main__":
    main()
