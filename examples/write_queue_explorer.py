#!/usr/bin/env python3
"""Drive the GPS remote write queue directly on synthetic store streams.

A hardware-architect's playground for the coalescing structure of paper
section 5.2: vary temporal locality, payload sparsity, and atomics mix,
and watch hit rate and interconnect bytes respond — the mechanics behind
Figure 14.

Run:  python examples/write_queue_explorer.py
"""

from __future__ import annotations

import repro
from repro.config import GPSConfig
from repro.core.write_queue import RemoteWriteQueue
from repro.gpu.sm_coalescer import sm_coalesce
from repro.harness.report import format_table
from repro.trace.expand import expand_range
from repro.trace.records import AccessRange, MemOp, PatternKind, PatternSpec
from repro.units import MiB, fmt_bytes

BASE = 1 << 24  # any line-aligned address
RANGE = 4 * MiB


def run_stream(name: str, pattern: PatternSpec, atomic: bool = False) -> list:
    """Push one expanded stream through a fresh 512-entry queue."""
    op = MemOp.ATOMIC if atomic else MemOp.WRITE
    stream = sm_coalesce(expand_range(AccessRange("buf", 0, RANGE, op, pattern), BASE))
    queue = RemoteWriteQueue(GPSConfig())
    queue.process_stream(stream.lines, stream.bytes_per_txn, atomic=atomic)
    queue.flush()
    stats = queue.stats
    return [
        name,
        stats.stores_seen,
        100 * stats.hit_rate,
        fmt_bytes(stats.bytes_in),
        fmt_bytes(stats.bytes_out),
        100 * stats.bandwidth_reduction,
    ]


def main() -> None:
    rows = [
        run_stream(
            "dense sequential (jacobi-like)",
            PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128),
        ),
        run_stream(
            "reuse p=0.25 w=400 (diffusion-like)",
            PatternSpec(PatternKind.REUSE, revisit_prob=0.25, revisit_window=400),
        ),
        run_stream(
            "reuse p=0.45 w=350 (ct-like)",
            PatternSpec(PatternKind.REUSE, revisit_prob=0.45, revisit_window=350),
        ),
        run_stream(
            "reuse p=0.55 w=120 (hit-like)",
            PatternSpec(PatternKind.REUSE, revisit_prob=0.55, revisit_window=120),
        ),
        run_stream(
            "reuse beyond queue reach (w=4000)",
            PatternSpec(PatternKind.REUSE, revisit_prob=0.45, revisit_window=4000),
        ),
        run_stream(
            "sparse atomics (pagerank-like)",
            PatternSpec(PatternKind.RANDOM, touch_fraction=0.5, bytes_per_txn=16),
            atomic=True,
        ),
    ]
    print(
        format_table(
            ["stream", "stores", "hit %", "bytes in", "bytes out", "saved %"],
            rows,
            title="GPS remote write queue (512 entries, watermark 511)",
        )
    )
    print()
    print("Observations (cf. paper section 7.4 / Figure 14):")
    print(" * sequential streams coalesce in the SM, not the queue -> 0% hits;")
    print(" * temporal revisits within the queue's reach coalesce away;")
    print(" * revisits beyond ~512 distinct lines arrive after the drain;")
    print(" * atomics bypass coalescing entirely.")


if __name__ == "__main__":
    main()
