"""GPS core: the paper's contribution.

* :mod:`~repro.core.write_queue` — the remote write queue (coalescing).
* :mod:`~repro.core.gps_page_table` / :mod:`~repro.core.gps_tlb` — the wide
  secondary page table and its TLB.
* :mod:`~repro.core.access_tracker` — the DRAM-bitmap access tracking unit.
* :mod:`~repro.core.subscription` — subscription sets and their invariants.
* :mod:`~repro.core.gps_unit` — the per-GPU hardware datapath.
* :mod:`~repro.core.runtime` — the driver/API layer (``cudaMallocGPS`` etc.).
* :mod:`~repro.core.consistency` — memory-model rules and checkers.
"""

from .access_tracker import AccessTrackingUnit
from .consistency import StoreEvent, SyncKind, check_point_to_point_order, check_same_address_order, may_coalesce
from .gps_page_table import GPSPageTable, GPSPTE
from .gps_tlb import GPSTLB
from .gps_unit import GPSUnit, OutboundWindow
from .runtime import GPSRuntime, LoadResolution, MemAdvise
from .subscription import SubscriptionManager, SubscriptionStats
from .write_queue import DrainedEntry, RemoteWriteQueue, WriteQueueStats

__all__ = [
    "AccessTrackingUnit",
    "StoreEvent",
    "SyncKind",
    "check_point_to_point_order",
    "check_same_address_order",
    "may_coalesce",
    "GPSPageTable",
    "GPSPTE",
    "GPSTLB",
    "GPSUnit",
    "OutboundWindow",
    "GPSRuntime",
    "LoadResolution",
    "MemAdvise",
    "SubscriptionManager",
    "SubscriptionStats",
    "DrainedEntry",
    "RemoteWriteQueue",
    "WriteQueueStats",
]
