"""The GPS page table: one wide PTE per GPS page, all subscriber replicas.

Paper section 5.2: a secondary page table tracks the multiple physical
mappings that coexist for a GPS virtual page — one physical frame per
subscribing GPU. It sits off the critical path (only drained remote writes
consult it) and its leaf entries are sized at init from the GPU count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..config import GPSConfig
from ..errors import TranslationError


@dataclass
class GPSPTE:
    """One wide GPS page-table entry: VPN -> {subscriber GPU: frame}."""

    vpn: int
    replicas: dict[int, int] = field(default_factory=dict)
    # Memoised remote-destination arrays keyed by source GPU; cleared on
    # every replica change. The batched router fans a whole drain batch out
    # with np.add.at over these, so they must never go stale.
    _remote_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def subscribers(self) -> frozenset[int]:
        """GPUs holding a replica of this page."""
        return frozenset(self.replicas)

    def remote_array(self, from_gpu: int) -> np.ndarray:
        """Subscribers other than ``from_gpu``, ascending, as int64 (memoised)."""
        arr = self._remote_cache.get(from_gpu)
        if arr is None:
            arr = np.array(
                sorted(g for g in self.replicas if g != from_gpu), dtype=np.int64
            )
            self._remote_cache[from_gpu] = arr
        return arr

    def remote_subscribers(self, from_gpu: int) -> list[int]:
        """Subscribers other than ``from_gpu``, ascending."""
        return self.remote_array(from_gpu).tolist()


class GPSPageTable:
    """System-wide GPS page table, shared by all GPUs' translation units.

    There is one logical GPS page table per system (each GPU's GPS address
    translation unit caches it through its GPS-TLB). The driver installs and
    removes replica mappings as subscriptions change.
    """

    def __init__(self, config: GPSConfig, num_gpus: int) -> None:
        self.config = config
        self.num_gpus = num_gpus
        self._entries: dict[int, GPSPTE] = {}
        #: Lifetime operation counts (see :meth:`counters`).
        self.lookups = 0
        self.installs = 0
        self.removals = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    @property
    def pte_bits(self) -> int:
        """Width of one leaf PTE for this system size (paper quotes 126 bits
        for 4 GPUs with 64 KiB pages)."""
        return self.config.gps_pte_bits(self.num_gpus)

    def install_replica(self, vpn: int, gpu: int, frame: int) -> GPSPTE:
        """Record that ``gpu`` holds ``vpn``'s replica in ``frame``."""
        if not 0 <= gpu < self.num_gpus:
            raise TranslationError(f"GPU {gpu} out of range installing VPN {vpn:#x}")
        entry = self._entries.setdefault(vpn, GPSPTE(vpn=vpn))
        entry.replicas[gpu] = frame
        entry._remote_cache.clear()
        self.installs += 1
        return entry

    def remove_replica(self, vpn: int, gpu: int) -> int:
        """Drop ``gpu``'s replica; returns the freed frame."""
        entry = self.lookup(vpn)
        try:
            frame = entry.replicas.pop(gpu)
            entry._remote_cache.clear()
            self.removals += 1
            return frame
        except KeyError:
            raise TranslationError(
                f"GPU {gpu} holds no replica of VPN {vpn:#x}"
            ) from None

    def remove_page(self, vpn: int) -> GPSPTE:
        """Remove the whole entry (page demoted to conventional or freed)."""
        try:
            return self._entries.pop(vpn)
        except KeyError:
            raise TranslationError(f"no GPS-PTE for VPN {vpn:#x}") from None

    def lookup(self, vpn: int) -> GPSPTE:
        """Fetch the wide PTE for a page-walk; raises on a miss."""
        self.lookups += 1
        try:
            return self._entries[vpn]
        except KeyError:
            raise TranslationError(f"no GPS-PTE for VPN {vpn:#x}") from None

    def lookup_run(self, vpn: int, count: int) -> GPSPTE:
        """Fetch one PTE consulted by ``count`` back-to-back translations.

        Counter-equivalent to ``count`` scalar :meth:`lookup` calls; the
        batched GPS unit uses it so ``lookups`` stays an exact access count.
        """
        self.lookups += count
        try:
            return self._entries[vpn]
        except KeyError:
            raise TranslationError(f"no GPS-PTE for VPN {vpn:#x}") from None

    def lookup_batch(self, vpns, total_count: int) -> list[GPSPTE]:
        """PTE content for each distinct VPN of a drain batch.

        ``total_count`` is the number of drained writes the batch represents;
        the ``lookups`` counter advances by that amount so it stays an exact
        per-write access count, identical to the scalar walk.
        """
        self.lookups += int(total_count)
        entries = self._entries
        out = []
        for vpn in vpns:
            entry = entries.get(vpn)
            if entry is None:
                raise TranslationError(f"no GPS-PTE for VPN {int(vpn):#x}")
            out.append(entry)
        return out

    def install_replicas(self, vpns, gpu: int, frames) -> None:
        """Bulk :meth:`install_replica`: parallel ``vpns``/``frames`` arrays."""
        if not 0 <= gpu < self.num_gpus:
            raise TranslationError(f"GPU {gpu} out of range in bulk install")
        entries = self._entries
        count = 0
        for vpn, frame in zip(vpns, frames):
            vpn = int(vpn)
            entry = entries.get(vpn)
            if entry is None:
                entry = entries[vpn] = GPSPTE(vpn=vpn)
            entry.replicas[gpu] = int(frame)
            entry._remote_cache.clear()
            count += 1
        self.installs += count

    def subscribers(self, vpn: int) -> frozenset[int]:
        """Subscriber set of one page (empty if the page is unknown)."""
        entry = self._entries.get(vpn)
        return entry.subscribers if entry is not None else frozenset()

    def entries(self) -> Iterator[GPSPTE]:
        """All wide PTEs (driver bulk operations)."""
        return iter(self._entries.values())

    def pages_with_multiple_subscribers(self) -> list[int]:
        """VPNs genuinely replicated — the pages GPS keeps the GPS bit on."""
        return [vpn for vpn, e in self._entries.items() if len(e.replicas) > 1]

    def counters(self) -> dict:
        """Observability snapshot in ``metric: value`` form.

        Registered as a lazy provider under the ``gps_page_table.`` prefix
        (see :mod:`repro.obs.registry`), resolved at result-build time.
        """
        return {
            "lookups": self.lookups,
            "installs": self.installs,
            "removals": self.removals,
            "pages": len(self._entries),
            "replicated_pages": len(self.pages_with_multiple_subscribers()),
        }
