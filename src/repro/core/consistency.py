"""GPU memory-consistency rules GPS must respect (paper sections 2.3, 3.3).

GPS's coalescing is legal because the NVIDIA GPU memory model only requires
weak stores to become visible to other GPUs at sys-scoped synchronisation.
This module encodes the rules as executable predicates plus a checker used
by the property-based tests:

* weak stores may be coalesced and reordered unless they are to the same
  address from the same GPU (same-address program order) or separated by a
  sys-scoped fence;
* sys-scoped accesses are never coalesced and go to a single point of
  coherence;
* the write queue must fully drain at sys-scoped synchronisation, including
  the implicit release at the end of every grid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from ..trace.records import Scope


class SyncKind(enum.Enum):
    """Synchronisation events that force write-queue drains."""

    SYS_FENCE = "sys_fence"
    GRID_END = "grid_end"


@dataclass(frozen=True)
class StoreEvent:
    """A store as seen by the coalescing legality checker."""

    gpu: int
    address: int
    scope: Scope
    #: Position in the issuing GPU's program order.
    seq: int


def may_coalesce(a: StoreEvent, b: StoreEvent, fence_between: bool) -> bool:
    """Whether stores ``a`` then ``b`` may merge into one interconnect write.

    Encodes section 3.3: weak stores to the same cache line coalesce freely
    — they need not be consecutive — unless a sys-scoped synchronisation
    separates them, and sys-scoped stores never coalesce. Same-GPU
    same-address pairs may still merge (the merged write carries the newest
    value, preserving same-address order at every observer).
    """
    if a.scope is Scope.SYS or b.scope is Scope.SYS:
        return False
    if fence_between:
        return False
    return a.gpu == b.gpu


def check_same_address_order(
    issued: Sequence[StoreEvent], delivered: Sequence[StoreEvent]
) -> bool:
    """Verify same-GPU, same-address program order survives delivery.

    ``issued`` is one GPU's store sequence in program order; ``delivered``
    is the order some subscriber observed. The memory model requires that
    for any two stores by the same GPU to the same address, every observer
    sees them in program order (coalesced stores count as delivery of the
    newest).
    """
    positions: dict[tuple[int, int, int], int] = {}
    for idx, event in enumerate(delivered):
        positions[(event.gpu, event.address, event.seq)] = idx
    last_seen: dict[tuple[int, int], int] = {}
    for event in issued:
        key = (event.gpu, event.address, event.seq)
        if key not in positions:
            continue  # coalesced away: legal for weak stores
        pos = positions[key]
        addr_key = (event.gpu, event.address)
        if addr_key in last_seen and pos < last_seen[addr_key]:
            return False
        last_seen[addr_key] = pos
    return True


def check_point_to_point_order(
    delivered_per_subscriber: Sequence[Sequence[StoreEvent]],
) -> bool:
    """Verify all subscribers see one producer's same-address stores alike.

    Section 3.3: with proper synchronisation, weak writes to one address
    come from one GPU at a time, and point-to-point ordering makes all
    consumers observe them in the same order. This checks that the relative
    order of any (gpu, address) pair's surviving stores matches across
    subscribers.
    """
    reference: dict[tuple[int, int], list[int]] = {}
    for delivered in delivered_per_subscriber:
        seen: dict[tuple[int, int], list[int]] = {}
        for event in delivered:
            seen.setdefault((event.gpu, event.address), []).append(event.seq)
        for key, seqs in seen.items():
            if key not in reference:
                reference[key] = seqs
            elif reference[key] != seqs:
                return False
    return True
