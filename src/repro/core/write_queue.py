"""The GPS remote write queue: coalescing buffer for outbound stores.

Paper section 5.2. The queue is fully associative, *virtually* addressed at
cache-block granularity, and coalesces every weak store to a resident block.
When occupancy reaches the high watermark (capacity - 1 in the paper's
configuration) it drains the least recently **added** entry — insertion
order, not access order, matching the paper's wording. It drains completely
at sys-scoped synchronisation, including the implicit release at grid end.

Atomics and sys-scoped stores are not coalesced (section 7.4 explains the
0% hit rates of Pagerank/ALS/SSSP by their atomic traffic): atomics pass
straight through to the translation unit; sys-scoped stores never reach the
queue at all (section 5.3 handles them by page collapse).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..config import CACHE_BLOCK, GPSConfig
from ..errors import ConfigError


@dataclass
class DrainedEntry:
    """One coalesced block leaving the queue toward the translation unit."""

    line: int
    payload_bytes: int
    #: Number of stores merged into this entry (>= 1).
    merged_stores: int


@dataclass
class WriteQueueStats:
    """Counters for one write queue.

    ``hit_rate`` is the Figure 14 metric: the fraction of enqueued stores
    that merged into an already-resident block.
    """

    stores_seen: int = 0
    coalesced_hits: int = 0
    inserts: int = 0
    watermark_drains: int = 0
    flush_drains: int = 0
    atomics_bypassed: int = 0
    bytes_in: int = 0
    bytes_out: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of coalescible stores that hit a resident entry."""
        if self.stores_seen == 0:
            return 0.0
        return self.coalesced_hits / self.stores_seen

    @property
    def drains(self) -> int:
        """Total entries drained to the translation unit."""
        return self.watermark_drains + self.flush_drains

    @property
    def bandwidth_reduction(self) -> float:
        """1 - bytes_out / bytes_in; the interconnect savings from coalescing."""
        if self.bytes_in == 0:
            return 0.0
        return 1.0 - self.bytes_out / self.bytes_in

    def as_counters(self) -> dict:
        """Observability snapshot: ``metric: value`` for the counter registry."""
        return {
            "stores_seen": self.stores_seen,
            "coalesced_hits": self.coalesced_hits,
            "inserts": self.inserts,
            "watermark_drains": self.watermark_drains,
            "flush_drains": self.flush_drains,
            "atomics_bypassed": self.atomics_bypassed,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }


@dataclass
class _Entry:
    payload_bytes: int
    merged_stores: int = 1


class RemoteWriteQueue:
    """Fully associative write-combining buffer, insertion-order drained.

    Byte accounting per entry: merging a store adds its payload up to the
    block size — repeated full-line stores saturate at 128 B, which is the
    bandwidth saving; partial-line stores to disjoint offsets accumulate.
    """

    def __init__(self, config: GPSConfig) -> None:
        self.capacity = config.write_queue_entries
        self.watermark = config.effective_watermark
        if self.watermark > self.capacity:
            raise ConfigError("watermark cannot exceed capacity")
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self.stats = WriteQueueStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Resident entry count."""
        return len(self._entries)

    def resident(self, line: int) -> bool:
        """Whether a block is currently buffered."""
        return line in self._entries

    def push_store(self, line: int, payload_bytes: int) -> list[DrainedEntry]:
        """Enqueue one weak store; returns entries drained by the watermark."""
        self.stats.stores_seen += 1
        self.stats.bytes_in += payload_bytes
        entry = self._entries.get(line)
        if entry is not None:
            entry.payload_bytes = min(CACHE_BLOCK, entry.payload_bytes + payload_bytes)
            entry.merged_stores += 1
            self.stats.coalesced_hits += 1
            return []
        self._entries[line] = _Entry(payload_bytes=min(CACHE_BLOCK, payload_bytes))
        self.stats.inserts += 1
        drained: list[DrainedEntry] = []
        while len(self._entries) > self.watermark:
            drained.append(self._drain_oldest(watermark=True))
        return drained

    def push_atomic(self, line: int, payload_bytes: int) -> DrainedEntry:
        """An atomic bypasses coalescing: forwarded immediately, uncombined."""
        self.stats.atomics_bypassed += 1
        self.stats.bytes_in += payload_bytes
        self.stats.bytes_out += payload_bytes
        return DrainedEntry(line=line, payload_bytes=payload_bytes, merged_stores=1)

    def flush(self) -> list[DrainedEntry]:
        """Drain everything (sys-scoped fence / grid end)."""
        drained = []
        while self._entries:
            drained.append(self._drain_oldest(watermark=False))
        return drained

    def _drain_oldest(self, watermark: bool) -> DrainedEntry:
        line, entry = self._entries.popitem(last=False)
        if watermark:
            self.stats.watermark_drains += 1
        else:
            self.stats.flush_drains += 1
        self.stats.bytes_out += entry.payload_bytes
        return DrainedEntry(
            line=line, payload_bytes=entry.payload_bytes, merged_stores=entry.merged_stores
        )

    def process_stream(
        self,
        lines: np.ndarray,
        payload_bytes: np.ndarray,
        atomic: bool = False,
    ) -> list[DrainedEntry]:
        """Run a whole store stream through the queue; returns all drains.

        The stream does **not** end with a flush — callers decide where the
        synchronisation boundaries are (:class:`repro.core.gps_unit.GPSUnit`
        flushes at phase barriers).
        """
        out: list[DrainedEntry] = []
        if atomic:
            for line, nbytes in zip(lines.tolist(), payload_bytes.tolist()):
                out.append(self.push_atomic(int(line), int(nbytes)))
            return out
        entries = self._entries
        watermark = self.watermark
        stats = self.stats
        for line, nbytes in zip(lines.tolist(), payload_bytes.tolist()):
            stats.stores_seen += 1
            stats.bytes_in += nbytes
            entry = entries.get(line)
            if entry is not None:
                entry.payload_bytes = min(CACHE_BLOCK, entry.payload_bytes + nbytes)
                entry.merged_stores += 1
                stats.coalesced_hits += 1
                continue
            entries[line] = _Entry(payload_bytes=min(CACHE_BLOCK, nbytes))
            stats.inserts += 1
            while len(entries) > watermark:
                out.append(self._drain_oldest(watermark=True))
        return out
