"""The GPS remote write queue: coalescing buffer for outbound stores.

Paper section 5.2. The queue is fully associative, *virtually* addressed at
cache-block granularity, and coalesces every weak store to a resident block.
When occupancy reaches the high watermark (capacity - 1 in the paper's
configuration) it drains the least recently **added** entry — insertion
order, not access order, matching the paper's wording. It drains completely
at sys-scoped synchronisation, including the implicit release at grid end.

Atomics and sys-scoped stores are not coalesced (section 7.4 explains the
0% hit rates of Pagerank/ALS/SSSP by their atomic traffic): atomics pass
straight through to the translation unit; sys-scoped stores never reach the
queue at all (section 5.3 handles them by page collapse).

Two execution paths model the same FIFO, exactly:

* the **scalar** path pushes one store at a time through :meth:`_push_one`
  (shared by :meth:`push_store` and the ``REPRO_SCALAR_REPLAY=1`` stream
  fallback), and
* the **vectorized** path classifies a whole stream in a handful of numpy
  segment passes (see :meth:`_process_vectorized`), exploiting that FIFO
  hits never reorder entries: an entry inserted with global rank ``r``
  drains exactly when insertion rank ``r + watermark`` happens, so hit/miss
  classification reduces to rank arithmetic over a fixed point.

Both paths produce byte-identical drains and counters; the differential
harness (``repro verify``) pins that equivalence on every fuzzed program.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..config import CACHE_BLOCK, GPSConfig
from ..errors import ConfigError

#: Streams shorter than this run the scalar kernel: the vectorized path has
#: fixed setup cost (argsort, fixed-point scratch arrays) that only pays off
#: on longer streams. Both paths are exact, so this is purely a perf knob.
_VECTOR_MIN_EVENTS = 64

#: Safety valve on fixed-point rounds; convergence is guaranteed in at most
#: ``n`` rounds (the classification operator is causal), typically 2-5.
_MAX_FIXED_POINT_ROUNDS = 128


def scalar_replay_enabled() -> bool:
    """Whether ``REPRO_SCALAR_REPLAY=1`` forces the per-element replay path.

    The scalar path is the reference implementation the differential
    harness compares the vectorized path against.
    """
    return os.environ.get("REPRO_SCALAR_REPLAY", "") not in ("", "0")


@dataclass
class DrainedEntry:
    """One coalesced block leaving the queue toward the translation unit."""

    line: int
    payload_bytes: int
    #: Number of stores merged into this entry (>= 1).
    merged_stores: int


@dataclass
class DrainBatch:
    """A batch of drained entries as parallel arrays, in drain order.

    The array form of ``list[DrainedEntry]`` — what the batched translation
    path (:meth:`repro.core.gps_unit.GPSUnit.process_stores`) consumes
    without materialising per-entry objects.
    """

    lines: np.ndarray  # int64, shape (n,)
    payload_bytes: np.ndarray  # int64, shape (n,)
    merged_stores: np.ndarray  # int64, shape (n,)

    def __len__(self) -> int:
        return int(self.lines.shape[0])

    def to_entries(self) -> list[DrainedEntry]:
        """Materialise the batch as entry objects (scalar-API compatibility)."""
        return [
            DrainedEntry(line=int(ln), payload_bytes=int(pb), merged_stores=int(ms))
            for ln, pb, ms in zip(
                self.lines.tolist(), self.payload_bytes.tolist(), self.merged_stores.tolist()
            )
        ]

    @staticmethod
    def empty() -> "DrainBatch":
        return DrainBatch(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    @staticmethod
    def from_entries(entries: "list[DrainedEntry]") -> "DrainBatch":
        if not entries:
            return DrainBatch.empty()
        return DrainBatch(
            np.array([e.line for e in entries], dtype=np.int64),
            np.array([e.payload_bytes for e in entries], dtype=np.int64),
            np.array([e.merged_stores for e in entries], dtype=np.int64),
        )


@dataclass
class WriteQueueStats:
    """Counters for one write queue.

    ``hit_rate`` is the Figure 14 metric: the fraction of enqueued stores
    that merged into an already-resident block. ``bytes_in``/``bytes_out``
    are the full traffic ledger (atomics included, since they do cross the
    interconnect); ``atomic_bytes`` carves the bypass traffic out so
    ``bandwidth_reduction`` measures coalescing over *coalescible* bytes
    only — atomic-heavy workloads (Pagerank/ALS/SSSP, section 7.4) would
    otherwise report a diluted reduction.
    """

    stores_seen: int = 0
    coalesced_hits: int = 0
    inserts: int = 0
    watermark_drains: int = 0
    flush_drains: int = 0
    atomics_bypassed: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Bytes that bypassed coalescing entirely (atomics); counted inside
    #: both ``bytes_in`` and ``bytes_out``.
    atomic_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of coalescible stores that hit a resident entry."""
        if self.stores_seen == 0:
            return 0.0
        return self.coalesced_hits / self.stores_seen

    @property
    def drains(self) -> int:
        """Total entries drained to the translation unit."""
        return self.watermark_drains + self.flush_drains

    @property
    def coalescible_bytes_in(self) -> int:
        """Payload bytes that entered the coalescing path (atomics excluded)."""
        return self.bytes_in - self.atomic_bytes

    @property
    def coalescible_bytes_out(self) -> int:
        """Payload bytes the coalescing path emitted (atomics excluded)."""
        return self.bytes_out - self.atomic_bytes

    @property
    def bandwidth_reduction(self) -> float:
        """The Figure 14 savings metric, over coalescible traffic only.

        Atomics bypass the queue and move byte-for-byte; folding them in
        would understate the reduction coalescing actually achieves.
        """
        if self.coalescible_bytes_in == 0:
            return 0.0
        return 1.0 - self.coalescible_bytes_out / self.coalescible_bytes_in

    def as_counters(self) -> dict:
        """Observability snapshot: ``metric: value`` for the counter registry."""
        return {
            "stores_seen": self.stores_seen,
            "coalesced_hits": self.coalesced_hits,
            "inserts": self.inserts,
            "watermark_drains": self.watermark_drains,
            "flush_drains": self.flush_drains,
            "atomics_bypassed": self.atomics_bypassed,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "atomic_bytes": self.atomic_bytes,
        }


@dataclass
class _Entry:
    payload_bytes: int
    merged_stores: int = 1


class RemoteWriteQueue:
    """Fully associative write-combining buffer, insertion-order drained.

    Byte accounting per entry: merging a store adds its payload up to the
    block size — repeated full-line stores saturate at 128 B, which is the
    bandwidth saving; partial-line stores to disjoint offsets accumulate.
    """

    def __init__(self, config: GPSConfig) -> None:
        self.capacity = config.write_queue_entries
        self.watermark = config.effective_watermark
        if self.watermark > self.capacity:
            raise ConfigError("watermark cannot exceed capacity")
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self.stats = WriteQueueStats()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Resident entry count."""
        return len(self._entries)

    def resident(self, line: int) -> bool:
        """Whether a block is currently buffered."""
        return line in self._entries

    # -- scalar kernel (shared by push_store and the stream fallback) ----------

    def _push_one(self, line: int, payload_bytes: int, out: list) -> None:
        """The one scalar merge/insert/drain kernel; drains append to ``out``."""
        stats = self.stats
        stats.stores_seen += 1
        stats.bytes_in += payload_bytes
        entry = self._entries.get(line)
        if entry is not None:
            entry.payload_bytes = min(CACHE_BLOCK, entry.payload_bytes + payload_bytes)
            entry.merged_stores += 1
            stats.coalesced_hits += 1
            return
        self._entries[line] = _Entry(payload_bytes=min(CACHE_BLOCK, payload_bytes))
        stats.inserts += 1
        while len(self._entries) > self.watermark:
            out.append(self._drain_oldest(watermark=True))

    def push_store(self, line: int, payload_bytes: int) -> list[DrainedEntry]:
        """Enqueue one weak store; returns entries drained by the watermark."""
        out: list[DrainedEntry] = []
        self._push_one(line, payload_bytes, out)
        return out

    def push_atomic(self, line: int, payload_bytes: int) -> DrainedEntry:
        """An atomic bypasses coalescing: forwarded immediately, uncombined."""
        self.stats.atomics_bypassed += 1
        self.stats.bytes_in += payload_bytes
        self.stats.bytes_out += payload_bytes
        self.stats.atomic_bytes += payload_bytes
        return DrainedEntry(line=line, payload_bytes=payload_bytes, merged_stores=1)

    def flush(self) -> list[DrainedEntry]:
        """Drain everything (sys-scoped fence / grid end)."""
        drained = []
        while self._entries:
            drained.append(self._drain_oldest(watermark=False))
        return drained

    def flush_batch(self) -> DrainBatch:
        """Array form of :meth:`flush` for the batched translation path."""
        if not self._entries:
            return DrainBatch.empty()
        count = len(self._entries)
        lines = np.fromiter(self._entries.keys(), dtype=np.int64, count=count)
        payloads = np.fromiter(
            (e.payload_bytes for e in self._entries.values()), dtype=np.int64, count=count
        )
        merged = np.fromiter(
            (e.merged_stores for e in self._entries.values()), dtype=np.int64, count=count
        )
        self._entries.clear()
        self.stats.flush_drains += count
        self.stats.bytes_out += int(payloads.sum())
        return DrainBatch(lines, payloads, merged)

    def _drain_oldest(self, watermark: bool) -> DrainedEntry:
        line, entry = self._entries.popitem(last=False)
        if watermark:
            self.stats.watermark_drains += 1
        else:
            self.stats.flush_drains += 1
        self.stats.bytes_out += entry.payload_bytes
        return DrainedEntry(
            line=line, payload_bytes=entry.payload_bytes, merged_stores=entry.merged_stores
        )

    # -- stream path -----------------------------------------------------------

    def process_stream(
        self,
        lines: np.ndarray,
        payload_bytes: np.ndarray,
        atomic: bool = False,
    ) -> list[DrainedEntry]:
        """Run a whole store stream through the queue; returns all drains.

        The stream does **not** end with a flush — callers decide where the
        synchronisation boundaries are (:class:`repro.core.gps_unit.GPSUnit`
        flushes at phase barriers).
        """
        return self.process_stream_batch(lines, payload_bytes, atomic=atomic).to_entries()

    def process_stream_batch(
        self,
        lines: np.ndarray,
        payload_bytes: np.ndarray,
        atomic: bool = False,
    ) -> DrainBatch:
        """Batch-array variant of :meth:`process_stream`; drains in order."""
        n = int(lines.shape[0])
        if n == 0:
            return DrainBatch.empty()
        if atomic:
            pay = payload_bytes.astype(np.int64, copy=False)
            self.stats.atomics_bypassed += n
            total = int(pay.sum())
            self.stats.bytes_in += total
            self.stats.bytes_out += total
            self.stats.atomic_bytes += total
            return DrainBatch(
                lines.astype(np.int64, copy=True),
                pay.copy(),
                np.ones(n, dtype=np.int64),
            )
        if scalar_replay_enabled() or n < _VECTOR_MIN_EVENTS:
            out: list[DrainedEntry] = []
            for line, nbytes in zip(lines.tolist(), payload_bytes.tolist()):
                self._push_one(int(line), int(nbytes), out)
            return DrainBatch.from_entries(out)
        return self._process_vectorized(
            lines.astype(np.int64, copy=False), payload_bytes.astype(np.int64, copy=False)
        )

    def _process_vectorized(self, lines: np.ndarray, pay: np.ndarray) -> DrainBatch:
        """Whole-stream FIFO simulation as numpy segment passes.

        Rank arithmetic: hits never reorder a FIFO, so every insertion gets
        a global rank (resident entries 0..O-1, in-stream insertions O, O+1,
        ... in stream order) and the entry with rank ``r`` drains exactly at
        insertion rank ``r + W`` (W = watermark). An event whose governing
        insertion has rank ``R`` is a *hit* iff ``(O + misses strictly
        before it) - R <= W``. Miss flags are the unique fixed point of that
        rule; the update operator is causal (each event depends only on
        strictly earlier flags), so iterating from any initial guess
        converges to the exact scalar simulation.
        """
        stats = self.stats
        watermark = self.watermark
        n = lines.shape[0]
        occ = len(self._entries)
        init_lines = (
            np.fromiter(self._entries.keys(), dtype=np.int64, count=occ) if occ else None
        )

        # Group events by line (stable: within a line, stream order holds).
        order = np.argsort(lines, kind="stable")
        sline = lines[order]
        seg_start = np.empty(n, dtype=bool)
        seg_start[0] = True
        np.not_equal(sline[1:], sline[:-1], out=seg_start[1:])

        # Pure-miss fast path. Classification is monotone (an extra hit only
        # keeps entries resident longer, creating more hits), so if no event
        # can hit under the all-miss hypothesis, all-miss IS the fixed
        # point: a stream duplicate hits only when its previous occurrence
        # is <= watermark events away, and a resident entry can only be hit
        # within the first watermark events. Streaming store patterns (and
        # the paper's atomic-heavy graph workloads) take this path.
        dup = ~seg_start[1:]
        no_stream_hit = not dup.any() or not (
            dup & (order[1:] - order[:-1] <= watermark)
        ).any()
        if no_stream_hit and (
            occ == 0 or not np.isin(lines[:watermark], init_lines).any()
        ):
            return self._process_all_miss(lines, pay, init_lines)

        # Initial rank per event: position of the event's line in the
        # resident FIFO, or -1 if absent.
        if occ:
            by_line = np.argsort(init_lines, kind="stable")
            sorted_init = init_lines[by_line]
            pos = np.searchsorted(sorted_init, lines)
            pos_c = np.minimum(pos, occ - 1)
            found = sorted_init[pos_c] == lines
            init_rank = np.where(found, by_line[pos_c], -1)
        else:
            init_rank = np.full(n, -1, dtype=np.int64)

        seg_id = np.cumsum(seg_start) - 1

        # Fixed point over miss flags. Initial guess: first occurrence of a
        # line with no resident entry is a miss (invariantly true).
        miss = np.zeros(n, dtype=bool)
        first_occ = order[seg_start]
        miss[first_occ[init_rank[first_occ] < 0]] = True

        seg_base = seg_id * np.int64(n + 2)
        positions = np.arange(n, dtype=np.int64)
        shifted = np.empty(n, dtype=np.int64)
        for _ in range(_MAX_FIXED_POINT_ROUNDS):
            # Misses strictly before each event, in stream order.
            miss_excl = np.zeros(n, dtype=np.int64)
            np.cumsum(miss[:-1], out=miss_excl[1:])
            # Last flagged (miss) occurrence of the same line strictly
            # before each event: segmented running max over sorted order.
            svals = np.where(miss[order], positions, np.int64(-1))
            shifted[0] = -1
            shifted[1:] = svals[:-1]
            shifted[seg_start] = -1
            adj = np.where(shifted >= 0, shifted + seg_base, seg_base - 1)
            last_pos = np.maximum.accumulate(adj) - seg_base
            gov_sorted = np.where(last_pos >= 0, order[np.maximum(last_pos, 0)], -1)
            governor = np.empty(n, dtype=np.int64)
            governor[order] = gov_sorted
            has_gov = governor >= 0
            # Rank of the insertion governing each event.
            rank = np.where(
                has_gov, occ + miss_excl[np.maximum(governor, 0)], init_rank
            )
            resident = (rank >= 0) & ((occ + miss_excl) - rank <= watermark)
            new_miss = ~resident
            if np.array_equal(new_miss, miss):
                break
            miss = new_miss
        else:  # pragma: no cover - convergence is guaranteed; belt and braces
            out: list[DrainedEntry] = []
            for line, nbytes in zip(lines.tolist(), pay.tolist()):
                self._push_one(int(line), int(nbytes), out)
            return DrainBatch.from_entries(out)

        inserts = int(miss.sum())
        stats.stores_seen += n
        stats.bytes_in += int(pay.sum())
        stats.coalesced_hits += n - inserts
        stats.inserts += inserts

        # Attribute every event's payload to its entry's rank.
        total_ranks = occ + inserts
        rank_of_event = np.where(miss, occ + np.cumsum(miss) - 1, rank)
        payload_acc = np.zeros(total_ranks, dtype=np.int64)
        merge_count = np.zeros(total_ranks, dtype=np.int64)
        np.add.at(payload_acc, rank_of_event, pay)
        np.add.at(merge_count, rank_of_event, 1)

        # Fold in the resident entries' accumulated state. Iterated
        # saturating adds of non-negative payloads equal min(cap, total).
        payload_final = payload_acc
        merged_final = merge_count
        if occ:
            base_pay = np.fromiter(
                (e.payload_bytes for e in self._entries.values()), dtype=np.int64, count=occ
            )
            base_merged = np.fromiter(
                (e.merged_stores for e in self._entries.values()), dtype=np.int64, count=occ
            )
            payload_final[:occ] += base_pay
            # merge_count over resident ranks counts only hit events, so the
            # entry's total is its prior count plus those hits.
            merged_final[:occ] = base_merged + merge_count[:occ]
        np.minimum(payload_final, CACHE_BLOCK, out=payload_final)

        line_of_rank = np.empty(total_ranks, dtype=np.int64)
        if occ:
            line_of_rank[:occ] = init_lines
        line_of_rank[occ:] = lines[miss]

        drained_count = max(0, total_ranks - watermark)
        stats.watermark_drains += drained_count
        stats.bytes_out += int(payload_final[:drained_count].sum())

        # Survivors (ranks drained_count..total_ranks-1) rebuild the FIFO.
        survivors: "OrderedDict[int, _Entry]" = OrderedDict()
        for ln, pb, ms in zip(
            line_of_rank[drained_count:].tolist(),
            payload_final[drained_count:].tolist(),
            merged_final[drained_count:].tolist(),
        ):
            survivors[ln] = _Entry(payload_bytes=pb, merged_stores=ms)
        self._entries = survivors

        return DrainBatch(
            line_of_rank[:drained_count],
            payload_final[:drained_count],
            merged_final[:drained_count],
        )

    def _process_all_miss(
        self, lines: np.ndarray, pay: np.ndarray, init_lines: "np.ndarray | None"
    ) -> DrainBatch:
        """Stream kernel for the proven-no-hit case: every event inserts.

        Ranks are then trivial — resident entries keep 0..occ-1, event ``j``
        inserts at ``occ + j`` — so drains are just the first
        ``occ + n - watermark`` ranks in order, no fixed point needed.
        Counters and queue state match the general kernel exactly.
        """
        stats = self.stats
        n = lines.shape[0]
        occ = len(self._entries)
        stats.stores_seen += n
        stats.bytes_in += int(pay.sum())
        stats.inserts += n
        new_pay = np.minimum(pay, CACHE_BLOCK)
        if occ:
            base_pay = np.fromiter(
                (e.payload_bytes for e in self._entries.values()), dtype=np.int64, count=occ
            )
            base_merged = np.fromiter(
                (e.merged_stores for e in self._entries.values()), dtype=np.int64, count=occ
            )
            line_of_rank = np.concatenate((init_lines, lines))
            payload_final = np.concatenate((base_pay, new_pay))
            merged_final = np.concatenate((base_merged, np.ones(n, dtype=np.int64)))
        else:
            line_of_rank = lines
            payload_final = new_pay
            merged_final = np.ones(n, dtype=np.int64)

        drained_count = max(0, occ + n - self.watermark)
        stats.watermark_drains += drained_count
        stats.bytes_out += int(payload_final[:drained_count].sum())

        survivors: "OrderedDict[int, _Entry]" = OrderedDict()
        for ln, pb, ms in zip(
            line_of_rank[drained_count:].tolist(),
            payload_final[drained_count:].tolist(),
            merged_final[drained_count:].tolist(),
        ):
            survivors[ln] = _Entry(payload_bytes=pb, merged_stores=ms)
        self._entries = survivors

        return DrainBatch(
            line_of_rank[:drained_count],
            payload_final[:drained_count],
            merged_final[:drained_count],
        )
