"""Subscription management: who receives each GPS page's updates.

Paper sections 3.2 and 4. Subscriptions are per-page sets of GPUs. The
invariants enforced here:

* every GPS page always has **at least one** subscriber — unsubscribing the
  last one raises :class:`~repro.errors.SubscriptionError` (the paper's API
  returns an error and leaves the allocation in place);
* subscriptions are hints, not correctness requirements: a non-subscriber
  load is serviced remotely from any subscriber (the manager answers
  ``remote_source`` for that path);
* pages left with exactly one subscriber after profiling are *demoted* to
  conventional pages (GPS bit cleared) since replicating writes to a single
  subscriber is pure waste (section 5.2).

The manager also produces the Figure 9 metric: the distribution of
subscriber counts over shared pages at the start of the execution phase.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import SubscriptionError


@dataclass
class SubscriptionStats:
    """Bookkeeping for subscription-change activity."""

    subscribes: int = 0
    unsubscribes: int = 0
    demotions: int = 0


class SubscriptionManager:
    """System-wide page -> subscriber-set map with GPS invariants."""

    def __init__(self, num_gpus: int) -> None:
        self.num_gpus = num_gpus
        self._subs: dict[int, set[int]] = {}
        #: Pages demoted to conventional after profiling (single subscriber).
        self._demoted: set[int] = set()
        self.stats = SubscriptionStats()

    def _bounds_check(self, gpus: "set[int]", vpn: int) -> None:
        for gpu in gpus:
            if not 0 <= gpu < self.num_gpus:
                raise SubscriptionError(
                    f"GPU {gpu} out of range for page {vpn:#x} "
                    f"in a {self.num_gpus}-GPU system"
                )

    def register_page(self, vpn: int, initial_subscribers: "set[int] | frozenset[int]") -> None:
        """Create subscription state for a new GPS page."""
        if vpn in self._subs:
            raise SubscriptionError(f"page {vpn:#x} already registered")
        subs = set(initial_subscribers)
        if not subs:
            raise SubscriptionError(f"page {vpn:#x} needs at least one initial subscriber")
        self._bounds_check(subs, vpn)
        self._subs[vpn] = subs

    def register_all_to_all(self, vpns: "list[int] | range") -> None:
        """Subscribed-by-default profiling: everyone subscribes to everything."""
        everyone = set(range(self.num_gpus))
        for vpn in vpns:
            if vpn not in self._subs:
                self._subs[vpn] = set(everyone)

    def drop_page(self, vpn: int) -> None:
        """Remove all state for a freed page."""
        self._subs.pop(vpn, None)
        self._demoted.discard(vpn)

    def is_registered(self, vpn: int) -> bool:
        """Whether the page is under GPS management."""
        return vpn in self._subs

    def is_demoted(self, vpn: int) -> bool:
        """Whether the page was demoted to a conventional page."""
        return vpn in self._demoted

    def subscribers(self, vpn: int) -> frozenset[int]:
        """Current subscriber set (empty for unknown pages)."""
        return frozenset(self._subs.get(vpn, ()))

    def is_subscriber(self, gpu: int, vpn: int) -> bool:
        """Whether ``gpu`` holds a replica of ``vpn``."""
        return gpu in self._subs.get(vpn, ())

    def subscribe(self, gpu: int, vpn: int) -> bool:
        """Add ``gpu`` to a page's subscribers. Returns True if it was new."""
        self._bounds_check({gpu}, vpn)
        subs = self._subs.get(vpn)
        if subs is None:
            raise SubscriptionError(f"subscribe to unregistered page {vpn:#x}")
        if gpu in subs:
            return False
        subs.add(gpu)
        self._demoted.discard(vpn)  # a second subscriber re-promotes the page
        self.stats.subscribes += 1
        return True

    def unsubscribe(self, gpu: int, vpn: int) -> bool:
        """Remove ``gpu`` from a page's subscribers.

        Raises :class:`SubscriptionError` when ``gpu`` is the last
        subscriber; returns False when it was not subscribed at all.
        """
        subs = self._subs.get(vpn)
        if subs is None:
            raise SubscriptionError(f"unsubscribe from unregistered page {vpn:#x}")
        if gpu not in subs:
            return False
        if len(subs) == 1:
            raise SubscriptionError(
                f"GPU {gpu} is the last subscriber of page {vpn:#x}; "
                "GPS keeps at least one replica"
            )
        subs.remove(gpu)
        self.stats.unsubscribes += 1
        return True

    def remote_source(self, gpu: int, vpn: int) -> int:
        """Pick the subscriber a non-subscriber load is serviced from.

        Deterministic: the lowest-numbered subscriber, skipping the
        requester itself if somehow present.
        """
        subs = self._subs.get(vpn)
        if not subs:
            raise SubscriptionError(f"no subscribers for page {vpn:#x}")
        for candidate in sorted(subs):
            if candidate != gpu:
                return candidate
        raise SubscriptionError(f"page {vpn:#x} has no subscriber other than GPU {gpu}")

    def apply_profile(self, touched_by: "dict[int, set[int]]") -> int:
        """Apply profiling results: unsubscribe GPUs from untouched pages.

        ``touched_by`` maps gpu -> set of VPNs the access tracker saw it
        touch. A GPU remains subscribed iff it touched the page — except
        that the last subscriber is never removed (if *nobody* touched a
        page, the lowest-numbered current subscriber keeps it alive).
        Returns the number of unsubscriptions performed.
        """
        removed = 0
        for vpn, subs in self._subs.items():
            keep = {g for g in subs if vpn in touched_by.get(g, ())}
            if not keep:
                keep = {min(subs)}
            for gpu in sorted(subs - keep):
                if len(self._subs[vpn]) > 1:
                    self.unsubscribe(gpu, vpn)
                    removed += 1
        return removed

    def demote_single_subscriber_pages(self) -> list[int]:
        """Mark single-subscriber pages conventional; returns their VPNs."""
        demoted = []
        for vpn, subs in self._subs.items():
            if len(subs) == 1 and vpn not in self._demoted:
                self._demoted.add(vpn)
                self.stats.demotions += 1
                demoted.append(vpn)
        return demoted

    def subscriber_histogram(self, only_shared: bool = True) -> "Counter[int]":
        """Figure 9: distribution of subscriber counts across pages.

        With ``only_shared`` (the figure's definition) pages with a single
        subscriber are excluded.
        """
        hist: Counter[int] = Counter()
        for subs in self._subs.values():
            count = len(subs)
            if only_shared and count < 2:
                continue
            hist[count] += 1
        return hist

    def pages(self) -> list[int]:
        """All registered VPNs."""
        return list(self._subs)
