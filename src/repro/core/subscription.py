"""Subscription management: who receives each GPS page's updates.

Paper sections 3.2 and 4. Subscriptions are per-page sets of GPUs. The
invariants enforced here:

* every GPS page always has **at least one** subscriber — unsubscribing the
  last one raises :class:`~repro.errors.SubscriptionError` (the paper's API
  returns an error and leaves the allocation in place);
* subscriptions are hints, not correctness requirements: a non-subscriber
  load is serviced remotely from any subscriber (the manager answers
  ``remote_source`` for that path);
* pages left with exactly one subscriber after profiling are *demoted* to
  conventional pages (GPS bit cleared) since replicating writes to a single
  subscriber is pure waste (section 5.2).

The manager also produces the Figure 9 metric: the distribution of
subscriber counts over shared pages at the start of the execution phase.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..errors import SubscriptionError


@dataclass
class SubscriptionStats:
    """Bookkeeping for subscription-change activity."""

    subscribes: int = 0
    unsubscribes: int = 0
    demotions: int = 0


class SubscriptionManager:
    """System-wide page -> subscriber-set map with GPS invariants."""

    def __init__(self, num_gpus: int) -> None:
        self.num_gpus = num_gpus
        self._subs: dict[int, set[int]] = {}
        #: Pages demoted to conventional after profiling (single subscriber).
        self._demoted: set[int] = set()
        self.stats = SubscriptionStats()
        # Array accelerator for whole-footprint queries: per-VPN subscriber
        # count and demotion flag, indexed by (vpn - _base_vpn). The dict of
        # sets stays authoritative; these shadows are updated on every
        # mutation so :meth:`multi_subscriber_mask` is a pure array gather.
        self._base_vpn: "int | None" = None
        self._count_arr = np.zeros(0, dtype=np.int32)
        self._demoted_arr = np.zeros(0, dtype=bool)

    def _ensure_span(self, lo: int, hi: int) -> None:
        """Grow the shadow arrays to cover VPNs ``lo..hi`` inclusive."""
        if self._base_vpn is None:
            self._base_vpn = lo
            size = hi - lo + 1
            self._count_arr = np.zeros(size, dtype=np.int32)
            self._demoted_arr = np.zeros(size, dtype=bool)
            return
        base = self._base_vpn
        end = base + self._count_arr.shape[0]
        if lo >= base and hi < end:
            return
        new_base = min(base, lo)
        new_end = max(end, hi + 1)
        counts = np.zeros(new_end - new_base, dtype=np.int32)
        demoted = np.zeros(new_end - new_base, dtype=bool)
        counts[base - new_base : end - new_base] = self._count_arr
        demoted[base - new_base : end - new_base] = self._demoted_arr
        self._base_vpn = new_base
        self._count_arr = counts
        self._demoted_arr = demoted

    def _shadow_set(self, vpn: int, count: int, demoted: bool = False) -> None:
        self._ensure_span(vpn, vpn)
        idx = vpn - self._base_vpn  # type: ignore[operator]
        self._count_arr[idx] = count
        self._demoted_arr[idx] = demoted

    def multi_subscriber_mask(self, vpns: np.ndarray) -> np.ndarray:
        """Boolean mask over ``vpns``: >1 subscriber and not demoted.

        The vectorized form of the per-page GPS-bit filter the store-replay
        path applies (only multi-subscriber, non-demoted pages publish).
        """
        if self._base_vpn is None or vpns.size == 0:
            return np.zeros(vpns.shape, dtype=bool)
        idx = vpns - self._base_vpn
        limit = self._count_arr.shape[0]
        valid = (idx >= 0) & (idx < limit)
        idx_c = np.clip(idx, 0, limit - 1)
        return valid & (self._count_arr[idx_c] > 1) & ~self._demoted_arr[idx_c]

    def _bounds_check(self, gpus: "set[int]", vpn: int) -> None:
        for gpu in gpus:
            if not 0 <= gpu < self.num_gpus:
                raise SubscriptionError(
                    f"GPU {gpu} out of range for page {vpn:#x} "
                    f"in a {self.num_gpus}-GPU system"
                )

    def register_page(self, vpn: int, initial_subscribers: "set[int] | frozenset[int]") -> None:
        """Create subscription state for a new GPS page."""
        if vpn in self._subs:
            raise SubscriptionError(f"page {vpn:#x} already registered")
        subs = set(initial_subscribers)
        if not subs:
            raise SubscriptionError(f"page {vpn:#x} needs at least one initial subscriber")
        self._bounds_check(subs, vpn)
        self._subs[vpn] = subs
        self._shadow_set(vpn, len(subs))

    def register_all_to_all(self, vpns: "list[int] | range") -> None:
        """Subscribed-by-default profiling: everyone subscribes to everything."""
        everyone = set(range(self.num_gpus))
        fresh = [vpn for vpn in vpns if vpn not in self._subs]
        for vpn in fresh:
            self._subs[vpn] = set(everyone)
        if fresh:
            self._ensure_span(min(fresh), max(fresh))
            idx = np.asarray(fresh, dtype=np.int64) - self._base_vpn
            self._count_arr[idx] = self.num_gpus
            self._demoted_arr[idx] = False

    def drop_page(self, vpn: int) -> None:
        """Remove all state for a freed page."""
        if self._subs.pop(vpn, None) is not None:
            self._shadow_set(vpn, 0)
        self._demoted.discard(vpn)

    def is_registered(self, vpn: int) -> bool:
        """Whether the page is under GPS management."""
        return vpn in self._subs

    def is_demoted(self, vpn: int) -> bool:
        """Whether the page was demoted to a conventional page."""
        return vpn in self._demoted

    def subscribers(self, vpn: int) -> frozenset[int]:
        """Current subscriber set (empty for unknown pages)."""
        return frozenset(self._subs.get(vpn, ()))

    def is_subscriber(self, gpu: int, vpn: int) -> bool:
        """Whether ``gpu`` holds a replica of ``vpn``."""
        return gpu in self._subs.get(vpn, ())

    def subscribe(self, gpu: int, vpn: int) -> bool:
        """Add ``gpu`` to a page's subscribers. Returns True if it was new."""
        self._bounds_check({gpu}, vpn)
        subs = self._subs.get(vpn)
        if subs is None:
            raise SubscriptionError(f"subscribe to unregistered page {vpn:#x}")
        if gpu in subs:
            return False
        subs.add(gpu)
        self._demoted.discard(vpn)  # a second subscriber re-promotes the page
        self._shadow_set(vpn, len(subs), demoted=False)
        self.stats.subscribes += 1
        return True

    def unsubscribe(self, gpu: int, vpn: int) -> bool:
        """Remove ``gpu`` from a page's subscribers.

        Raises :class:`SubscriptionError` when ``gpu`` is the last
        subscriber; returns False when it was not subscribed at all.
        """
        subs = self._subs.get(vpn)
        if subs is None:
            raise SubscriptionError(f"unsubscribe from unregistered page {vpn:#x}")
        if gpu not in subs:
            return False
        if len(subs) == 1:
            raise SubscriptionError(
                f"GPU {gpu} is the last subscriber of page {vpn:#x}; "
                "GPS keeps at least one replica"
            )
        subs.remove(gpu)
        self._shadow_set(vpn, len(subs), demoted=vpn in self._demoted)
        self.stats.unsubscribes += 1
        return True

    def remote_source(self, gpu: int, vpn: int) -> int:
        """Pick the subscriber a non-subscriber load is serviced from.

        Deterministic: the lowest-numbered subscriber, skipping the
        requester itself if somehow present.
        """
        subs = self._subs.get(vpn)
        if not subs:
            raise SubscriptionError(f"no subscribers for page {vpn:#x}")
        for candidate in sorted(subs):
            if candidate != gpu:
                return candidate
        raise SubscriptionError(f"page {vpn:#x} has no subscriber other than GPU {gpu}")

    def trim_plan(self, vpn: int, touched_by: "dict[int, set[int]]") -> list[int]:
        """GPUs profiling says to unsubscribe from ``vpn``, in removal order.

        The one shared keep-set rule (used by both :meth:`apply_profile`
        and the driver's ``tracking_stop``, so the two paths cannot
        diverge): a GPU stays subscribed iff it touched the page; if nobody
        touched it, the lowest-numbered current subscriber survives. The
        survivor set is never empty, so applying the plan can never trip
        the last-subscriber invariant.
        """
        subs = sorted(self._subs.get(vpn, ()))
        if not subs:
            return []
        keep = {g for g in subs if vpn in touched_by.get(g, ())}
        if not keep:
            keep = {subs[0]}
        return [g for g in subs if g not in keep]

    def apply_profile(self, touched_by: "dict[int, set[int]]") -> int:
        """Apply profiling results: unsubscribe GPUs from untouched pages.

        ``touched_by`` maps gpu -> set of VPNs the access tracker saw it
        touch. The keep-set rule lives in :meth:`trim_plan`. Returns the
        number of unsubscriptions performed.
        """
        removed = 0
        for vpn in list(self._subs):
            for gpu in self.trim_plan(vpn, touched_by):
                self.unsubscribe(gpu, vpn)
                removed += 1
        return removed

    def demote_single_subscriber_pages(self) -> list[int]:
        """Mark single-subscriber pages conventional; returns their VPNs."""
        demoted = []
        for vpn, subs in self._subs.items():
            if len(subs) == 1 and vpn not in self._demoted:
                self._demoted.add(vpn)
                self._shadow_set(vpn, 1, demoted=True)
                self.stats.demotions += 1
                demoted.append(vpn)
        return demoted

    def subscriber_histogram(self, only_shared: bool = True) -> "Counter[int]":
        """Figure 9: distribution of subscriber counts across pages.

        With ``only_shared`` (the figure's definition) pages with a single
        subscriber are excluded.
        """
        hist: Counter[int] = Counter()
        for subs in self._subs.values():
            count = len(subs)
            if only_shared and count < 2:
                continue
            hist[count] += 1
        return hist

    def pages(self) -> list[int]:
        """All registered VPNs."""
        return list(self._subs)
