"""Litmus-test framework: check GPS's delivery behaviour against the model.

Section 3.3 argues GPS's coalescing is legal under the NVIDIA GPU memory
model. This module makes that argument executable: a :class:`LitmusTest`
describes per-GPU store sequences (with scopes and fence points), runs them
through a real :class:`~repro.core.write_queue.RemoteWriteQueue` per GPU,
fans drained entries out to subscribers in order, and checks the delivered
sequences with the predicates in :mod:`repro.core.consistency`:

* same-GPU same-address program order survives at every subscriber;
* all subscribers observe one producer's same-address stores alike
  (point-to-point ordering);
* nothing issued after a fence is merged into anything before it.

The property-based tests drive this with random programs; a few classic
shapes (message passing, store buffering) are provided as named tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CACHE_BLOCK, GPSConfig
from .consistency import StoreEvent, check_point_to_point_order, check_same_address_order
from .write_queue import RemoteWriteQueue
from ..trace.records import Scope


@dataclass(frozen=True)
class LitmusOp:
    """One instruction of a litmus program: a store or a fence."""

    kind: str  # "store" | "fence"
    address: int = 0
    scope: Scope = Scope.WEAK

    @staticmethod
    def store(address: int, scope: Scope = Scope.WEAK) -> "LitmusOp":
        """A store of a fresh value to ``address``."""
        return LitmusOp("store", address, scope)

    @staticmethod
    def fence() -> "LitmusOp":
        """A sys-scoped fence: the write queue must fully drain."""
        return LitmusOp("fence")


@dataclass
class LitmusResult:
    """Outcome of one litmus run."""

    delivered: dict  # subscriber -> [StoreEvent] in arrival order
    same_address_ok: bool
    point_to_point_ok: bool
    fence_ok: bool

    @property
    def ok(self) -> bool:
        """All memory-model checks passed."""
        return self.same_address_ok and self.point_to_point_ok and self.fence_ok


class LitmusTest:
    """Executable litmus test over the GPS store-forwarding datapath."""

    def __init__(self, num_gpus: int = 2, queue_entries: int = 8) -> None:
        self.num_gpus = num_gpus
        self.config = GPSConfig(write_queue_entries=queue_entries)
        self._programs: dict[int, list[LitmusOp]] = {}

    def program(self, gpu: int, ops: "list[LitmusOp]") -> "LitmusTest":
        """Set one GPU's instruction sequence; returns self for chaining."""
        self._programs[gpu] = list(ops)
        return self

    def run(self) -> LitmusResult:
        """Execute every program and verify delivery at all subscribers.

        All stores go to one all-to-all-subscribed GPS page; each producer
        has its own remote write queue, and drained entries are delivered
        to every other GPU in drain order (point-to-point ordering on the
        interconnect, as section 3.3 assumes).
        """
        delivered: dict[int, list[StoreEvent]] = {g: [] for g in range(self.num_gpus)}
        issued: dict[int, list[StoreEvent]] = {}
        fence_violations = 0

        for gpu, ops in self._programs.items():
            queue = RemoteWriteQueue(self.config)
            issued[gpu] = []
            # line -> seq of the newest store merged into the buffered entry
            newest_in_entry: dict[int, int] = {}
            # seqs already drained (before the most recent fence)
            drained_before_fence: set[int] = set()
            seq = 0
            out_events: list[StoreEvent] = []

            def drain(entries) -> None:
                for entry in entries:
                    out_events.append(
                        StoreEvent(
                            gpu=gpu,
                            address=entry.line,
                            scope=Scope.WEAK,
                            seq=newest_in_entry.pop(entry.line),
                        )
                    )

            for op in ops:
                if op.kind == "fence":
                    drain(queue.flush())
                    drained_before_fence = {e.seq for e in out_events}
                    continue
                event = StoreEvent(gpu=gpu, address=op.address, scope=op.scope, seq=seq)
                issued[gpu].append(event)
                if op.scope is Scope.SYS:
                    # Sys-scoped stores bypass coalescing entirely: flush
                    # then deliver immediately (single point of coherence).
                    drain(queue.flush())
                    out_events.append(event)
                else:
                    line = op.address
                    if line in newest_in_entry:
                        # Coalesced: merged entry now carries the newest seq.
                        if seq in drained_before_fence:
                            fence_violations += 1
                        newest_in_entry[line] = seq
                        queue.push_store(line, CACHE_BLOCK)
                    else:
                        newest_in_entry[line] = seq
                        drain(queue.push_store(line, CACHE_BLOCK))
                seq += 1
            drain(queue.flush())

            for subscriber in range(self.num_gpus):
                if subscriber != gpu:
                    delivered[subscriber].extend(out_events)

        same_address = all(
            check_same_address_order(issued[gpu], delivered[sub])
            for gpu in issued
            for sub in delivered
            if sub != gpu
        )
        p2p = check_point_to_point_order(
            [events for sub, events in sorted(delivered.items())]
        )
        return LitmusResult(
            delivered=delivered,
            same_address_ok=same_address,
            point_to_point_ok=p2p,
            fence_ok=fence_violations == 0,
        )


def message_passing() -> LitmusResult:
    """Classic MP: data store, fence, flag store — flag must not pass data."""
    test = LitmusTest(num_gpus=2)
    test.program(
        0,
        [
            LitmusOp.store(address=0),  # data
            LitmusOp.fence(),
            LitmusOp.store(address=1),  # flag
        ],
    )
    return test.run()


def store_buffering() -> LitmusResult:
    """SB shape: two GPUs store to different addresses; any order is legal."""
    test = LitmusTest(num_gpus=2)
    test.program(0, [LitmusOp.store(address=0)])
    test.program(1, [LitmusOp.store(address=1)])
    return test.run()


def coalescing_chain(length: int = 20) -> LitmusResult:
    """Repeated same-address weak stores: survivors must stay ordered."""
    test = LitmusTest(num_gpus=2)
    test.program(0, [LitmusOp.store(address=i % 3) for i in range(length)])
    return test.run()
