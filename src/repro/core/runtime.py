"""The GPS runtime/driver: the paper's programming interface (section 4).

Python equivalents of the CUDA-level API:

===============================  ==============================================
Paper API                        Here
===============================  ==============================================
``cudaMallocGPS(ptr, size)``     :meth:`GPSRuntime.malloc_gps`
``cudaMalloc`` / pinned          :meth:`GPSRuntime.malloc_pinned`
``cudaMallocManaged``            :meth:`GPSRuntime.malloc_managed`
``cudaFree``                     :meth:`GPSRuntime.free`
``cuMemAdvise(..., SUBSCRIBE)``  :meth:`GPSRuntime.mem_advise` with
                                 :attr:`MemAdvise.GPS_SUBSCRIBE`
``cuGPSTrackingStart()``         :meth:`GPSRuntime.tracking_start`
``cuGPSTrackingStop()``          :meth:`GPSRuntime.tracking_stop`
===============================  ==============================================

The runtime keeps the conventional page tables, the GPS page table, the
subscription manager, and physical allocators mutually consistent: that
bookkeeping is exactly what the paper assigns to "driver support".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..config import SystemConfig
from ..errors import AllocationError, SubscriptionError
from ..memory.address_space import AddressSpace, AllocKind, Allocation
from ..memory.allocator import PhysicalMemory
from ..memory.page_table import PageTable
from .access_tracker import AccessTrackingUnit
from .gps_page_table import GPSPageTable
from .gps_unit import GPSUnit
from .subscription import SubscriptionManager


class MemAdvise(enum.Enum):
    """The two new ``cuMemAdvise`` flags GPS adds (section 4)."""

    GPS_SUBSCRIBE = "gps_subscribe"
    GPS_UNSUBSCRIBE = "gps_unsubscribe"


@dataclass(frozen=True)
class LoadResolution:
    """Where a load to a GPS page is serviced from."""

    local: bool
    source_gpu: int


class GPSRuntime:
    """Driver state for one multi-GPU system."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        page_size = config.page_size
        self.address_space = AddressSpace(page_size, config.gps.virtual_address_bits)
        self.memories = [
            PhysicalMemory(g, config.gpu.dram_bytes, page_size) for g in range(config.num_gpus)
        ]
        self.page_tables = [PageTable(g, page_size) for g in range(config.num_gpus)]
        self.gps_page_table = GPSPageTable(config.gps, config.num_gpus)
        self.subscriptions = SubscriptionManager(config.num_gpus)
        base_vpn = AddressSpace.HEAP_BASE // page_size
        self.trackers = [
            AccessTrackingUnit(g, config.gps, base_vpn) for g in range(config.num_gpus)
        ]
        self.gps_units = [GPSUnit(g, config.gps, self.gps_page_table) for g in range(config.num_gpus)]
        self.tracking_active = False

    # -- allocation ----------------------------------------------------------

    def malloc_gps(self, name: str, size: int, manual: bool = False) -> Allocation:
        """Allocate in the GPS address space, replicated on every GPU.

        Subscribed-by-default (section 5.2): all GPUs start subscribed to
        every page, each backed by a local frame, and the GPS bit is set in
        every conventional page table.
        """
        alloc = self.address_space.allocate(
            name, size, AllocKind.GPS, manual_subscription=manual
        )
        pages = list(alloc.pages(self.config.page_size))
        self.subscriptions.register_all_to_all(pages)
        for gpu in range(self.config.num_gpus):
            frames = self.memories[gpu].allocate_frames(len(pages))
            self.gps_page_table.install_replicas(pages, gpu, frames)
            self.page_tables[gpu].map_many(pages, resident_gpu=gpu, frames=frames, gps=True)
        return alloc

    def malloc_pinned(self, name: str, size: int, gpu: int = 0) -> Allocation:
        """``cudaMalloc``-style allocation resident on one GPU.

        Every GPU maps the pages (peer access), but only ``gpu`` holds them.
        """
        alloc = self.address_space.allocate(name, size, AllocKind.PINNED, home_gpu=gpu)
        pages = list(alloc.pages(self.config.page_size))
        frames = self.memories[gpu].allocate_frames(len(pages))
        for viewer in range(self.config.num_gpus):
            self.page_tables[viewer].map_many(pages, resident_gpu=gpu, frames=frames, gps=False)
        return alloc

    def malloc_managed(self, name: str, size: int, home_gpu: int = 0) -> Allocation:
        """``cudaMallocManaged``-style allocation; pages populate on first touch.

        No mappings are installed here — the UM paradigm executor models
        fault-driven population and migration.
        """
        return self.address_space.allocate(name, size, AllocKind.MANAGED, home_gpu=home_gpu)

    def free(self, name: str) -> None:
        """Release an allocation and all of its physical backing."""
        alloc = self.address_space.free(name)
        pages = list(alloc.pages(self.config.page_size))
        if alloc.kind is AllocKind.GPS:
            # Gather per-GPU work, then apply each kind of bookkeeping in
            # one bulk call per GPU instead of per (page, subscriber).
            freed_frames: "dict[int, list[int]]" = {}
            unmapped: "dict[int, list[int]]" = {}
            invalidated: "dict[int, list[int]]" = {}
            for vpn in pages:
                for gpu in sorted(self.gps_page_table.subscribers(vpn)):
                    frame = self.gps_page_table.remove_replica(vpn, gpu)
                    freed_frames.setdefault(gpu, []).append(frame)
                    if vpn in self.page_tables[gpu]:
                        unmapped.setdefault(gpu, []).append(vpn)
                    invalidated.setdefault(gpu, []).append(vpn)
                self.gps_page_table.remove_page(vpn)
                self.subscriptions.drop_page(vpn)
            for gpu, frames in freed_frames.items():
                self.memories[gpu].free_frames(frames)
            for gpu, vpns in unmapped.items():
                self.page_tables[gpu].unmap_many(vpns)
            for gpu, vpns in invalidated.items():
                self.gps_units[gpu].invalidate_pages(vpns)
        elif alloc.kind is AllocKind.PINNED:
            for vpn in pages:
                pte = self.page_tables[alloc.home_gpu].lookup(vpn)
                self.memories[pte.resident_gpu].free_frame(pte.frame)
                for gpu in range(self.config.num_gpus):
                    if vpn in self.page_tables[gpu]:
                        self.page_tables[gpu].unmap(vpn)
        # MANAGED pages were never backed by this runtime.

    # -- subscription management ----------------------------------------------

    def mem_advise(self, gpu: int, name: str, advice: MemAdvise) -> int:
        """Apply a subscription hint over a whole allocation.

        Returns the number of pages whose state changed. Unsubscribing the
        last subscriber of any page raises, leaving that page intact, per
        the paper's API contract.
        """
        alloc = self.address_space.get(name)
        if alloc.kind is not AllocKind.GPS:
            raise SubscriptionError(f"allocation {name!r} is not in the GPS address space")
        changed: "list[int]" = []
        for vpn in alloc.pages(self.config.page_size):
            if advice is MemAdvise.GPS_SUBSCRIBE:
                done = self._subscribe_page(gpu, vpn, sync=False)
            else:
                done = self._unsubscribe_page(gpu, vpn, sync=False)
            if done:
                changed.append(vpn)
        self._sync_pages(changed)
        return len(changed)

    def _subscribe_page(self, gpu: int, vpn: int, sync: bool = True) -> int:
        if self.subscriptions.is_subscriber(gpu, vpn):
            return 0
        self.subscriptions.subscribe(gpu, vpn)
        frame = self.memories[gpu].allocate_frame()
        self.gps_page_table.install_replica(vpn, gpu, frame)
        self.page_tables[gpu].map(vpn, resident_gpu=gpu, frame=frame, gps=True)
        if sync:
            self._refresh_gps_bit(vpn)
            self._shootdown(vpn)
        return 1

    def _unsubscribe_page(self, gpu: int, vpn: int, sync: bool = True) -> int:
        if not self.subscriptions.is_subscriber(gpu, vpn):
            return 0
        self.subscriptions.unsubscribe(gpu, vpn)  # raises if last subscriber
        frame = self.gps_page_table.remove_replica(vpn, gpu)
        self.memories[gpu].free_frame(frame)
        if vpn in self.page_tables[gpu]:
            self.page_tables[gpu].unmap(vpn)
        if sync:
            self._refresh_gps_bit(vpn)
            self._shootdown(vpn)
        return 1

    def _sync_pages(self, vpns: "list[int]") -> None:
        """Deferred GPS-bit refresh + shootdown after a bulk change.

        Equivalent to per-page sync: the GPS bit depends only on a page's
        final subscriber set, and shootdowns of distinct pages commute (no
        translations happen mid-update).
        """
        if not vpns:
            return
        for vpn in vpns:
            self._refresh_gps_bit(vpn)
        for unit in self.gps_units:
            unit.invalidate_pages(vpns)

    def _refresh_gps_bit(self, vpn: int) -> None:
        """Keep the conventional-PTE GPS bit consistent with subscriber count.

        Single-subscriber pages are conventional (no write duplication);
        multi-subscriber pages carry the GPS bit (section 5.2).
        """
        subs = self.gps_page_table.subscribers(vpn)
        gps_bit = len(subs) > 1
        for gpu in subs:
            pte = self.page_tables[gpu].try_lookup(vpn)
            if pte is not None:
                pte.gps = gps_bit
        if gps_bit:
            self._undemote(vpn)

    def _undemote(self, vpn: int) -> None:
        """Re-promotion happens inside ``SubscriptionManager.subscribe``;
        kept as a named hook so the promotion path is greppable."""

    def _shootdown(self, vpn: int) -> None:
        for unit in self.gps_units:
            unit.invalidate_page(vpn)

    # -- automatic profiling ----------------------------------------------------

    def tracking_start(self) -> None:
        """``cuGPSTrackingStart()``: begin the access-profiling phase."""
        for tracker in self.trackers:
            tracker.start()
        self.tracking_active = True

    def record_accesses(self, gpu: int, vpns: np.ndarray) -> None:
        """Feed one kernel's page-level access set to the tracking unit."""
        self.trackers[gpu].record_pages(vpns)

    def tracking_stop(self) -> dict:
        """``cuGPSTrackingStop()``: read bitmaps, trim subscriptions, demote.

        Returns a summary: pages profiled, unsubscriptions performed,
        demotions to conventional pages.
        """
        for tracker in self.trackers:
            tracker.stop()
        self.tracking_active = False
        touched_by = {
            gpu: set(self.trackers[gpu].touched_pages().tolist())
            for gpu in range(self.config.num_gpus)
        }
        # Unsubscribe via the driver path so frames are freed and page
        # tables stay consistent (SubscriptionManager.apply_profile alone
        # would leak replica frames). The keep-set rule is the manager's
        # trim_plan — one helper, so driver and manager cannot diverge.
        removed = 0
        changed: "list[int]" = []
        for vpn in self.subscriptions.pages():
            trimmed = 0
            for gpu in self.subscriptions.trim_plan(vpn, touched_by):
                trimmed += self._unsubscribe_page(gpu, vpn, sync=False)
            if trimmed:
                removed += trimmed
                changed.append(vpn)
        self._sync_pages(changed)
        demoted = self.subscriptions.demote_single_subscriber_pages()
        for vpn in demoted:
            self._refresh_gps_bit(vpn)
        return {
            "pages": len(self.subscriptions.pages()),
            "unsubscribed": removed,
            "demoted": len(demoted),
        }

    # -- access paths -------------------------------------------------------------

    def resolve_load(self, gpu: int, vpn: int) -> LoadResolution:
        """Figure 7 read path: local replica if subscribed, else remote.

        Subscriptions are hints — a non-subscriber load never faults, it is
        issued remotely to one of the subscribers (section 3.2).
        """
        if self.subscriptions.is_subscriber(gpu, vpn):
            return LoadResolution(local=True, source_gpu=gpu)
        src = self.subscriptions.remote_source(gpu, vpn)
        return LoadResolution(local=False, source_gpu=src)

    def handle_oversubscription(self, gpu: int, vpns: "list[int]") -> int:
        """Section 5.3: the driver swapped pages out of one GPU's memory.

        "If the GPU driver swaps out a page from a subscriber due to
        oversubscription, that GPU will be unsubscribed and will access
        that page remotely." Last-subscriber pages cannot be evicted (the
        sole replica must survive); those are skipped. Returns the number
        of pages actually evicted.
        """
        evicted = 0
        for vpn in vpns:
            if not self.subscriptions.is_subscriber(gpu, vpn):
                continue
            if len(self.subscriptions.subscribers(vpn)) == 1:
                continue  # sole replica: not evictable
            evicted += self._unsubscribe_page(gpu, vpn)
        return evicted

    def collapse_on_sys_store(self, gpu: int, vpn: int) -> int:
        """Section 5.3: a sys-scoped store collapses a GPS page.

        The page demotes to a single conventional copy on the storing GPU;
        all other replicas are freed. Returns the number of replicas freed.
        """
        subs = sorted(self.gps_page_table.subscribers(vpn))
        if not subs:
            # Already collapsed (back-to-back sys stores) or freed/demoted:
            # there is nothing replicated to tear down — a no-op, not an
            # IndexError.
            return 0
        if gpu not in subs:
            # The storing GPU takes ownership; keep the lowest subscriber's
            # frame as the surviving copy instead.
            gpu = subs[0]
        freed = 0
        for other in subs:
            if other == gpu:
                continue
            self.subscriptions.unsubscribe(other, vpn)
            frame = self.gps_page_table.remove_replica(vpn, other)
            self.memories[other].free_frame(frame)
            if vpn in self.page_tables[other]:
                self.page_tables[other].unmap(vpn)
            freed += 1
        self.subscriptions.demote_single_subscriber_pages()
        self._refresh_gps_bit(vpn)
        self._shootdown(vpn)
        return freed
