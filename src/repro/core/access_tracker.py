"""The access tracking unit: per-GPU DRAM bitmap of touched GPS pages.

Paper section 5.2: during the profiling phase, misses at the GPU's
last-level conventional TLB to GPS-space pages are forwarded to the access
tracking unit, which sets one bit per page in a DRAM-resident bitmap
(64 KiB covers a 32 GiB range at 64 KiB pages). TLB misses are rare but
cover every page the GPU touches, so the bitmap converges to the page-level
access set at negligible bandwidth. The driver reads the bitmap at
``tracking_stop()`` and unsubscribes the GPU from untouched pages.
"""

from __future__ import annotations

import numpy as np

from ..config import GPSConfig
from ..errors import ConfigError


class AccessTrackingUnit:
    """One GPU's access-tracking bitmap over the GPS virtual address range.

    ``base_vpn`` anchors the bitmap at the start of the GPS heap so bit
    index 0 is the first GPS page.
    """

    def __init__(self, gpu_id: int, config: GPSConfig, base_vpn: int) -> None:
        self.gpu_id = gpu_id
        self.base_vpn = base_vpn
        self.num_pages = config.tracking_range_bytes // config.page_size
        if self.num_pages <= 0:
            raise ConfigError("tracking range smaller than one page")
        self._bitmap = np.zeros(self.num_pages, dtype=bool)
        self.enabled = False
        self.updates = 0

    @property
    def bitmap_bytes(self) -> int:
        """DRAM footprint of the bitmap (one bit per page)."""
        return max(1, self.num_pages // 8)

    def start(self) -> None:
        """Begin a profiling phase with a clean bitmap."""
        self._bitmap[:] = False
        self.enabled = True
        self.updates = 0

    def stop(self) -> None:
        """End the profiling phase; the bitmap stays readable."""
        self.enabled = False

    def record_tlb_miss(self, vpn: int) -> None:
        """Path T1 of Figure 7: one last-level TLB miss to a GPS page."""
        if not self.enabled:
            return
        index = vpn - self.base_vpn
        if 0 <= index < self.num_pages:
            if not self._bitmap[index]:
                self.updates += 1
            self._bitmap[index] = True

    def record_pages(self, vpns: np.ndarray) -> None:
        """Bulk path for trace replay: mark many pages at once.

        Trace expansion hands the tracking unit the page projection of a
        kernel's access stream; because the conventional TLB misses at least
        once per distinct page, marking every distinct page is exactly what
        the hardware bitmap converges to.
        """
        if not self.enabled or vpns.size == 0:
            return
        index = vpns.astype(np.int64) - self.base_vpn
        index = index[(index >= 0) & (index < self.num_pages)]
        before = int(self._bitmap[index].sum())
        self._bitmap[index] = True
        self.updates += int(index.size) - before

    def touched(self, vpn: int) -> bool:
        """Whether this GPU touched the page during profiling."""
        index = vpn - self.base_vpn
        if not 0 <= index < self.num_pages:
            return False
        return bool(self._bitmap[index])

    def touched_pages(self) -> np.ndarray:
        """All touched VPNs (absolute), sorted — what the driver reads."""
        return np.flatnonzero(self._bitmap) + self.base_vpn
