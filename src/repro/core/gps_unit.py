"""The per-GPU GPS unit: write queue -> GPS-TLB -> replica fan-out.

This is the hardware datapath of Figure 7 (W4, W5, W6): weak stores to GPS
pages arrive from the SMs (already passed through the intra-SM coalescer),
coalesce in the remote write queue, and drained entries are translated by
the GPS address translation unit, producing one interconnect write per
remote subscriber. The unit accumulates per-destination byte counts that
the paradigm executor turns into timed transfers and traffic-matrix
entries.

Drained entries leave the queue in insertion order, which groups lines of
the same page into long runs (a 64 KiB page spans 512 lines), so the
batched path run-length-encodes the drain batch and performs one
translation per run — identical counters and routed bytes to the scalar
per-entry walk, at a fraction of the Python overhead. Set
``REPRO_SCALAR_REPLAY=1`` to force the scalar walk (the differential
harness compares the two).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import CACHE_BLOCK, GPSConfig
from ..trace.expand import LineStream
from .gps_page_table import GPSPageTable
from .gps_tlb import GPSTLB
from .write_queue import DrainBatch, DrainedEntry, RemoteWriteQueue, scalar_replay_enabled


@dataclass
class OutboundWindow:
    """Traffic produced by one GPU's GPS unit within one sync window."""

    bytes_to: dict = field(default_factory=dict)  # dst gpu -> payload bytes
    writes_to: dict = field(default_factory=dict)  # dst gpu -> write count

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all destinations."""
        return sum(self.bytes_to.values())

    def add(self, dst: int, payload: int) -> None:
        """Record one replica write."""
        self.bytes_to[dst] = self.bytes_to.get(dst, 0) + payload
        self.writes_to[dst] = self.writes_to.get(dst, 0) + 1

    def add_bulk(self, dst: int, payload: int, writes: int) -> None:
        """Record ``writes`` replica writes totalling ``payload`` bytes."""
        self.bytes_to[dst] = self.bytes_to.get(dst, 0) + payload
        self.writes_to[dst] = self.writes_to.get(dst, 0) + writes


class GPSUnit:
    """One GPU's GPS hardware: remote write queue plus translation."""

    def __init__(self, gpu_id: int, config: GPSConfig, page_table: GPSPageTable) -> None:
        self.gpu_id = gpu_id
        self.config = config
        self.write_queue = RemoteWriteQueue(config)
        self.tlb = GPSTLB(config, page_table)
        self._page_table = page_table
        self._lines_per_page = config.page_size // CACHE_BLOCK
        self._window = OutboundWindow()
        # Batched-route accumulators, folded into the window at sync():
        # per-destination byte and write totals as int64 arrays so a whole
        # drain batch lands in two np.add.at calls.
        self._bytes_acc = np.zeros(page_table.num_gpus, dtype=np.int64)
        self._writes_acc = np.zeros(page_table.num_gpus, dtype=np.int64)

    def process_stores(self, stream: LineStream, atomic: bool = False) -> None:
        """Push a GPS-page store stream through the queue; route any drains.

        The caller guarantees the stream only contains stores to pages whose
        GPS bit is set (the conventional TLB filters in hardware, the
        paradigm executor filters here).
        """
        if scalar_replay_enabled():
            drained = self.write_queue.process_stream(
                stream.lines, stream.bytes_per_txn, atomic=atomic
            )
            for entry in drained:
                self._route(entry)
            return
        batch = self.write_queue.process_stream_batch(
            stream.lines, stream.bytes_per_txn, atomic=atomic
        )
        self._route_batch(batch)

    def sync(self) -> OutboundWindow:
        """Drain at a synchronisation boundary; return and reset the window.

        Models the implicit release at grid end / sys-scoped fences: the
        remote write queue and the translation unit both drain fully.
        """
        if scalar_replay_enabled():
            for entry in self.write_queue.flush():
                self._route(entry)
        else:
            self._route_batch(self.write_queue.flush_batch())
        self._fold_window()
        window = self._window
        self._window = OutboundWindow()
        return window

    def _fold_window(self) -> None:
        """Fold the batched-route accumulators into the outbound window."""
        if not self._writes_acc.any():
            return
        bytes_to = self._window.bytes_to
        writes_to = self._window.writes_to
        for dst in np.flatnonzero(self._writes_acc).tolist():
            bytes_to[dst] = bytes_to.get(dst, 0) + int(self._bytes_acc[dst])
            writes_to[dst] = writes_to.get(dst, 0) + int(self._writes_acc[dst])
        self._bytes_acc[:] = 0
        self._writes_acc[:] = 0

    def _route(self, entry: DrainedEntry) -> None:
        vpn = entry.line // self._lines_per_page
        pte = self.tlb.translate(vpn)
        for dst in pte.remote_subscribers(self.gpu_id):
            self._window.add(dst, entry.payload_bytes)

    def _route_batch(self, batch: DrainBatch) -> None:
        """Translate and fan out a drain batch, one TLB access run per page run.

        Consecutive drained entries of the same page form one run: the run
        head takes a real set-associative TLB access (hit or miss + walk)
        and the rest are guaranteed hits — exactly the counters the scalar
        per-entry walk produces. Routing is fully batched: per-page payload
        and write totals gather over the distinct VPNs, then scatter into
        the per-destination accumulators through each PTE's memoised
        remote-subscriber array (two np.add.at calls for the whole batch).
        """
        n = len(batch)
        if n == 0:
            return
        vpns = batch.lines // self._lines_per_page
        heads = np.empty(n, dtype=bool)
        heads[0] = True
        np.not_equal(vpns[1:], vpns[:-1], out=heads[1:])
        starts = np.flatnonzero(heads)
        ends = np.append(starts[1:], n)
        sums = np.concatenate(([0], np.cumsum(batch.payload_bytes)))
        run_payload = sums[ends] - sums[starts]
        run_len = ends - starts
        head_vpns = vpns[starts]
        self.tlb.translate_batch(head_vpns.tolist(), n)
        uniq, inverse = np.unique(head_vpns, return_inverse=True)
        pages = uniq.shape[0]
        page_payload = np.zeros(pages, dtype=np.int64)
        page_writes = np.zeros(pages, dtype=np.int64)
        np.add.at(page_payload, inverse, run_payload)
        np.add.at(page_writes, inverse, run_len)
        ptes = self._page_table.lookup_batch(uniq.tolist(), n)
        gpu_id = self.gpu_id
        dst_arrays = [pte.remote_array(gpu_id) for pte in ptes]
        fanout = np.fromiter(
            (arr.shape[0] for arr in dst_arrays), dtype=np.int64, count=pages
        )
        if not fanout.any():
            return
        dsts = np.concatenate(dst_arrays)
        np.add.at(self._bytes_acc, dsts, np.repeat(page_payload, fanout))
        np.add.at(self._writes_acc, dsts, np.repeat(page_writes, fanout))

    def invalidate_page(self, vpn: int) -> None:
        """GPS-TLB shootdown for one page (subscription change)."""
        self.tlb.invalidate(vpn)

    def invalidate_pages(self, vpns) -> None:
        """Batch GPS-TLB shootdown (bulk subscription changes / frees)."""
        self.tlb.invalidate_many(vpns)

    @staticmethod
    def sm_coalesce(stream: LineStream) -> LineStream:
        """The intra-SM coalescer stage in front of the write queue.

        Delegates to :func:`repro.gpu.sm_coalescer.sm_coalesce`; exposed
        here because architecturally the SM coalescer is the first stage of
        the GPS store path (Figure 7, W1-W3).
        """
        from ..gpu.sm_coalescer import sm_coalesce

        return sm_coalesce(stream)
