"""The per-GPU GPS unit: write queue -> GPS-TLB -> replica fan-out.

This is the hardware datapath of Figure 7 (W4, W5, W6): weak stores to GPS
pages arrive from the SMs (already passed through the intra-SM coalescer),
coalesce in the remote write queue, and drained entries are translated by
the GPS address translation unit, producing one interconnect write per
remote subscriber. The unit accumulates per-destination byte counts that
the paradigm executor turns into timed transfers and traffic-matrix
entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CACHE_BLOCK, GPSConfig
from ..trace.expand import LineStream
from .gps_page_table import GPSPageTable
from .gps_tlb import GPSTLB
from .write_queue import DrainedEntry, RemoteWriteQueue


@dataclass
class OutboundWindow:
    """Traffic produced by one GPU's GPS unit within one sync window."""

    bytes_to: dict = field(default_factory=dict)  # dst gpu -> payload bytes
    writes_to: dict = field(default_factory=dict)  # dst gpu -> write count

    @property
    def total_bytes(self) -> int:
        """Payload bytes across all destinations."""
        return sum(self.bytes_to.values())

    def add(self, dst: int, payload: int) -> None:
        """Record one replica write."""
        self.bytes_to[dst] = self.bytes_to.get(dst, 0) + payload
        self.writes_to[dst] = self.writes_to.get(dst, 0) + 1


class GPSUnit:
    """One GPU's GPS hardware: remote write queue plus translation."""

    def __init__(self, gpu_id: int, config: GPSConfig, page_table: GPSPageTable) -> None:
        self.gpu_id = gpu_id
        self.config = config
        self.write_queue = RemoteWriteQueue(config)
        self.tlb = GPSTLB(config, page_table)
        self._page_table = page_table
        self._lines_per_page = config.page_size // CACHE_BLOCK
        self._window = OutboundWindow()

    def process_stores(self, stream: LineStream, atomic: bool = False) -> None:
        """Push a GPS-page store stream through the queue; route any drains.

        The caller guarantees the stream only contains stores to pages whose
        GPS bit is set (the conventional TLB filters in hardware, the
        paradigm executor filters here).
        """
        drained = self.write_queue.process_stream(
            stream.lines, stream.bytes_per_txn, atomic=atomic
        )
        for entry in drained:
            self._route(entry)

    def sync(self) -> OutboundWindow:
        """Drain at a synchronisation boundary; return and reset the window.

        Models the implicit release at grid end / sys-scoped fences: the
        remote write queue and the translation unit both drain fully.
        """
        for entry in self.write_queue.flush():
            self._route(entry)
        window = self._window
        self._window = OutboundWindow()
        return window

    def _route(self, entry: DrainedEntry) -> None:
        vpn = entry.line // self._lines_per_page
        pte = self.tlb.translate(vpn)
        for dst in pte.remote_subscribers(self.gpu_id):
            self._window.add(dst, entry.payload_bytes)

    def invalidate_page(self, vpn: int) -> None:
        """GPS-TLB shootdown for one page (subscription change)."""
        self.tlb.invalidate(vpn)

    @staticmethod
    def sm_coalesce(stream: LineStream) -> LineStream:
        """The intra-SM coalescer stage in front of the write queue.

        Delegates to :func:`repro.gpu.sm_coalescer.sm_coalesce`; exposed
        here because architecturally the SM coalescer is the first stage of
        the GPS store path (Figure 7, W1-W3).
        """
        from ..gpu.sm_coalescer import sm_coalesce

        return sm_coalesce(stream)
