"""The GPS-TLB: the translation cache inside the GPS address translation unit.

Paper sections 5.2 and 7.4: a small (32-entry, 8-way) TLB caching wide
GPS-PTEs. It only services drained remote writes — never loads — so it sees
far less pressure than the general-purpose GPU TLBs and reaches ~100% hit
rate at 32 entries. Misses trigger a hardware walk of the GPS page table,
whose latency hides behind the coalescing window (the entries being
translated are, by construction, not latency-sensitive).
"""

from __future__ import annotations

from ..config import GPSConfig
from ..memory.tlb import TLB, TLBStats
from .gps_page_table import GPSPageTable, GPSPTE


class GPSTLB:
    """Wide-entry TLB in front of the GPS page table."""

    def __init__(self, config: GPSConfig, page_table: GPSPageTable) -> None:
        self._tlb = TLB(entries=config.gps_tlb_entries, assoc=config.gps_tlb_assoc)
        self._page_table = page_table
        self.walks = 0

    @property
    def stats(self) -> TLBStats:
        """Hit/miss counters (hit rate is the section 7.4 sensitivity metric)."""
        return self._tlb.stats

    def translate(self, vpn: int) -> GPSPTE:
        """Translate one drained write's VPN to its wide PTE.

        A miss walks the GPS page table (counted in ``walks``) and installs
        the entry; translation content always comes from the page table so
        the TLB can never return stale subscriber sets in this model — the
        driver invalidates on subscription changes anyway, mirroring real
        shootdown behaviour.
        """
        if not self._tlb.access(vpn):
            self.walks += 1
        return self._page_table.lookup(vpn)

    def translate_run(self, vpn: int, count: int) -> GPSPTE:
        """Translate ``count`` back-to-back drained writes to one VPN.

        Identical counters to ``count`` scalar :meth:`translate` calls: the
        first access hits or misses for real, the rest are guaranteed hits
        on the MRU entry (drain order groups same-page lines together), and
        every drained write consults the page table content.
        """
        if not self._tlb.access_run(vpn, count):
            self.walks += 1
        return self._page_table.lookup_run(vpn, count)

    def translate_batch(self, head_vpns, total: int) -> None:
        """TLB accounting for a whole drain batch of ``total`` writes.

        ``head_vpns`` are the page-run heads in drain order; each takes a
        real set-associative access (misses walk), and the ``total -
        len(head_vpns)`` run tails are guaranteed MRU hits — exactly the
        counters ``total`` scalar :meth:`translate` calls would produce.
        PTE content is fetched separately (:meth:`GPSPageTable.lookup_batch`).
        """
        self.walks += self._tlb.access_batch(head_vpns)
        extra = total - len(head_vpns)
        if extra:
            self._tlb.stats.hits += extra

    def invalidate(self, vpn: int) -> bool:
        """Shoot down one entry after a subscription change."""
        return self._tlb.invalidate(vpn)

    def invalidate_many(self, vpns) -> int:
        """Batch shootdown (bulk subscription changes); returns residents hit."""
        return self._tlb.invalidate_many(vpns)

    def flush(self) -> None:
        """Full shootdown (tracking-stop reconfiguration)."""
        self._tlb.flush()

    def counters(self) -> dict:
        """Observability snapshot: hit/miss/eviction counts plus walks."""
        snapshot = self._tlb.stats.as_counters()
        snapshot["walks"] = self.walks
        return snapshot
