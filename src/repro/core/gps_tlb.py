"""The GPS-TLB: the translation cache inside the GPS address translation unit.

Paper sections 5.2 and 7.4: a small (32-entry, 8-way) TLB caching wide
GPS-PTEs. It only services drained remote writes — never loads — so it sees
far less pressure than the general-purpose GPU TLBs and reaches ~100% hit
rate at 32 entries. Misses trigger a hardware walk of the GPS page table,
whose latency hides behind the coalescing window (the entries being
translated are, by construction, not latency-sensitive).
"""

from __future__ import annotations

from ..config import GPSConfig
from ..memory.tlb import TLB, TLBStats
from .gps_page_table import GPSPageTable, GPSPTE


class GPSTLB:
    """Wide-entry TLB in front of the GPS page table."""

    def __init__(self, config: GPSConfig, page_table: GPSPageTable) -> None:
        self._tlb = TLB(entries=config.gps_tlb_entries, assoc=config.gps_tlb_assoc)
        self._page_table = page_table
        self.walks = 0

    @property
    def stats(self) -> TLBStats:
        """Hit/miss counters (hit rate is the section 7.4 sensitivity metric)."""
        return self._tlb.stats

    def translate(self, vpn: int) -> GPSPTE:
        """Translate one drained write's VPN to its wide PTE.

        A miss walks the GPS page table (counted in ``walks``) and installs
        the entry; translation content always comes from the page table so
        the TLB can never return stale subscriber sets in this model — the
        driver invalidates on subscription changes anyway, mirroring real
        shootdown behaviour.
        """
        if not self._tlb.access(vpn):
            self.walks += 1
        return self._page_table.lookup(vpn)

    def invalidate(self, vpn: int) -> bool:
        """Shoot down one entry after a subscription change."""
        return self._tlb.invalidate(vpn)

    def flush(self) -> None:
        """Full shootdown (tracking-stop reconfiguration)."""
        self._tlb.flush()

    def counters(self) -> dict:
        """Observability snapshot: hit/miss/eviction counts plus walks."""
        snapshot = self._tlb.stats.as_counters()
        snapshot["walks"] = self.walks
        return snapshot
