"""The GPS paradigm: publish-subscribe replication with proactive stores.

Execution model (paper sections 3-5):

* every allocation goes through ``cudaMallocGPS`` (automatic subscription),
  so all GPUs start subscribed to all pages — subscribed-by-default;
* iteration 0 is the profiling phase: the access tracking units observe the
  page-level access sets, and ``tracking_stop()`` unsubscribes GPUs from
  pages they never touched and demotes single-subscriber pages;
* every weak store to a (multi-subscriber) GPS page flows through the SM
  coalescer, the remote write queue, and the GPS address translation unit,
  producing one interconnect write per remote subscriber — concurrent with
  the kernel, drained fully at the phase barrier;
* loads are always local (a subscriber reads its own replica at full DRAM
  bandwidth); atomics are forwarded uncoalesced.

Because iterative programs repeat their kernels, the store-stream replay is
performed once per (kernel, subscription epoch) and its outbound window
reused across iterations — identical traffic, a fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from ..core.runtime import GPSRuntime
from ..errors import ParadigmError
from .base import ParadigmExecutor


class GPSExecutor(ParadigmExecutor):
    """GPS with automatic (default) or disabled subscription management."""

    name = "gps"

    def __init__(
        self,
        program,
        config,
        auto_subscription: bool = True,
        coalescing: bool = True,
        profile_iteration: int = 0,
    ) -> None:
        super().__init__(program, config)
        self.auto_subscription = auto_subscription
        self.coalescing = coalescing
        self.profile_iteration = profile_iteration
        self.runtime = GPSRuntime(config)
        for buf in program.buffers:
            alloc = self.runtime.malloc_gps(buf.name, buf.size)
            expected = self.analysis.buffer_base(buf.name)
            if alloc.start != expected:
                raise ParadigmError(
                    f"allocation layout diverged for {buf.name!r}: "
                    f"{alloc.start:#x} != {expected:#x}"
                )
        self._lines_per_page = config.page_size // 128
        self._tracking = False
        self._profiled = False
        self._profile_phases_total = len(program.phases_in_iteration(profile_iteration))
        self._profile_phases_seen = 0
        #: (kernel, steady_epoch) -> OutboundWindow
        self._window_cache: dict = {}
        self.tracking_summary: dict = {}

    # -- profiling window ------------------------------------------------------

    def before_phase(self, phase) -> None:
        if not self.auto_subscription or self._profiled:
            return
        if phase.iteration == self.profile_iteration and not self._tracking:
            self.runtime.tracking_start()
            self._tracking = True

    def after_phase(self, phase) -> None:
        if not self._tracking or phase.iteration != self.profile_iteration:
            return
        self._profile_phases_seen += 1
        if self._profile_phases_seen == self._profile_phases_total:
            self.tracking_summary = self.runtime.tracking_stop()
            self._tracking = False
            self._profiled = True

    # -- per-kernel GPS processing -------------------------------------------------

    def _outbound_window(self, kernel):
        """Outbound traffic of one kernel under the current epoch (cached)."""
        key = (kernel, self._profiled)
        if key in self._window_cache:
            return self._window_cache[key]
        unit = self.runtime.gps_units[kernel.gpu]
        subs = self.runtime.subscriptions
        for fp, stream, atomic in self.analysis.store_streams(kernel):
            if fp.is_sys_scoped:
                continue  # handled by the collapse path, never forwarded
            if self._profiled:
                page_mask = subs.multi_subscriber_mask(fp.pages)
                if not page_mask.any():
                    continue
                if not page_mask.all():
                    multi = fp.pages[page_mask]
                    mask = np.isin(stream.lines // self._lines_per_page, multi)
                    stream = type(stream)(stream.lines[mask], stream.bytes_per_txn[mask])
                    if len(stream) == 0:
                        continue
            unit.process_stores(stream, atomic=atomic or not self.coalescing)
        window = unit.sync()
        self._window_cache[key] = window
        return window

    def execute_phase(self, phase, after):
        out_tasks = []
        for kernel in phase.kernels:
            footprint = self.analysis.footprint(kernel)
            if self._tracking:
                self.runtime.record_accesses(kernel.gpu, footprint.all_pages)
            # Loads are local replicas; stores hit the local replica too.
            duration = self.roofline(footprint)
            out_tasks.append(self.kernel_task(phase, kernel, duration, after))
            # Proactive publication: concurrent with the kernel, joined at
            # the barrier (remote write queue drains at grid end). Setup
            # phases initialise each replica locally and publish nothing.
            if self.is_setup_phase(phase):
                continue
            window = self._outbound_window(kernel)
            for dst, nbytes in sorted(window.bytes_to.items()):
                out_tasks.extend(
                    self.add_transfer(
                        f"{phase.name}/gps-pub", kernel.gpu, dst, nbytes, deps=after
                    )
                )
        return out_tasks

    # -- results ---------------------------------------------------------------

    def register_counters(self):
        """Publish the GPS hardware-unit stats into the counter registry.

        Per-GPU instances land under ``gpuN.`` scopes (``gpu0.gps_tlb.misses``);
        the registry's snapshot rolls them up into system-wide aggregates
        (``gps_tlb.misses``). The shared GPS page table is registered once,
        unscoped.
        """
        for gpu, unit in enumerate(self.runtime.gps_units):
            scope = self.counters.scope(f"gpu{gpu}")
            scope.provide("write_queue", unit.write_queue.stats.as_counters)
            scope.provide("gps_tlb", unit.tlb.counters)
        self.counters.provide("gps_page_table", self.runtime.gps_page_table.counters)
        per_gpu_coalescer: dict = {}
        for kernel in {k for phase in self.program.phases for k in phase.kernels}:
            stats = self.analysis.coalescer_stats(kernel)
            merged = per_gpu_coalescer.setdefault(kernel.gpu, {})
            for key, value in stats.as_counters().items():
                merged[key] = merged.get(key, 0) + value
        for gpu, merged in per_gpu_coalescer.items():
            scope = self.counters.scope(f"gpu{gpu}")
            for key, value in merged.items():
                scope.add(f"sm_coalescer.{key}", value)

    def build_result(self, total_time):
        result = super().build_result(total_time)
        result.write_queue_stats = [u.write_queue.stats for u in self.runtime.gps_units]
        result.gps_tlb_stats = [u.tlb.stats for u in self.runtime.gps_units]
        result.subscriber_histogram = dict(
            self.runtime.subscriptions.subscriber_histogram(only_shared=True)
        )
        result.extras["tracking"] = self.tracking_summary
        result.extras["auto_subscription"] = self.auto_subscription
        return result


class GPSNoSubscriptionExecutor(GPSExecutor):
    """GPS with subscription tracking disabled: permanent all-to-all.

    The Figure 11 comparison point — every store broadcasts to every GPU
    for the whole run.
    """

    name = "gps_nosub"

    def __init__(self, program, config) -> None:
        super().__init__(program, config, auto_subscription=False)


class GPSNoCoalescingExecutor(GPSExecutor):
    """Ablation: the remote write queue forwards every store uncombined."""

    name = "gps_nocoalesce"

    def __init__(self, program, config) -> None:
        super().__init__(program, config, coalescing=False)
