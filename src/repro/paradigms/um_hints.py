"""Unified Memory with expert hints.

Paper section 6: each region's *preferred location* is the GPU that writes
it (producers are also consumers in the evaluated applications); readers
get *accessed-by* mappings; and before each kernel the runtime prefetches
the remote regions the kernel will read.

The crucial limitation (section 2.1): UM **cannot replicate pages that
have a writer** — read duplication only exists for read-only pages, and
the suite has none. A prefetch therefore *migrates* the page to the
reader. The consequences this model charges, which are exactly the paper's
"thrashing page migrations and expensive faults and TLB shootdowns":

* prefetch traffic is page-granular (over-fetch, the Figure 10 Diffusion
  observation) and only partially overlaps compute;
* a page prefetched by several readers in one phase can live in only one
  of them — the losers take demand faults and pull the data at cacheline
  wire granularity;
* the producer's next write to a page that was prefetched away faults,
  migrates the page home, and pays a TLB shootdown.

Writes to pages whose preferred location is elsewhere become remote peer
stores: no stall, but link traffic.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .base import ParadigmExecutor


class UMHintsExecutor(ParadigmExecutor):
    """UM with preferred-location, accessed-by, and prefetch hints."""

    name = "um_hints"

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        self._preferred = self._derive_preferred_locations()
        #: Pages currently resident away from their preferred location
        #: (prefetched to a reader): vpn -> holder GPU.
        self._drifted: dict[int, int] = {}
        self.prefetched_pages = 0
        self.writeback_faults = 0
        self.contended_faults = 0

    def _derive_preferred_locations(self) -> dict:
        """vpn -> preferred GPU: the page's most frequent writer.

        Mirrors the methodology: "we set the GPU that issues writes to a
        given memory region as its preferred location". Pages never written
        fall back to their buffer's home GPU.
        """
        tallies: dict[int, Counter] = {}
        for kernel in self.program.iter_kernels():
            footprint = self.analysis.footprint(kernel)
            for vpn in footprint.store_pages.tolist():
                tallies.setdefault(vpn, Counter())[kernel.gpu] += 1
        preferred = {}
        for vpn, tally in tallies.items():
            best = max(tally.items(), key=lambda item: (item[1], -item[0]))
            preferred[vpn] = best[0]
        return preferred

    def _preferred_of(self, vpn: int) -> int:
        if vpn in self._preferred:
            return self._preferred[vpn]
        buf = self.analysis.buffer_of_page(vpn)
        return buf.home_gpu if buf is not None else 0

    def _holder_of(self, vpn: int) -> int:
        return self._drifted.get(vpn, self._preferred_of(vpn))

    def execute_phase(self, phase, after):
        um = self.config.um
        page_size = self.config.page_size
        sat = um.fault_storm_saturation
        readers_by_page = self.analysis.phase_page_readers(phase)

        out_tasks = []
        setup = self.is_setup_phase(phase)
        for kernel in phase.kernels:
            footprint = self.analysis.footprint(kernel)
            gpu = kernel.gpu
            prefetch_from: dict[int, int] = {}
            demand_from: dict[int, int] = {}
            demand_txns = 0
            writeback_faults = 0
            contended_faults = 0

            if not setup:
                # Reads of pages held elsewhere: prefetch-migrate. Contended
                # pages (several readers this phase) land at the lowest
                # reader; the rest demand-fault and pull lines.
                for fp in footprint.reads:
                    for vpn in fp.pages.tolist():
                        holder = self._holder_of(vpn)
                        if holder == gpu:
                            continue
                        phase_readers = readers_by_page.get(vpn, [gpu])
                        winner = min(phase_readers)
                        if winner == gpu:
                            prefetch_from[holder] = (
                                prefetch_from.get(holder, 0) + page_size
                            )
                            self._drifted[vpn] = gpu
                            self.prefetched_pages += 1
                        else:
                            contended_faults += 1
                            lines = max(1, fp.txns // max(1, len(fp.pages)))
                            demand_from[winner] = (
                                demand_from.get(winner, 0) + lines * 128
                            )
                            demand_txns += lines

                # Writes to pages that drifted away: fault them home with a
                # shootdown each. Writes to pages preferred elsewhere: peer
                # stores (no stall, traffic only).
                peer_store_to: dict[int, int] = {}
                for fp in footprint.stores:
                    for vpn in fp.pages.tolist():
                        pref = self._preferred_of(vpn)
                        holder = self._holder_of(vpn)
                        if pref == gpu and holder != gpu:
                            writeback_faults += 1
                            prefetch_from[holder] = (
                                prefetch_from.get(holder, 0) + page_size
                            )
                            self._drifted.pop(vpn, None)
                        elif pref != gpu:
                            share = fp.payload_bytes // max(1, len(fp.pages))
                            peer_store_to[pref] = peer_store_to.get(pref, 0) + share
                for dst, nbytes in peer_store_to.items():
                    out_tasks.extend(
                        self.add_transfer(
                            f"{phase.name}/peer-store", gpu, dst, nbytes, deps=after
                        )
                    )

            prefetch_exposed = 0.0
            for src, nbytes in prefetch_from.items():
                out_tasks.extend(
                    self.add_transfer(f"{phase.name}/prefetch", src, gpu, nbytes, deps=after)
                )
                prefetch_exposed += self.transfer_duration(nbytes) * (
                    1.0 - um.prefetch_overlap
                )
            demand_time = 0.0
            for src, nbytes in demand_from.items():
                out_tasks.extend(
                    self.add_transfer(f"{phase.name}/demand", src, gpu, nbytes, deps=after)
                )
                demand_time += self.transfer_duration(nbytes)

            # Hint-path faults resolve cheaper than blind UM faults (the
            # driver already holds placement metadata for hinted ranges),
            # and alternating prefetch hints return roughly half the
            # drifted pages before the producer writes them — only the
            # remainder fault.
            eff_writeback = (writeback_faults + 1) // 2
            eff_contended = (contended_faults + 1) // 2
            faults = eff_writeback + eff_contended
            hint_fault_latency = um.fault_latency * 0.5
            stall = hint_fault_latency * faults / (1.0 + faults / sat) if faults else 0.0
            stall += um.shootdown_latency * eff_writeback / (1.0 + eff_writeback / sat)
            self.writeback_faults += writeback_faults
            self.contended_faults += contended_faults

            duration = (
                self.roofline(footprint, extra_stall=stall + demand_time)
                + prefetch_exposed
            )
            out_tasks.append(self.kernel_task(phase, kernel, duration, after))
        return out_tasks

    def register_counters(self):
        """Publish hint-path fault/prefetch totals under the ``um.`` prefix."""
        um = self.counters.scope("um")
        um.add("prefetched_pages", self.prefetched_pages)
        um.add("writeback_faults", self.writeback_faults)
        um.add("contended_faults", self.contended_faults)

    def build_result(self, total_time):
        result = super().build_result(total_time)
        result.fault_count = self.writeback_faults + self.contended_faults
        result.pages_migrated = self.prefetched_pages + self.writeback_faults
        result.extras["prefetched_pages"] = self.prefetched_pages
        result.extras["writeback_faults"] = self.writeback_faults
        result.extras["contended_faults"] = self.contended_faults
        return result
