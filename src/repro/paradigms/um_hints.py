"""Unified Memory with expert hints.

Paper section 6: each region's *preferred location* is the GPU that writes
it (producers are also consumers in the evaluated applications); readers
get *accessed-by* mappings; and before each kernel the runtime prefetches
the remote regions the kernel will read.

The crucial limitation (section 2.1): UM **cannot replicate pages that
have a writer** — read duplication only exists for read-only pages, and
the suite has none. A prefetch therefore *migrates* the page to the
reader. The consequences this model charges, which are exactly the paper's
"thrashing page migrations and expensive faults and TLB shootdowns":

* prefetch traffic is page-granular (over-fetch, the Figure 10 Diffusion
  observation) and only partially overlaps compute;
* a page prefetched by several readers in one phase can live in only one
  of them — the losers take demand faults and pull the data at cacheline
  wire granularity;
* the producer's next write to a page that was prefetched away faults,
  migrates the page home, and pays a TLB shootdown.

Writes to pages whose preferred location is elsewhere become remote peer
stores: no stall, but link traffic.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from .base import ParadigmExecutor


def _accumulate_by_gpu(totals: dict, gpus: np.ndarray, amount_each: int) -> None:
    """Add ``amount_each`` per element of ``gpus`` into ``totals``.

    Keys are inserted in first-occurrence order of ``gpus`` — the same dict
    order a per-element loop would produce, which downstream transfer
    emission depends on.
    """
    uniq, first, counts = np.unique(gpus, return_index=True, return_counts=True)
    for i in np.argsort(first, kind="stable").tolist():
        key = int(uniq[i])
        totals[key] = totals.get(key, 0) + int(counts[i]) * amount_each


class UMHintsExecutor(ParadigmExecutor):
    """UM with preferred-location, accessed-by, and prefetch hints."""

    name = "um_hints"

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        self._preferred = self._derive_preferred_locations()
        # Page-index-space state: index = vpn - _page_base. ``_pref_arr``
        # resolves the dominant-writer preference with the buffer-home
        # fallback baked in; ``_drift_arr`` holds the current away-holder
        # (-1 = resident at its preferred location).
        self._page_base, span = self.analysis.heap_page_span()
        self._pref_arr = self.analysis.home_gpu_array().copy()
        if self._preferred:
            vpns = np.fromiter(self._preferred.keys(), dtype=np.int64, count=len(self._preferred))
            prefs = np.fromiter(
                self._preferred.values(), dtype=np.int64, count=len(self._preferred)
            )
            self._pref_arr[vpns - self._page_base] = prefs
        self._drift_arr = np.full(span, -1, dtype=np.int64)
        self.prefetched_pages = 0
        self.writeback_faults = 0
        self.contended_faults = 0

    def _derive_preferred_locations(self) -> dict:
        """vpn -> preferred GPU: the page's most frequent writer.

        Mirrors the methodology: "we set the GPU that issues writes to a
        given memory region as its preferred location". Pages never written
        fall back to their buffer's home GPU.
        """
        tallies: dict[int, Counter] = {}
        for kernel in self.program.iter_kernels():
            footprint = self.analysis.footprint(kernel)
            for vpn in footprint.store_pages.tolist():
                tallies.setdefault(vpn, Counter())[kernel.gpu] += 1
        preferred = {}
        for vpn, tally in tallies.items():
            best = max(tally.items(), key=lambda item: (item[1], -item[0]))
            preferred[vpn] = best[0]
        return preferred

    def _preferred_of(self, vpn: int) -> int:
        idx = vpn - self._page_base
        if 0 <= idx < self._pref_arr.shape[0]:
            return int(self._pref_arr[idx])
        return 0

    def _holder_of(self, vpn: int) -> int:
        idx = vpn - self._page_base
        if 0 <= idx < self._drift_arr.shape[0] and self._drift_arr[idx] >= 0:
            return int(self._drift_arr[idx])
        return self._preferred_of(vpn)

    def execute_phase(self, phase, after):
        um = self.config.um
        page_size = self.config.page_size
        sat = um.fault_storm_saturation
        reader_vpns, reader_min = self.analysis.phase_min_readers(phase)

        out_tasks = []
        setup = self.is_setup_phase(phase)
        for kernel in phase.kernels:
            footprint = self.analysis.footprint(kernel)
            gpu = kernel.gpu
            prefetch_from: dict[int, int] = {}
            demand_from: dict[int, int] = {}
            demand_txns = 0
            writeback_faults = 0
            contended_faults = 0

            if not setup:
                # Reads of pages held elsewhere: prefetch-migrate. Contended
                # pages (several readers this phase) land at the lowest
                # reader; the rest demand-fault and pull lines.
                for fp in footprint.reads:
                    idx = fp.pages - self._page_base
                    drift = self._drift_arr[idx]
                    holders = np.where(drift >= 0, drift, self._pref_arr[idx])
                    remote = holders != gpu
                    if not remote.any():
                        continue
                    pages_r = fp.pages[remote]
                    holders_r = holders[remote]
                    if reader_vpns.size:
                        pos = np.minimum(
                            np.searchsorted(reader_vpns, pages_r), reader_vpns.size - 1
                        )
                        found = reader_vpns[pos] == pages_r
                        winners = np.where(found, reader_min[pos], gpu)
                    else:
                        winners = np.full(pages_r.shape, gpu, dtype=np.int64)
                    won = winners == gpu
                    if won.any():
                        _accumulate_by_gpu(prefetch_from, holders_r[won], page_size)
                        self._drift_arr[idx[remote][won]] = gpu
                        self.prefetched_pages += int(won.sum())
                    lost = ~won
                    if lost.any():
                        n_lost = int(lost.sum())
                        contended_faults += n_lost
                        lines = max(1, fp.txns // max(1, len(fp.pages)))
                        _accumulate_by_gpu(demand_from, winners[lost], lines * 128)
                        demand_txns += lines * n_lost

                # Writes to pages that drifted away: fault them home with a
                # shootdown each. Writes to pages preferred elsewhere: peer
                # stores (no stall, traffic only).
                peer_store_to: dict[int, int] = {}
                for fp in footprint.stores:
                    idx = fp.pages - self._page_base
                    pref = self._pref_arr[idx]
                    drift = self._drift_arr[idx]
                    holders = np.where(drift >= 0, drift, pref)
                    writeback = (pref == gpu) & (holders != gpu)
                    if writeback.any():
                        writeback_faults += int(writeback.sum())
                        _accumulate_by_gpu(prefetch_from, holders[writeback], page_size)
                        self._drift_arr[idx[writeback]] = -1
                    peer = pref != gpu
                    if peer.any():
                        share = fp.payload_bytes // max(1, len(fp.pages))
                        _accumulate_by_gpu(peer_store_to, pref[peer], share)
                for dst, nbytes in peer_store_to.items():
                    out_tasks.extend(
                        self.add_transfer(
                            f"{phase.name}/peer-store", gpu, dst, nbytes, deps=after
                        )
                    )

            prefetch_exposed = 0.0
            for src, nbytes in prefetch_from.items():
                out_tasks.extend(
                    self.add_transfer(f"{phase.name}/prefetch", src, gpu, nbytes, deps=after)
                )
                prefetch_exposed += self.transfer_duration(nbytes) * (
                    1.0 - um.prefetch_overlap
                )
            demand_time = 0.0
            for src, nbytes in demand_from.items():
                out_tasks.extend(
                    self.add_transfer(f"{phase.name}/demand", src, gpu, nbytes, deps=after)
                )
                demand_time += self.transfer_duration(nbytes)

            # Hint-path faults resolve cheaper than blind UM faults (the
            # driver already holds placement metadata for hinted ranges),
            # and alternating prefetch hints return roughly half the
            # drifted pages before the producer writes them — only the
            # remainder fault.
            eff_writeback = (writeback_faults + 1) // 2
            eff_contended = (contended_faults + 1) // 2
            faults = eff_writeback + eff_contended
            hint_fault_latency = um.fault_latency * 0.5
            stall = hint_fault_latency * faults / (1.0 + faults / sat) if faults else 0.0
            stall += um.shootdown_latency * eff_writeback / (1.0 + eff_writeback / sat)
            self.writeback_faults += writeback_faults
            self.contended_faults += contended_faults

            duration = (
                self.roofline(footprint, extra_stall=stall + demand_time)
                + prefetch_exposed
            )
            out_tasks.append(self.kernel_task(phase, kernel, duration, after))
        return out_tasks

    def register_counters(self):
        """Publish hint-path fault/prefetch totals under the ``um.`` prefix."""
        um = self.counters.scope("um")
        um.add("prefetched_pages", self.prefetched_pages)
        um.add("writeback_faults", self.writeback_faults)
        um.add("contended_faults", self.contended_faults)

    def build_result(self, total_time):
        result = super().build_result(total_time)
        result.fault_count = self.writeback_faults + self.contended_faults
        result.pages_migrated = self.prefetched_pages + self.writeback_faults
        result.extras["prefetched_pages"] = self.prefetched_pages
        result.extras["writeback_faults"] = self.writeback_faults
        result.extras["contended_faults"] = self.contended_faults
        return result
