"""Multi-GPU memory-management paradigms (paper section 6).

Each executor runs a trace program on a system under one data-placement
discipline:

* :class:`~repro.paradigms.um.UMExecutor` — fault-based Unified Memory;
* :class:`~repro.paradigms.um_hints.UMHintsExecutor` — UM with
  preferred-location / accessed-by / prefetch hints;
* :class:`~repro.paradigms.rdl.RDLExecutor` — remote demand loads;
* :class:`~repro.paradigms.memcpy.MemcpyExecutor` — bulk-synchronous
  broadcast at barriers;
* :class:`~repro.paradigms.gps.GPSExecutor` — the paper's contribution;
* :class:`~repro.paradigms.infinite.InfiniteBWExecutor` — the
  infinite-bandwidth upper bound.
"""

from .base import ParadigmExecutor
from .gps import GPSExecutor
from .infinite import InfiniteBWExecutor
from .memcpy import MemcpyExecutor
from .rdl import RDLExecutor
from .registry import PARADIGMS, make_executor
from .um import UMExecutor
from .um_hints import UMHintsExecutor

__all__ = [
    "ParadigmExecutor",
    "GPSExecutor",
    "InfiniteBWExecutor",
    "MemcpyExecutor",
    "RDLExecutor",
    "UMExecutor",
    "UMHintsExecutor",
    "PARADIGMS",
    "make_executor",
]
