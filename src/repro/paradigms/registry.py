"""Name -> executor registry for the evaluation harness."""

from __future__ import annotations

from ..config import SystemConfig
from ..errors import ParadigmError
from ..trace.program import TraceProgram
from .base import ParadigmExecutor
from .gps import GPSExecutor, GPSNoCoalescingExecutor, GPSNoSubscriptionExecutor
from .infinite import InfiniteBWExecutor
from .memcpy import MemcpyExecutor
from .rdl import RDLExecutor
from .um import UMExecutor
from .um_hints import UMHintsExecutor

#: Paradigm name -> executor class. The first six are the paper's Figure 8
#: comparison set; the rest are ablation variants.
PARADIGMS: dict = {
    "um": UMExecutor,
    "um_hints": UMHintsExecutor,
    "rdl": RDLExecutor,
    "memcpy": MemcpyExecutor,
    "gps": GPSExecutor,
    "infinite": InfiniteBWExecutor,
    "gps_nosub": GPSNoSubscriptionExecutor,
    "gps_nocoalesce": GPSNoCoalescingExecutor,
}

#: Display order and labels matching the paper's figures.
FIGURE8_ORDER = ("um", "um_hints", "rdl", "memcpy", "gps", "infinite")
LABELS = {
    "um": "UM",
    "um_hints": "UM+hints",
    "rdl": "RDL",
    "memcpy": "Memcpy",
    "gps": "GPS",
    "infinite": "Infinite BW",
    "gps_nosub": "GPS w/o subscription",
    "gps_nocoalesce": "GPS w/o coalescing",
}


def make_executor(name: str, program: TraceProgram, config: SystemConfig) -> ParadigmExecutor:
    """Instantiate the named paradigm executor."""
    try:
        cls = PARADIGMS[name]
    except KeyError:
        raise ParadigmError(
            f"unknown paradigm {name!r}; available: {sorted(PARADIGMS)}"
        ) from None
    return cls(program, config)
