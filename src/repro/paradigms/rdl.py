"""Remote Demand Loads (RDL).

Paper section 6: the converse of GPS — stores go to local memory and loads
are issued, on demand, to the most recent GPU that stored to the page. The
simulator tracks the last writer of every page exactly, standing in for the
"expert programmer who manually tracks writers to each page".

Remote loads ride the link *during* the kernel, so they overlap compute,
but they bound the kernel's duration when the link is the bottleneck and
they add dependent-load stalls that warp multithreading only partially
hides. Remote loads bypass the L2 in this model, so temporally repetitive
access patterns refetch the same cachelines over the interconnect — the
exact pathology Figure 10 shows for ALS.
"""

from __future__ import annotations

import numpy as np

from ..gpu.kernel_timing import DEFAULT_REMOTE_MLP
from .base import ParadigmExecutor


class RDLExecutor(ParadigmExecutor):
    """Local stores, demand remote loads from each page's last writer."""

    name = "rdl"

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        # Last GPU to store to each page, in page-index space (index =
        # vpn - _page_base); seeded from each buffer's home GPU.
        self._page_base, _ = self.analysis.heap_page_span()
        self._writer_arr = self.analysis.home_gpu_array().copy()
        self.remote_read_bytes_total = 0

    def _writer_of(self, vpn: int) -> int:
        idx = vpn - self._page_base
        if 0 <= idx < self._writer_arr.shape[0]:
            return int(self._writer_arr[idx])
        return 0

    def execute_phase(self, phase, after):
        mlp = int(self.program.metadata.get("remote_mlp", DEFAULT_REMOTE_MLP))
        link = self.config.link
        hiding = self.config.rdl_latency_hiding

        # First pass: per-kernel remote pull demands, per source.
        demands = []  # (kernel, footprint, local_reads, pull_from, txns, payload)
        for kernel in phase.kernels:
            footprint = self.analysis.footprint(kernel)
            pull_from: dict[int, int] = {}
            local_reads = dict(footprint.read_bytes_by_kind)
            remote_txns = 0
            remote_payload = 0
            for fp in footprint.reads:
                writers = self._writer_arr[fp.pages - self._page_base]
                remote_mask = writers != kernel.gpu
                if not remote_mask.any():
                    continue
                frac = float(remote_mask.mean())
                remote_bytes = int(fp.payload_bytes * frac)
                txns = int(fp.txns * frac)
                remote_txns += txns
                remote_payload += remote_bytes
                local_reads[fp.kind] = max(0, local_reads.get(fp.kind, 0) - remote_bytes)
                # Peer loads fetch whole cache lines over the interconnect:
                # a 16-byte gather still moves 128 bytes of wire payload —
                # the waste the paper's section 7.5 and the ALS discussion
                # in Figure 10 describe.
                wire_bytes = txns * 128
                n_remote = int(remote_mask.sum())
                for src in np.unique(writers[remote_mask]).tolist():
                    share = wire_bytes * int((writers == src).sum()) // n_remote
                    pull_from[src] = pull_from.get(src, 0) + share
            demands.append((kernel, footprint, local_reads, pull_from, remote_txns, remote_payload))

        # Source-port contention: a producer serving several readers
        # serialises their pulls on its egress port.
        src_load: dict[int, int] = {}
        for _, _, _, pull_from, _, _ in demands:
            for src, nbytes in pull_from.items():
                src_load[src] = src_load.get(src, 0) + nbytes

        out_tasks = []
        for kernel, footprint, local_reads, pull_from, remote_txns, remote_payload in demands:
            own_bytes = sum(pull_from.values())
            self.remote_read_bytes_total += remote_payload
            own_time = self.transfer_duration(own_bytes)
            src_times = [self.transfer_duration(src_load[src]) for src in pull_from]
            remote_bw_time = max([own_time] + src_times) if pull_from else 0.0
            serial_latency = remote_txns * link.latency / max(1, mlp)
            remote_latency_time = serial_latency * (1.0 - hiding)
            duration = self.roofline(
                footprint,
                read_bytes_by_kind=local_reads,
                remote_bw_time=remote_bw_time,
                remote_latency_time=remote_latency_time,
            )
            out_tasks.append(self.kernel_task(phase, kernel, duration, after))
            # Port occupancy + traffic accounting for the pulls.
            for src, nbytes in pull_from.items():
                out_tasks.extend(
                    self.add_transfer(f"{phase.name}/rdl-pull", src, kernel.gpu, nbytes, deps=after)
                )

        # Update last-writer state after the phase completes.
        written_vpns, last_writers = self.analysis.phase_max_writers(phase)
        if written_vpns.size:
            self._writer_arr[written_vpns - self._page_base] = last_writers
        return out_tasks

    def register_counters(self):
        """Publish the demand-load payload total under the ``rdl.`` prefix."""
        self.counters.scope("rdl").add("remote_read_bytes", self.remote_read_bytes_total)

    def build_result(self, total_time):
        result = super().build_result(total_time)
        result.extras["remote_read_bytes"] = self.remote_read_bytes_total
        return result
