"""Fault-based Unified Memory (no hints).

Paper section 6: shared regions come from ``cudaMallocManaged``; the first
GPU to touch a page gets it, and every subsequent peer access page-faults,
stalls the accessing warp group, and migrates the page. Pages shared by
several GPUs in one phase thrash back and forth every iteration — the
mechanism behind UM's sub-1x speedups in Figure 8 and its traffic blow-up
in Figure 10.

Model: page residency is tracked exactly; within a phase, accessors are
served in GPU order and each non-resident access migrates the page (fault
latency, batched, on the faulting kernel's critical path; page bytes on the
link ports).
"""

from __future__ import annotations

from .base import ParadigmExecutor


class UMExecutor(ParadigmExecutor):
    """Unified Memory with fault-driven page migration."""

    name = "um"

    def __init__(self, program, config) -> None:
        super().__init__(program, config)
        #: vpn -> gpu currently holding the (single) copy.
        self._residence: dict[int, int] = {}
        self.fault_count = 0
        self.pages_migrated = 0
        #: First-touch faults (populate, no migration traffic).
        self.populate_faults = 0

    def execute_phase(self, phase, after):
        page_size = self.config.page_size
        um = self.config.um
        tasks = []
        # Deterministic service order: ascending GPU id within the phase.
        kernels = sorted(phase.kernels, key=lambda k: k.gpu)
        migrate_bytes_in: dict[int, int] = {}
        migrate_bytes_out: dict[int, int] = {}
        kernel_tasks = []
        for kernel in kernels:
            footprint = self.analysis.footprint(kernel)
            gpu = kernel.gpu
            faults = 0
            populate = 0
            migrated = 0
            for vpn in footprint.all_pages.tolist():
                holder = self._residence.get(vpn)
                if holder is None:
                    self._residence[vpn] = gpu
                    populate += 1
                elif holder != gpu:
                    faults += 1
                    migrated += 1
                    self.traffic.add(holder, gpu, page_size)
                    migrate_bytes_out[holder] = migrate_bytes_out.get(holder, 0) + page_size
                    migrate_bytes_in[gpu] = migrate_bytes_in.get(gpu, 0) + page_size
                    self._residence[vpn] = gpu
            self.fault_count += faults + populate
            self.pages_migrated += migrated
            self.populate_faults += populate
            # Faults stall the kernel: the driver pipelines concurrent
            # faults, so the serial stall saturates for storms, plus the
            # time to pull the migrated pages over the link at (inefficient,
            # page-granular) migration DMA bandwidth — all exposed, since
            # demand migration serialises with the access that triggered it.
            sat = um.fault_storm_saturation
            stall = um.fault_latency * faults / (1.0 + faults / sat)
            stall += um.fault_latency * 0.5 * populate / (1.0 + populate / sat)
            stall += self.transfer_duration(
                int(migrated * page_size / um.migration_efficiency)
            )
            duration = self.roofline(footprint, extra_stall=stall)
            kernel_tasks.append(self.kernel_task(phase, kernel, duration, after))
        # Port occupancy for the migration traffic (concurrent with the
        # kernels, since migrations happen during execution). Migration
        # bytes are double-entry bookkeeping like any other transfer: the
        # traffic matrix (added per-page above) and the link counters must
        # agree per port.
        link = self.counters.scope("link")
        for gpu, nbytes in migrate_bytes_out.items():
            link.add(f"egress{gpu}.bytes", nbytes)
            link.add("bytes", nbytes)
            link.add("transfers")
            tasks.append(
                self.engine.task(
                    f"{phase.name}/um-mig-eg{gpu}",
                    self.transfer_duration(nbytes),
                    self.egress(gpu),
                    after,
                    category="transfer",
                    attrs={"bytes": nbytes, "src": gpu},
                )
            )
        for gpu, nbytes in migrate_bytes_in.items():
            link.add(f"ingress{gpu}.bytes", nbytes)
            tasks.append(
                self.engine.task(
                    f"{phase.name}/um-mig-in{gpu}",
                    self.transfer_duration(nbytes),
                    self.ingress(gpu),
                    after,
                    category="transfer",
                    attrs={"bytes": nbytes, "dst": gpu},
                )
            )
        return kernel_tasks + tasks

    def register_counters(self):
        """Publish fault/migration totals under the ``um.`` prefix."""
        um = self.counters.scope("um")
        um.add("faults", self.fault_count)
        um.add("populate_faults", self.populate_faults)
        um.add("pages_migrated", self.pages_migrated)

    def build_result(self, total_time):
        result = super().build_result(total_time)
        result.fault_count = self.fault_count
        result.pages_migrated = self.pages_migrated
        result.extras["populate_faults"] = self.populate_faults
        return result
