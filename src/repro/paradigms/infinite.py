"""The infinite-bandwidth upper bound.

Paper section 6: "We obtain this comparison by eliding the data transfer
time from the memcpy variant." Identical dataflow and byte accounting to
:class:`~repro.paradigms.memcpy.MemcpyExecutor`, but transfers take zero
time — every byte is always local, and what remains is pure computation,
launch overheads, and barrier costs. This is the 3.2x (4 GPUs) / ~10x
(16 GPUs) ceiling the paper measures GPS against.
"""

from __future__ import annotations

from .memcpy import MemcpyExecutor


class InfiniteBWExecutor(MemcpyExecutor):
    """memcpy dataflow with transfer time elided."""

    name = "infinite"
    zero_transfer_time = True
