"""The memcpy paradigm: bulk-synchronous broadcast at phase barriers.

Paper section 6: every shared data structure is duplicated on every GPU;
after each phase, each producer broadcasts its written region to all peers
via ``cudaMemcpy``. Kernels then run fully local, but transfers never
overlap compute — the defining weakness the paper's Figure 8 exposes ("on
average does not achieve any improvement over a well-optimized single GPU
implementation").

Transfers move the written *extent* of each shared buffer, not the written
payload: a DMA copy cannot skip clean bytes inside the region, which is why
sparse writers pay heavily under this paradigm (and why Figure 10
normalises everyone else's traffic to memcpy's).
"""

from __future__ import annotations

from .base import ParadigmExecutor


class MemcpyExecutor(ParadigmExecutor):
    """Bulk-synchronous replication with host-initiated DMA."""

    name = "memcpy"
    #: Subclass knob: the infinite-bandwidth variant elides transfer time.
    zero_transfer_time = False

    def execute_phase(self, phase, after):
        kernel_tasks = []
        for kernel in phase.kernels:
            footprint = self.analysis.footprint(kernel)
            duration = self.roofline(footprint)
            kernel_tasks.append(self.kernel_task(phase, kernel, duration, after))
        # Bulk-synchronous broadcasts: dependent on *all* kernels (the host
        # drains the phase before issuing DMA), serialised on port resources.
        # Setup phases initialise every replica locally — no broadcast.
        if self.is_setup_phase(phase):
            return kernel_tasks
        transfer_tasks = []
        others = range(self.config.num_gpus)
        for kernel in phase.kernels:
            extent = self.analysis.written_extent_bytes(kernel, shared_only=True)
            if extent <= 0:
                continue
            for dst in others:
                if dst == kernel.gpu or dst >= self.program.num_gpus:
                    continue
                transfer_tasks.extend(
                    self.add_transfer(
                        f"{phase.name}/memcpy",
                        kernel.gpu,
                        dst,
                        extent,
                        deps=kernel_tasks,
                        zero_time=self.zero_transfer_time,
                    )
                )
        return kernel_tasks + transfer_tasks
