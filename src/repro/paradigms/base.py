"""Shared paradigm-executor machinery.

An executor owns one DES engine, one traffic matrix, and the program
analysis; it walks the program phase by phase, emitting kernel tasks on GPU
compute resources and transfer tasks on link port resources. Subclasses
implement :meth:`ParadigmExecutor.execute_phase` and may hook
:meth:`before_phase` / :meth:`after_phase` (GPS uses these for its
profiling window).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Optional

from ..config import SystemConfig
from ..gpu.kernel_timing import KernelTiming, KernelTimingModel
from ..interconnect.traffic import TrafficMatrix
from ..obs import CounterRegistry, TraceCollector
from ..obs.span import CATEGORY_KERNEL, CATEGORY_TRANSFER
from ..sim.engine import Engine, Resource, Task
from ..system.analysis import KernelFootprint, get_analysis
from ..system.results import PhaseBreakdown, SimulationResult
from ..trace.program import Phase, TraceProgram

#: Multi-GPU barrier cost between phases (driver sync + semaphore fan-in).
PHASE_SYNC_OVERHEAD = 10e-6

#: Assumed L2 hit rate for the write stream (write-back absorption).
STORE_L2_HIT = 0.25


class ParadigmExecutor(ABC):
    """Template for all memory-management paradigm simulations."""

    name = "abstract"

    def __init__(self, program: TraceProgram, config: SystemConfig) -> None:
        if program.num_gpus > config.num_gpus:
            raise ValueError(
                f"program targets {program.num_gpus} GPUs but the system has {config.num_gpus}"
            )
        self.program = program
        self.config = config
        self.analysis = get_analysis(program, config)
        self.timing = KernelTimingModel(config.gpu)
        self.traffic = TrafficMatrix(config.num_gpus)
        #: Structured span trace of the run (shared with the engine); gated
        #: by ``REPRO_NO_TRACE``.
        self.collector = TraceCollector()
        #: Hierarchical hardware-counter registry, snapshotted into
        #: :attr:`SimulationResult.counters` by :meth:`build_result`.
        self.counters = CounterRegistry()
        self.engine = Engine(self.collector)
        self._gpu_res = [self.engine.resource(f"gpu{g}") for g in range(config.num_gpus)]
        self._egress_res = [self.engine.resource(f"egress{g}") for g in range(config.num_gpus)]
        self._ingress_res = [self.engine.resource(f"ingress{g}") for g in range(config.num_gpus)]
        self._phases_out: list[PhaseBreakdown] = []

    # -- resources -------------------------------------------------------------

    def gpu_resource(self, gpu: int) -> Resource:
        """The compute resource of one GPU."""
        return self._gpu_res[gpu]

    def egress(self, gpu: int) -> Resource:
        """The egress port resource of one GPU."""
        return self._egress_res[gpu]

    def ingress(self, gpu: int) -> Resource:
        """The ingress port resource of one GPU."""
        return self._ingress_res[gpu]

    # -- shared cost helpers --------------------------------------------------------

    def roofline(
        self,
        footprint: KernelFootprint,
        read_bytes_by_kind: Optional[dict] = None,
        store_bytes_by_kind: Optional[dict] = None,
        remote_bw_time: float = 0.0,
        remote_latency_time: float = 0.0,
        extra_stall: float = 0.0,
    ) -> float:
        """Kernel duration: compute/local-memory roofline plus exposed terms.

        ``read_bytes_by_kind`` / ``store_bytes_by_kind`` override the
        footprint's local byte mix (paradigms that satisfy some accesses
        remotely pass the reduced local mix); remote terms come in
        pre-computed because contention policies differ per paradigm.
        """
        reads = footprint.read_bytes_by_kind if read_bytes_by_kind is None else read_bytes_by_kind
        stores = (
            footprint.store_bytes_by_kind if store_bytes_by_kind is None else store_bytes_by_kind
        )
        read_time = self.timing.local_memory_time(reads, footprint.l2_hit_rate)
        write_time = self.timing.local_memory_time(stores, STORE_L2_HIT)
        dram = self.counters.scope(f"gpu{footprint.kernel.gpu}").scope("dram")
        dram.add("read_bytes", sum(reads.values()))
        dram.add("write_bytes", sum(stores.values()))
        # TLB pressure: a footprint beyond last-level TLB coverage pays
        # page-walk storms — the mechanism that penalises 4 KiB pages in
        # the paper's section 7.4 page-size study.
        gpu = self.config.gpu
        overflow = max(0, int(footprint.all_pages.size) - gpu.tlb_entries)
        extra_stall += overflow * gpu.tlb_walk_penalty
        compute_time = footprint.kernel.compute_ops / self.timing.achieved_throughput
        timing = KernelTiming(
            compute_time=compute_time,
            local_mem_time=read_time + write_time,
            remote_bw_time=remote_bw_time,
            remote_latency_time=remote_latency_time + extra_stall,
            launch_overhead=footprint.kernel.launch_overhead,
        )
        return timing.total

    def transfer_duration(self, num_bytes: int) -> float:
        """Port occupancy time for one transfer on the configured link."""
        if num_bytes <= 0:
            return 0.0
        link = self.config.link
        if math.isinf(link.effective_bandwidth):
            return 0.0
        return link.latency + num_bytes / link.effective_bandwidth

    def add_transfer(
        self,
        label: str,
        src: int,
        dst: int,
        num_bytes: int,
        deps: list,
        record: bool = True,
        zero_time: bool = False,
    ) -> list:
        """Emit egress+ingress tasks for one transfer; returns both tasks.

        ``zero_time`` keeps the byte accounting but elides the duration —
        the infinite-bandwidth paradigm's definition (section 6).
        """
        if num_bytes <= 0 or src == dst:
            return []
        if record:
            self.traffic.add(src, dst, num_bytes)
            link = self.counters.scope("link")
            link.add(f"egress{src}.bytes", num_bytes)
            link.add(f"ingress{dst}.bytes", num_bytes)
            link.add("bytes", num_bytes)
            link.add("transfers")
        duration = 0.0 if zero_time else self.transfer_duration(num_bytes)
        attrs = {"bytes": num_bytes, "src": src, "dst": dst}
        e_task = self.engine.task(
            f"{label}:eg{src}->{dst}", duration, self.egress(src), deps,
            category=CATEGORY_TRANSFER, attrs=attrs,
        )
        i_task = self.engine.task(
            f"{label}:in{src}->{dst}", duration, self.ingress(dst), deps,
            category=CATEGORY_TRANSFER, attrs=attrs,
        )
        return [e_task, i_task]

    def kernel_task(self, phase: Phase, kernel, duration: float, deps: list) -> Task:
        """Emit one kernel task on its GPU with structured span metadata.

        The canonical name shape ``<phase>/<kernel>@gpuN`` is what phase
        breakdowns and the self-time profiler key on.
        """
        return self.engine.task(
            f"{phase.name}/{kernel.name}@gpu{kernel.gpu}",
            duration,
            self.gpu_resource(kernel.gpu),
            deps,
            category=CATEGORY_KERNEL,
            attrs={"gpu": kernel.gpu, "phase": phase.name, "iteration": phase.iteration},
        )

    @staticmethod
    def is_setup_phase(phase: Phase) -> bool:
        """Whether a phase is initialisation (iteration < 0).

        Setup writes initialise data in place — under replicating paradigms
        (GPS, memcpy) each replica is initialised locally (the moral
        equivalent of a per-GPU ``cudaMemset``), so setup stores produce no
        interconnect broadcast. Placement side effects (first touch, last
        writer) still apply.
        """
        return phase.iteration < 0

    # -- phase walk -------------------------------------------------------------

    def before_phase(self, phase: Phase) -> None:
        """Hook invoked before a phase's tasks are emitted."""

    def after_phase(self, phase: Phase) -> None:
        """Hook invoked after a phase's tasks are emitted."""

    @abstractmethod
    def execute_phase(self, phase: Phase, after: list) -> list:
        """Emit this phase's tasks; returns the tasks the barrier must join.

        ``after`` holds the dependency tasks every task in the phase must
        wait on (the previous phase's barrier).
        """

    def run(self) -> SimulationResult:
        """Execute the whole program and assemble the result."""
        after: list = []
        barriers = []
        for phase in self.program.phases:
            self.before_phase(phase)
            tasks = self.execute_phase(phase, after)
            sync_cost = PHASE_SYNC_OVERHEAD if self.config.num_gpus > 1 else 0.0
            barrier = self.engine.task(f"barrier:{phase.name}", sync_cost, None, tasks or after)
            barriers.append((phase, barrier, tasks))
            after = [barrier]
            self.after_phase(phase)
        total = self.engine.run()
        prev_end = 0.0
        for phase, barrier, tasks in barriers:
            # Kernel tasks are named ".../<kernel>@gpuN"; everything else in
            # the phase is communication or fault handling.
            kernel_time = max(
                (t.duration for t in tasks if "@gpu" in t.name), default=0.0
            )
            duration = barrier.end - prev_end
            exposed = max(0.0, duration - kernel_time - barrier.duration)
            self._phases_out.append(
                PhaseBreakdown(
                    name=phase.name,
                    start=prev_end,
                    end=barrier.end,
                    kernel_time=kernel_time,
                    exposed_transfer_time=exposed,
                )
            )
            prev_end = barrier.end
        return self.build_result(total)

    def register_counters(self) -> None:
        """Hook: attach lazy counter providers before the snapshot.

        Subclasses register their hardware models' stats objects here
        (GPS-TLB, write queue, page table, coalescer); the base walk calls
        it exactly once, from :meth:`build_result`.
        """

    def schedule_digest(self) -> str:
        """Canonical digest of the scheduled task graph (after :meth:`run`).

        Every executor is required to be deterministic: the same program and
        config must schedule the same tasks at the same instants in every
        process. The verify subsystem asserts this by comparing digests
        across execution paths.
        """
        return self.engine.schedule_digest()

    def build_result(self, total_time: float) -> SimulationResult:
        """Assemble the common result fields; subclasses extend."""
        self.register_counters()
        result = SimulationResult(
            program_name=self.program.name,
            paradigm=self.name,
            num_gpus=self.program.num_gpus,
            total_time=total_time,
            traffic=self.traffic,
            phases=self._phases_out,
            counters=self.counters.as_dict(),
        )
        # The digest rides in extras so every execution path (direct, disk
        # cache, result store, process pool, service) carries it: a cross-path divergence
        # can then be localised to the scheduler vs. the result assembly.
        result.extras["schedule_digest"] = self.schedule_digest()
        return result
