"""Command-line interface: run simulations and regenerate paper artifacts.

Usage (after ``pip install -e .``)::

    python -m repro run jacobi --paradigm gps --gpus 4 --link pcie6
    python -m repro compare ct --gpus 4 --scale 0.5
    python -m repro figure fig8 --scale 0.5 --iterations 8 --json out.json
    python -m repro trace stencil --gpus 2 --out trace.json   # Perfetto trace
    python -m repro profile jacobi --paradigm gps --top 10
    python -m repro serve --port 8787                         # simulation service
    python -m repro submit stencil --gpus 4                   # job via the service
    python -m repro verify --cases 25 --seed 0                # conformance harness
    python -m repro cache show
    python -m repro list

Everything the CLI does goes through the same public API the examples use;
it exists so that a reproduction run is one shell command per figure.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    FIGURE8_ORDER,
    LABELS,
    LINKS_BY_NAME,
    PARADIGMS,
    default_system,
    get_workload,
    simulate,
    speedup_over_single_gpu,
    workload_names,
)
from .harness import experiments
from .harness.ascii_plot import bar_chart
from .harness.runner import cache_stats, clear_disk_cache, disk_cache_info, fleet_stats
from .harness.export import to_json
from .harness.report import format_speedup_matrix, format_table
from .units import fmt_bytes, fmt_time
from .workloads.registry import resolve_workload_name as _resolve_workload


#: Default paradigm set ``repro verify`` differentials (imported lazily in
#: the handler; duplicated here so the parser needs no heavy imports).
_DEFAULT_VERIFY_PARADIGMS = ("gps", "gps_nosub", "memcpy", "infinite")

#: CLI figure name -> (driver, accepts scale/iterations).
FIGURES = {
    "fig1": (experiments.fig1_motivation, True),
    "fig3": (experiments.fig3_bandwidth_gap, False),
    "fig8": (experiments.fig8_end_to_end, True),
    "fig9": (experiments.fig9_subscriber_distribution, True),
    "fig10": (experiments.fig10_interconnect_traffic, True),
    "fig11": (experiments.fig11_subscription_benefit, True),
    "fig12": (experiments.fig12_sixteen_gpus, True),
    "fig13": (experiments.fig13_bandwidth_sensitivity, True),
    "fig14": (experiments.fig14_write_queue_hit_rate, False),
    "gps-tlb": (experiments.gps_tlb_sensitivity, False),
    "page-size": (experiments.page_size_sensitivity, True),
    "table1": (experiments.table1_simulation_settings, False),
    "table2": (experiments.table2_applications, False),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPS multi-GPU memory management — trace-driven reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload under one paradigm")
    run.add_argument("workload", choices=workload_names())
    run.add_argument("--paradigm", default="gps", choices=sorted(PARADIGMS))
    run.add_argument("--gpus", type=int, default=4)
    run.add_argument("--link", default="pcie6", choices=sorted(LINKS_BY_NAME))
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--iterations", type=int, default=8)

    compare = sub.add_parser("compare", help="all six paradigms on one workload")
    compare.add_argument("workload", choices=workload_names())
    compare.add_argument("--gpus", type=int, default=4)
    compare.add_argument("--link", default="pcie6", choices=sorted(LINKS_BY_NAME))
    compare.add_argument("--scale", type=float, default=0.5)
    compare.add_argument("--iterations", type=int, default=8)

    figure = sub.add_parser("figure", help="regenerate one paper figure/table")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--scale", type=float, default=1.0)
    figure.add_argument("--iterations", type=int, default=16)
    figure.add_argument("--json", metavar="PATH", help="also write the result as JSON")
    figure.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="simulation worker processes (default: REPRO_MAX_WORKERS or all cores)",
    )
    figure.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result cache for this invocation",
    )

    cache = sub.add_parser("cache", help="inspect or clear the persistent result cache")
    cache.add_argument("action", nargs="?", choices=("show", "clear"), default="show")

    store = sub.add_parser(
        "store",
        help="inspect and maintain the versioned result store",
        description=(
            "Operate on the append-only, snapshot-versioned result store "
            "(repro.store): summarise it, query stored results with "
            "attribute filters, manage tags, compact partitions, vacuum "
            "expired snapshots, and walk the commit history. "
            "See docs/STORE.md."
        ),
    )
    store_sub = store.add_subparsers(dest="store_action", required=True)

    def _store_common(p) -> None:
        p.add_argument(
            "--dir",
            metavar="DIR",
            default=None,
            help="store directory (default: REPRO_STORE_DIR or .repro-store)",
        )
        p.add_argument(
            "--at",
            metavar="REF",
            default=None,
            help="read at a snapshot id or tag instead of the current snapshot",
        )

    _store_common(store_sub.add_parser("show", help="snapshot/partition/tag summary"))

    store_query = store_sub.add_parser(
        "query", help="attribute-filtered scan over stored results"
    )
    _store_common(store_query)
    store_query.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="FIELD<OP>VALUE",
        help="filter such as paradigm=gps or num_gpus>=8; repeatable, ANDed; "
        "'=' with a comma list means membership",
    )
    store_query.add_argument(
        "--columns", metavar="COL,COL", help="comma-separated column projection"
    )
    store_query.add_argument(
        "--order-by",
        dest="order_by",
        metavar="COL",
        help="sort column; prefix with '-' for descending",
    )
    store_query.add_argument("--limit", type=int, metavar="N")
    store_query.add_argument(
        "--json", action="store_true", help="emit rows as JSON instead of a table"
    )

    store_tags = store_sub.add_parser(
        "tags", help="list tags, or tag/untag a snapshot"
    )
    _store_common(store_tags)
    store_tags.add_argument(
        "name", nargs="?", help="with NAME: tag the --at (or current) snapshot"
    )
    store_tags.add_argument(
        "--drop", action="store_true", help="drop tag NAME instead of creating it"
    )

    _store_common(
        store_sub.add_parser(
            "compact", help="merge each cell's partition files, dropping shadowed copies"
        )
    )

    store_vacuum = store_sub.add_parser(
        "vacuum", help="expire old snapshots and delete unreachable partition files"
    )
    _store_common(store_vacuum)
    store_vacuum.add_argument(
        "--keep-last",
        dest="keep_last",
        type=int,
        default=8,
        metavar="N",
        help="retain the N most recent snapshots plus every tagged one (default: 8)",
    )
    store_vacuum.add_argument(
        "--no-expire",
        action="store_true",
        help="only remove already-unreachable files; expire no snapshots",
    )

    store_history = store_sub.add_parser(
        "history", help="walk the snapshot log, newest first"
    )
    _store_common(store_history)
    store_history.add_argument("--limit", type=int, default=20, metavar="N")

    sub.add_parser("list", help="list workloads, paradigms, and interconnects")

    trace = sub.add_parser(
        "trace",
        help="run one workload and export a Perfetto/Chrome-trace span trace",
        description=(
            "Simulate one workload under one paradigm with span tracing forced "
            "on, then export the schedule as Chrome trace-event JSON (openable "
            "at https://ui.perfetto.dev) with a provenance manifest."
        ),
    )
    trace.add_argument("workload", help="workload name (or alias, e.g. 'stencil')")
    trace.add_argument("--paradigm", default="gps", choices=sorted(PARADIGMS))
    trace.add_argument("--gpus", type=int, default=4)
    trace.add_argument("--link", default="pcie6", choices=sorted(LINKS_BY_NAME))
    trace.add_argument("--scale", type=float, default=0.5)
    trace.add_argument("--iterations", type=int, default=8)
    trace.add_argument("--out", metavar="PATH", help="trace JSON output (default: <workload>.trace.json)")
    trace.add_argument("--metrics", metavar="PATH", help="also write flat counter metrics (.json or .csv)")
    trace.add_argument("--top", type=int, default=10, help="profile rows to print (0 = none)")
    trace.add_argument(
        "--validate",
        action="store_true",
        help="schema-check the emitted trace and fail on any problem",
    )

    profile = sub.add_parser(
        "profile",
        help="run one workload and print a top-N self-time profile",
    )
    profile.add_argument("workload", help="workload name (or alias, e.g. 'stencil')")
    profile.add_argument("--paradigm", default="gps", choices=sorted(PARADIGMS))
    profile.add_argument("--gpus", type=int, default=4)
    profile.add_argument("--link", default="pcie6", choices=sorted(LINKS_BY_NAME))
    profile.add_argument("--scale", type=float, default=0.5)
    profile.add_argument("--iterations", type=int, default=8)
    profile.add_argument("--top", type=int, default=15, help="rows to print")

    export_trace = sub.add_parser(
        "export-trace", help="export a workload's trace *program* to JSON"
    )
    export_trace.add_argument("workload")
    export_trace.add_argument("path", help="output JSON file")
    export_trace.add_argument("--gpus", type=int, default=4)
    export_trace.add_argument("--scale", type=float, default=0.5)
    export_trace.add_argument("--iterations", type=int, default=8)

    run_trace = sub.add_parser("run-trace", help="simulate a saved trace file")
    run_trace.add_argument("path")
    run_trace.add_argument("--paradigm", default="gps", choices=sorted(PARADIGMS))
    run_trace.add_argument("--link", default="pcie6", choices=sorted(LINKS_BY_NAME))
    run_trace.add_argument(
        "--no-analyze",
        action="store_true",
        help="skip the pre-simulation static analysis gate",
    )

    lint = sub.add_parser(
        "lint",
        help="statically analyze a trace for memory-model and hygiene issues",
        description=(
            "Run the repro.analysis static analyzer over saved trace files, "
            "registered workloads' generated traces, or (with target 'all') every "
            "registered workload. With --fix, auto-repairable findings are applied "
            "to a fixed point and the repaired program is re-analyzed (and "
            "optionally saved with --fix-out). Exit code: 2 on error-severity "
            "findings, 1 on warnings under --strict, 0 otherwise."
        ),
    )
    lint.add_argument(
        "target",
        nargs="+",
        help="trace JSON files, registered workload names, or 'all'",
    )
    lint.add_argument("--gpus", type=int, default=4, help="workload targets only")
    lint.add_argument("--scale", type=float, default=0.5, help="workload targets only")
    lint.add_argument("--iterations", type=int, default=8, help="workload targets only")
    lint.add_argument(
        "--format",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on warnings, not just errors",
    )
    lint.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="only run these rule codes/prefixes (comma-separated, repeatable)",
    )
    lint.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="suppress these rule codes/prefixes (comma-separated, repeatable)",
    )
    lint.add_argument(
        "--fix",
        action="store_true",
        help="apply planned auto-fixes to a fixed point, then report the repaired program",
    )
    lint.add_argument(
        "--fix-out",
        metavar="PATH",
        help="write the repaired trace program as JSON (single target only; implies --fix)",
    )
    lint.add_argument(
        "--fix-level",
        choices=("error", "warning", "info"),
        default="warning",
        help="minimum severity a finding needs to be auto-fixed (default: warning)",
    )
    lint.add_argument(
        "--portability",
        action="store_true",
        help="print the paradigm-portability matrix (text format; JSON/SARIF always embed it)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the simulation service (JSON over HTTP)",
        description=(
            "Host the asyncio simulation service: a bounded priority job "
            "queue with request coalescing, batched onto the harness "
            "runner's process pool. Defaults come from REPRO_SERVICE_* "
            "environment variables; flags override. See docs/SERVICE.md."
        ),
    )
    serve.add_argument("--host", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, help="bind port (default 8787; 0 = ephemeral)")
    serve.add_argument("--queue-depth", type=int, help="max queued simulations before 429s")
    serve.add_argument("--batch-size", type=int, help="max simulations per scheduler batch")
    serve.add_argument(
        "--max-wait-ms", type=float, help="batch age window in milliseconds"
    )
    serve.add_argument("--max-retries", type=int, help="retry budget per job")
    serve.add_argument(
        "--workers", type=int, help="simulation worker processes per batch"
    )
    serve.add_argument(
        "--no-trace",
        action="store_true",
        help="disable distributed request tracing (also: REPRO_SERVICE_TRACE=0)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        help="queue+scheduler shards, partitioned by config fingerprint (default 1)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        help="per-client submissions/second token-bucket refill (default: off)",
    )
    serve.add_argument(
        "--rate-burst", type=float, help="per-client token-bucket burst capacity"
    )
    serve.add_argument(
        "--drain-policy",
        choices=("reroute", "reject"),
        help="what happens to a draining shard's new jobs (default: reroute)",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        help="persist completed jobs to this result store and enable GET /query",
    )

    def _add_client_args(p) -> None:
        p.add_argument(
            "--url",
            help="service URL (default: REPRO_SERVICE_URL or http://127.0.0.1:8787)",
        )
        p.add_argument("--json", action="store_true", help="print the raw JSON payload")

    submit = sub.add_parser(
        "submit", help="submit one simulation to a running service"
    )
    submit.add_argument("workload", help="workload name (or alias, e.g. 'stencil')")
    submit.add_argument("--paradigm", default="gps", choices=sorted(PARADIGMS))
    submit.add_argument("--gpus", type=int, default=4)
    submit.add_argument("--link", default="pcie6", choices=sorted(LINKS_BY_NAME))
    submit.add_argument("--scale", type=float, default=0.5)
    submit.add_argument("--iterations", type=int, default=8)
    submit.add_argument("--priority", type=int, default=0, help="higher runs earlier")
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id immediately instead of polling to completion",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, help="seconds to wait for the result"
    )
    _add_client_args(submit)

    status = sub.add_parser("status", help="show one submitted job's status")
    status.add_argument("id", help="job id returned by 'repro submit'")
    _add_client_args(status)

    result = sub.add_parser("result", help="fetch one completed job's result")
    result.add_argument("id", help="job id returned by 'repro submit'")
    _add_client_args(result)

    events = sub.add_parser(
        "events",
        help="stream one job's lifecycle events (queued/scheduled/running/done)",
    )
    events.add_argument("id", help="job id returned by 'repro submit'")
    events.add_argument(
        "--no-follow",
        action="store_true",
        help="dump the log so far and exit instead of following to completion",
    )
    _add_client_args(events)

    slo = sub.add_parser(
        "slo",
        help="evaluate the service's SLOs (compliance, burn rate, error budget)",
        description=(
            "Read the live SLO evaluation off GET /healthz: per-objective "
            "compliance over its trailing window, the burn rate "
            "(bad fraction / error budget), and remaining budget. Exit code "
            "1 when any SLO is out of budget. See docs/OBSERVABILITY.md."
        ),
    )
    _add_client_args(slo)

    query = sub.add_parser(
        "query",
        help="query a running service's result store (analytics SDK)",
        description=(
            "Read through GET /query: attribute-filtered, column-projected "
            "rows out of the service's attached result lakehouse, or "
            "server-side metric buckets via GET /query/buckets. Filters use "
            "the 'repro store query' grammar (field<op>value, comma lists "
            "for 'in'). See docs/SERVICE.md."
        ),
    )
    query.add_argument(
        "--where",
        action="append",
        metavar="EXPR",
        help="filter clause, e.g. workload=stencil or num_gpus>=4 (repeatable)",
    )
    query.add_argument(
        "--columns", metavar="A,B,C", help="project these columns, in order"
    )
    query.add_argument(
        "--order-by", metavar="FIELD", help="sort field; prefix with - for descending"
    )
    query.add_argument("--limit", type=int, help="return at most this many rows")
    query.add_argument(
        "--at", metavar="SNAPSHOT", help="time-travel: read at this snapshot id or tag"
    )
    query.add_argument(
        "--bucket",
        metavar="SERIES",
        help="instead of rows, bucket this metric series (e.g. jobs.run_s)",
    )
    query.add_argument(
        "--bucket-s",
        type=float,
        default=60.0,
        help="bucket width in seconds for --bucket (default 60)",
    )
    _add_client_args(query)

    verify = sub.add_parser(
        "verify",
        help="fuzz + invariant oracle + differential conformance harness",
        description=(
            "Generate analyzer-clean random trace programs, check every "
            "simulation against the invariant oracle, and assert that the "
            "direct, disk-cache, result-store, process-pool, and "
            "live-service execution "
            "paths agree byte-for-byte. Failures write machine-readable "
            "repro artifacts with greedily minimised programs. Exit code: "
            "0 when every case passes, 1 otherwise. See docs/VERIFY.md."
        ),
    )
    verify.add_argument("--seed", type=int, default=0, help="first fuzz seed")
    verify.add_argument("--cases", type=int, default=10, help="number of fuzz cases")
    verify.add_argument(
        "--paradigms",
        default=",".join(_DEFAULT_VERIFY_PARADIGMS),
        help="comma-separated paradigm list, or 'all' "
        f"(default: {','.join(_DEFAULT_VERIFY_PARADIGMS)})",
    )
    verify.add_argument("--gpus", type=int, default=4)
    verify.add_argument("--link", default="pcie6", choices=sorted(LINKS_BY_NAME))
    verify.add_argument("--scale", type=float, default=0.25)
    verify.add_argument("--iterations", type=int, default=2)
    verify.add_argument(
        "--no-service",
        action="store_true",
        help="skip the live-service execution path",
    )
    verify.add_argument(
        "--out",
        metavar="DIR",
        default="verify-artifacts",
        help="directory for failure-repro artifacts (default: verify-artifacts/)",
    )
    verify.add_argument(
        "--list-checks",
        action="store_true",
        help="print the oracle check catalogue and exit",
    )
    verify.add_argument(
        "--sanitizer",
        action="store_true",
        help=(
            "run the sanitizer self-validation harness instead: fuzz clean "
            "programs, inject known defects, and assert the analyzer, "
            "portability gate, and auto-fix engine catch and repair each one"
        ),
    )
    return parser


def _cmd_run(args) -> int:
    config = default_system(args.gpus, LINKS_BY_NAME[args.link])
    workload = get_workload(args.workload)
    program = workload.build(args.gpus, scale=args.scale, iterations=args.iterations)
    result = simulate(program, args.paradigm, config)
    speedup, _, single = speedup_over_single_gpu(
        lambda n: workload.build(n, scale=args.scale, iterations=args.iterations),
        args.paradigm,
        config,
    )
    print(f"workload      : {args.workload} ({workload.info.comm_pattern})")
    print(f"paradigm      : {LABELS[args.paradigm]}")
    print(f"system        : {args.gpus}x {config.gpu.name} over {config.link.name}")
    print(f"simulated time: {fmt_time(result.total_time)}")
    print(f"1-GPU baseline: {fmt_time(single.total_time)}  -> speedup {speedup:.2f}x")
    print(f"interconnect  : {fmt_bytes(result.interconnect_bytes)}")
    if result.fault_count:
        print(f"faults        : {result.fault_count} ({result.pages_migrated} pages migrated)")
    if result.subscriber_histogram:
        print(f"subscribers   : {dict(sorted(result.subscriber_histogram.items()))}")
    return 0


def _cmd_compare(args) -> int:
    config = default_system(args.gpus, LINKS_BY_NAME[args.link])
    workload = get_workload(args.workload)
    speedups = {}
    for paradigm in FIGURE8_ORDER:
        speedup, multi, _ = speedup_over_single_gpu(
            lambda n: workload.build(n, scale=args.scale, iterations=args.iterations),
            paradigm,
            config,
        )
        speedups[LABELS[paradigm]] = speedup
    print(
        bar_chart(
            speedups,
            title=(
                f"{args.workload} on {args.gpus} GPUs over {config.link.name} "
                f"(speedup vs 1 GPU)"
            ),
        )
    )
    return 0


def _cmd_figure(args) -> int:
    import os

    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.workers is not None:
        os.environ["REPRO_MAX_WORKERS"] = str(args.workers)
    driver, takes_knobs = FIGURES[args.name]
    kwargs = {}
    if takes_knobs:
        kwargs = {"scale": args.scale, "iterations": args.iterations}
        if args.name in ("fig9",):
            kwargs["iterations"] = min(args.iterations, 4)
    result = driver(**kwargs)
    if "speedups" in result and "paradigms" in result:
        print(format_speedup_matrix(result, title=args.name))
    elif "rows" in result:
        rows = result["rows"]
        headers = list(rows[0].keys())
        print(
            format_table(headers, [[r[h] for h in headers] for r in rows], title=args.name)
        )
    else:
        print(to_json(result))
    if args.json:
        to_json(result, path=args.json)
        print(f"(wrote {args.json})")
    stats = cache_stats()
    if stats.lookups:
        print(f"cache: {stats.report()}")
    fleet = fleet_stats()
    if fleet.runs:
        print(fleet.report())
    return 0


def _cmd_cache(args) -> int:
    """Inspect or clear the persistent cache; always exits 0.

    ``show`` prints fixed-order ``label : value`` columns — an empty or
    missing cache directory is a normal state (0 entries), not an error —
    followed by the fleet (service/run_many) stats when any run happened.
    """
    info = disk_cache_info()
    if args.action == "clear":
        if not info["enabled"]:
            print("persistent cache disabled (REPRO_NO_CACHE is set); nothing to clear")
            return 0
        removed = clear_disk_cache()
        print(f"removed {removed} cached results from {info['directory']}")
        return 0
    if not info["enabled"]:
        print("persistent cache  : disabled (REPRO_NO_CACHE is set)")
    else:
        rows = [
            ("persistent cache", info["directory"]),
            ("model fingerprint", info["model"]),
            ("entries", f"{info['entries']} ({fmt_bytes(info['size_bytes'])})"),
        ]
        if info.get("backend") == "store":
            # Extra row only in store mode: the flat default keeps its
            # pinned three-row layout.
            rows.insert(1, ("backend", "store (repro.store lakehouse)"))
        stats = cache_stats()
        if stats.lookups:
            rows.append(("this process", stats.report()))
        for label, value in rows:
            print(f"{label:<18}: {value}")
    fleet = fleet_stats()
    if fleet.runs:
        print(fleet.report())
    return 0


def _cmd_store(args) -> int:
    """Dispatch one ``repro store`` verb; exits 1 on any store error."""
    from .store import ResultStore, StoreError, default_store_dir

    directory = args.dir or default_store_dir()
    try:
        store = ResultStore.open(directory)
        return _STORE_ACTIONS[args.store_action](store, args)
    except StoreError as exc:
        print(f"store error: {exc}", file=sys.stderr)
        return 1


def _store_show(store, args) -> int:
    stats = store.stats()
    at = store.resolve(args.at)
    reachable = len(store.at(args.at).partitions())
    rows = [
        ("store", stats["directory"]),
        ("current snapshot", stats["current_snapshot"]),
        ("snapshots", stats["snapshots"]),
        ("records", stats["records"]),
        (
            "partitions",
            f"{stats['partitions']} live ({fmt_bytes(stats['bytes'])}), "
            f"{stats['partition_files']} files on disk",
        ),
        ("tags", ", ".join(f"{n}@{s}" for n, s in sorted(stats["tags"].items())) or "-"),
        (
            "views",
            ", ".join(
                f"{name}@{state if state is not None else '-'}"
                for name, state in sorted(stats["views"].items())
            ),
        ),
    ]
    if args.at is not None:
        rows.insert(2, ("reading at", f"{at} ({reachable} partitions)"))
    for label, value in rows:
        print(f"{label:<17}: {value}")
    return 0


def _store_query(store, args) -> int:
    import json as _json

    columns = args.columns.split(",") if args.columns else None
    result = store.query(
        where=args.where,
        columns=columns,
        order_by=args.order_by,
        limit=args.limit,
        at=args.at,
    )
    if args.json:
        print(_json.dumps(result.rows(), indent=2, sort_keys=True))
        return 0
    headers, rows = result.table()
    shown = [
        [f"{v:.6g}" if isinstance(v, float) else ("-" if v is None else v) for v in row]
        for row in rows
    ]
    title = f"{len(result)} result{'s' if len(result) != 1 else ''}"
    if args.at is not None:
        title += f" @ {store.resolve(args.at)}"
    print(format_table(headers, shown, title=title))
    return 0


def _store_tags(store, args) -> int:
    if args.name and args.drop:
        if store.drop_tag(args.name):
            print(f"dropped tag {args.name}")
            return 0
        print(f"no such tag {args.name}", file=sys.stderr)
        return 1
    if args.name:
        snapshot = store.tag(args.name, args.at)
        print(f"tagged snapshot {snapshot} as {args.name}")
        return 0
    tags = store.tags()
    if not tags:
        print("no tags")
        return 0
    for name, snapshot in sorted(tags.items()):
        print(f"{name:<24}: snapshot {snapshot}")
    return 0


def _store_compact(store, args) -> int:
    from .store import compact

    report = compact(store)
    if report.cells_compacted == 0:
        print("nothing to compact (every cell already has one partition file)")
        return 0
    print(
        f"compacted {report.cells_compacted} cells: "
        f"{report.files_before} -> {report.files_after} partition files, "
        f"{report.records} records, {report.shadowed_dropped} shadowed copies dropped "
        f"(snapshot {report.snapshot})"
    )
    return 0


def _store_vacuum(store, args) -> int:
    from .store import RetentionPolicy, vacuum

    report = vacuum(
        store,
        RetentionPolicy(keep_last=args.keep_last),
        expire=not args.no_expire,
    )
    print(
        f"expired {len(report.expired_snapshots)} snapshots, "
        f"removed {report.removed_partitions} partition files "
        f"({fmt_bytes(report.removed_bytes)}), "
        f"{report.removed_temp_files} temp files, "
        f"{report.view_states_pruned} view states; "
        f"{report.live_partitions} partitions live"
    )
    return 0


def _store_history(store, args) -> int:
    head = store.resolve(args.at)
    if head is None:
        print("empty store (no snapshots)")
        return 0
    tags_by_snapshot: "dict[int, list[str]]" = {}
    for name, snapshot in store.tags().items():
        tags_by_snapshot.setdefault(snapshot, []).append(name)
    shown = 0
    current = head
    while current is not None and shown < max(0, args.limit):
        snapshot = store.log.load(current)
        marks = "".join(f" <{t}>" for t in sorted(tags_by_snapshot.get(current, [])))
        delta = f"+{len(snapshot.added)}/-{len(snapshot.removed)} partitions"
        detail = ", ".join(f"{k}={v}" for k, v in sorted(snapshot.summary.items()))
        print(
            f"{current:>8}  {snapshot.operation:<8} {delta:<22} "
            f"{detail}{marks}"
        )
        current = snapshot.parent
        shown += 1
    if current is not None:
        print(f"... history continues at snapshot {current} (raise --limit)")
    return 0


#: ``repro store <verb>`` dispatch table.
_STORE_ACTIONS = {
    "show": _store_show,
    "query": _store_query,
    "tags": _store_tags,
    "compact": _store_compact,
    "vacuum": _store_vacuum,
    "history": _store_history,
}


def _traced_run(args):
    """Build + run one executor with span tracing forced on.

    Returns ``(executor, result, wall_clock_seconds)``. Deliberately skips
    the result cache: a cached result has no span trace to export.
    """
    import time as _time

    from .paradigms.registry import make_executor

    workload = get_workload(_resolve_workload(args.workload))
    program = workload.build(args.gpus, scale=args.scale, iterations=args.iterations)
    config = default_system(args.gpus, LINKS_BY_NAME[args.link])
    executor = make_executor(args.paradigm, program, config)
    executor.collector.enable()
    t0 = _time.perf_counter()
    result = executor.run()
    return executor, result, _time.perf_counter() - t0


def _cmd_trace(args) -> int:
    import json as _json

    from .obs import (
        format_profile,
        metrics_csv,
        metrics_json,
        run_manifest,
        self_time_profile,
        validate_chrome_trace,
        write_chrome_trace,
    )

    executor, result, wall = _traced_run(args)
    out = args.out or f"{_resolve_workload(args.workload)}.trace.json"
    manifest = run_manifest(result, executor.config, wall_clock=wall)
    payload = write_chrome_trace(out, executor.collector, manifest)
    spans = len(executor.collector)
    print(f"simulated time: {fmt_time(result.total_time)}")
    print(f"wrote {out}: {spans} spans on "
          f"{len(executor.collector.by_track())} tracks "
          f"(open at https://ui.perfetto.dev)")
    if args.metrics:
        if args.metrics.endswith(".csv"):
            with open(args.metrics, "w") as fh:
                fh.write(metrics_csv(result))
        else:
            with open(args.metrics, "w") as fh:
                _json.dump(metrics_json(result), fh, indent=2, sort_keys=True)
        print(f"wrote {args.metrics}: {len(result.counters)} counters")
    if args.top:
        print(format_profile(self_time_profile(executor.collector, top=args.top)))
    if args.validate:
        problems = validate_chrome_trace(payload)
        if problems:
            for problem in problems:
                print(f"trace validation: {problem}", file=sys.stderr)
            return 2
        print(f"trace validation: OK ({spans} spans)")
    return 0


def _cmd_profile(args) -> int:
    from .obs import format_profile, self_time_profile

    executor, result, _wall = _traced_run(args)
    print(f"simulated time: {fmt_time(result.total_time)}")
    title = (
        f"self-time profile: {_resolve_workload(args.workload)} / {args.paradigm} "
        f"on {args.gpus} GPUs"
    )
    print(format_profile(self_time_profile(executor.collector, top=args.top), title))
    return 0


def _cmd_export_trace(args) -> int:
    from .trace.io import save_program

    program = get_workload(_resolve_workload(args.workload)).build(
        args.gpus, scale=args.scale, iterations=args.iterations
    )
    save_program(program, args.path)
    print(
        f"wrote {args.path}: {len(program.phases)} phases, "
        f"{sum(1 for _ in program.iter_kernels())} kernels, "
        f"{len(program.buffers)} buffers"
    )
    return 0


def _cmd_run_trace(args) -> int:
    from .analysis import Severity, analyze_program
    from .trace.io import load_program

    program = load_program(args.path)
    config = default_system(program.num_gpus, LINKS_BY_NAME[args.link])
    if not args.no_analyze:
        diagnostics = analyze_program(program, page_size=config.page_size)
        for diagnostic in diagnostics:
            print(diagnostic)
        if any(d.severity is Severity.ERROR for d in diagnostics):
            print(f"{program.name}: refusing to simulate a trace with errors "
                  "(rerun with --no-analyze to override)")
            return 2
    result = simulate(program, args.paradigm, config)
    print(f"program       : {program.name} ({program.num_gpus} GPUs)")
    print(f"paradigm      : {LABELS[args.paradigm]}")
    print(f"simulated time: {fmt_time(result.total_time)}")
    print(f"interconnect  : {fmt_bytes(result.interconnect_bytes)}")
    return 0


def _lint_programs(args) -> "list":
    """Resolve the lint targets to a program list ('all' expands in place)."""
    from pathlib import Path

    from .trace.io import load_program

    programs = []
    for target in args.target:
        if target == "all":
            programs.extend(
                get_workload(name).build(
                    args.gpus, scale=args.scale, iterations=args.iterations
                )
                for name in workload_names()
            )
        elif target in workload_names() or not Path(target).exists():
            programs.append(
                get_workload(target).build(
                    args.gpus, scale=args.scale, iterations=args.iterations
                )
            )
        else:
            programs.append(load_program(target))
    return programs


def _cmd_lint(args) -> int:
    from .analysis import (
        Severity,
        analyze_program,
        fix_program,
        max_severity,
        portability_report,
        render_json_dict,
        render_portability_text,
        render_sarif_runs,
        render_text,
        sarif_run,
    )

    fixing = args.fix or args.fix_out is not None
    programs = _lint_programs(args)
    if args.fix_out is not None and len(programs) != 1:
        print("lint: --fix-out requires exactly one target", file=sys.stderr)
        return 2

    results = []
    for program in programs:
        if fixing:
            report = fix_program(
                program, min_severity=Severity(args.fix_level)
            )
            if report.changed:
                # Keep stdout machine-readable: the fix log goes to stderr.
                print(
                    f"lint: {program.name}: applied {len(report.applied)} fix(es) "
                    f"in {report.rounds} round(s)"
                    + ("" if report.converged else " (did not converge)"),
                    file=sys.stderr,
                )
                for applied in report.applied:
                    print(
                        f"lint:   {applied.fix.code}: {applied.fix.description}",
                        file=sys.stderr,
                    )
            program = report.program
        diagnostics = analyze_program(program, select=args.select, ignore=args.ignore)
        results.append((program, diagnostics))

    if args.fix_out is not None:
        from .trace.io import save_program

        save_program(results[0][0], args.fix_out)
        print(f"lint: wrote repaired trace to {args.fix_out}", file=sys.stderr)

    if args.format == "text":
        chunks = []
        for program, diags in results:
            chunk = render_text(program, diags)
            if args.portability:
                chunk += "\n" + render_portability_text(
                    portability_report(program, diags)
                )
            chunks.append(chunk)
        print("\n".join(chunks))
    elif args.format == "json":
        import json

        reports = [render_json_dict(program, diags) for program, diags in results]
        payload = reports[0] if len(reports) == 1 else {"programs": reports}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_sarif_runs([sarif_run(program, diags) for program, diags in results]))
    worst = max_severity([d for _, diags in results for d in diags])
    if worst is Severity.ERROR:
        return 2
    if worst is Severity.WARNING and args.strict:
        return 1
    return 0


def _cmd_serve(args) -> int:
    from .service import ServiceSettings, serve

    max_wait_s = args.max_wait_ms / 1000.0 if args.max_wait_ms is not None else None
    settings = ServiceSettings.from_env(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        max_wait_s=max_wait_s,
        max_retries=args.max_retries,
        max_workers=args.workers,
        trace=False if args.no_trace else None,
        shards=args.shards,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        drain_policy=args.drain_policy,
        store_dir=args.store,
    )
    return serve(settings)


def _print_result_payload(payload: dict, as_json: bool) -> None:
    import json as _json

    if as_json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return
    result = payload["result"]
    job = payload.get("job", {})
    print(f"job           : {payload['id']} ({payload['state']})")
    print(f"workload      : {result['program_name']} / {result['paradigm']} "
          f"on {result['num_gpus']} GPUs over {job.get('link', '?')}")
    print(f"simulated time: {fmt_time(result['total_time'])}")
    interconnect = sum(sum(row) for row in result["traffic"])
    print(f"interconnect  : {fmt_bytes(interconnect)}")


def _cmd_submit(args) -> int:
    import json as _json

    from .service import ClientError, JobFailed, ServiceClient

    client = ServiceClient(args.url)
    try:
        job = client.submit(
            args.workload,
            paradigm=args.paradigm,
            gpus=args.gpus,
            link=args.link,
            scale=args.scale,
            iterations=args.iterations,
            priority=args.priority,
        )
        if args.no_wait:
            if args.json:
                print(_json.dumps(job, indent=2, sort_keys=True))
            else:
                print(f"submitted {job['id']} ({job['state']}"
                      f"{', coalesced' if job['coalesced'] else ''}"
                      f"{', cache hit' if job['cache_hit'] else ''})")
            return 0
        payload = client.wait(job["id"], timeout=args.timeout)
    except JobFailed as exc:
        print(f"job failed: {exc}", file=sys.stderr)
        return 3
    except ClientError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    _print_result_payload(payload, args.json)
    return 0


def _cmd_status(args) -> int:
    import json as _json

    from .service import ClientError, ServiceClient

    try:
        payload = ServiceClient(args.url).status(args.id)
    except ClientError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        wait_s = payload["wait_s"]
        run_s = payload["run_s"]
        print(f"job           : {payload['id']} ({payload['state']})")
        print(f"submission    : {payload['job']['workload']} / {payload['job']['paradigm']} "
              f"on {payload['job']['num_gpus']} GPUs over {payload['job']['link']}")
        print(f"flags         : coalesced={payload['coalesced']} "
              f"cache_hit={payload['cache_hit']} attempts={payload['attempts']}")
        print(f"latency       : wait {wait_s:.3f}s" if wait_s is not None else
              "latency       : still queued")
        if run_s is not None:
            print(f"run           : {run_s:.3f}s")
        if payload.get("error"):
            print(f"error         : {payload['error']}")
    return 0


def _cmd_result(args) -> int:
    from .service import ClientError, JobFailed, ServiceClient

    client = ServiceClient(args.url)
    try:
        payload = client.result(args.id)
    except JobFailed as exc:
        print(f"job failed: {exc}", file=sys.stderr)
        return 3
    except ClientError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    if payload is None:
        print(f"job {args.id} is still pending", file=sys.stderr)
        return 1
    _print_result_payload(payload, args.json)
    return 0


def _cmd_events(args) -> int:
    import json as _json

    from .service import ClientError, ServiceClient

    client = ServiceClient(args.url)
    try:
        for event in client.events(args.id, follow=not args.no_follow):
            if args.json:
                print(_json.dumps(event, sort_keys=True), flush=True)
            else:
                detail = " ".join(
                    f"{key}={value}"
                    for key, value in sorted(event.items())
                    if key not in ("seq", "t", "event")
                )
                print(f"[{event['seq']:3d}] {event['event']:<16} {detail}".rstrip(), flush=True)
    except ClientError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_slo(args) -> int:
    import json as _json

    from .service import ClientError, ServiceClient

    try:
        slos = ServiceClient(args.url).slo()
    except ClientError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(slos, indent=2, sort_keys=True))
        return 0 if all(item["ok"] for item in slos) else 1
    print(f"{'SLO':<18} {'objective':>9} {'window':>8} {'samples':>8} "
          f"{'compliance':>10} {'burn rate':>9} {'budget left':>11}  status")
    for item in slos:
        window = f"{item['window_s'] / 3600:.1f}h"
        print(f"{item['name']:<18} {item['objective']:>9.3f} {window:>8} "
              f"{item['total']:>8d} {item['compliance']:>10.4f} "
              f"{item['burn_rate']:>9.2f} {item['error_budget_remaining']:>11.2f}  "
              f"{'ok' if item['ok'] else 'BREACHED'}")
    return 0 if all(item["ok"] for item in slos) else 1


def _cmd_query(args) -> int:
    import json as _json

    from .service import ClientError, QueryClient

    client = QueryClient(args.url)
    try:
        if args.bucket:
            payload = client.buckets(args.bucket, bucket_s=args.bucket_s)
            if args.json:
                print(_json.dumps(payload, indent=2, sort_keys=True))
                return 0
            headers = ["bucket start", "n", "min", "max", "avg", "p50", "p99"]
            rows = [
                [
                    f"{bucket['t']:.3f}",
                    bucket["count"],
                    *(f"{bucket[k]:.6g}" for k in ("min", "max", "avg", "p50", "p99")),
                ]
                for bucket in payload.get("buckets", [])
            ]
            print(format_table(
                headers, rows,
                title=f"{payload.get('name', args.bucket)} "
                      f"({payload.get('bucket_s', args.bucket_s):g}s buckets)",
            ))
            return 0
        frame = client.query(
            where=args.where,
            columns=args.columns.split(",") if args.columns else None,
            order_by=args.order_by,
            limit=args.limit,
            at=args.at,
        )
    except ClientError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(frame.rows(), indent=2, sort_keys=True))
        return 0
    headers, rows = frame.table()
    shown = [
        [f"{v:.6g}" if isinstance(v, float) else ("-" if v is None else v) for v in row]
        for row in rows
    ]
    title = f"{len(frame)} result{'s' if len(frame) != 1 else ''}"
    if frame.snapshot is not None:
        title += f" @ {frame.snapshot}"
    print(format_table(headers, shown, title=title))
    return 0


def _cmd_verify(args) -> int:
    from .verify import (
        build_artifact,
        generate_program,
        minimize_program,
        oracle_catalogue,
        run_differential,
        shrink_stats,
        write_artifact,
    )
    from .verify.oracle import check_result

    if args.list_checks:
        rows = [[name, layer, summary] for name, layer, summary in oracle_catalogue()]
        print(format_table(["check", "layer", "invariant"], rows, title="Oracle checks"))
        return 0
    if args.sanitizer:
        from .verify.sanitizer import run_sanitizer

        print(
            f"verify --sanitizer: {args.cases} fuzz cases "
            f"(seeds {args.seed}..{args.seed + args.cases - 1}) on {args.gpus} GPUs"
        )
        sanitizer_report = run_sanitizer(
            seed=args.seed,
            cases=args.cases,
            num_gpus=args.gpus,
            scale=args.scale,
            iterations=args.iterations,
            link=args.link,
            progress=lambda message: print(f"  {message}"),
        )
        for failure in sanitizer_report.failures:
            print(f"FAIL {failure}", file=sys.stderr)
        counts = ", ".join(
            f"{name}={count}" for name, count in sorted(sanitizer_report.mutants.items())
        )
        print(
            f"verify --sanitizer: {sanitizer_report.cases} clean case(s), "
            f"{sanitizer_report.mutants_checked} mutant(s) [{counts}], "
            f"{len(sanitizer_report.failures)} failure(s)"
        )
        if sanitizer_report.failures:
            return 1
        print(
            "verify --sanitizer: OK — clean programs pass the oracle unfixed, "
            "every injected defect is flagged, gated, and repaired"
        )
        return 0
    if args.paradigms.strip() == "all":
        paradigms = tuple(sorted(PARADIGMS))
    else:
        paradigms = tuple(p.strip() for p in args.paradigms.split(",") if p.strip())
    seeds = range(args.seed, args.seed + args.cases)
    print(
        f"verify: {args.cases} fuzz cases (seeds {args.seed}..{args.seed + args.cases - 1}) "
        f"x {len(paradigms)} paradigms on {args.gpus} GPUs over {args.link}"
    )
    report = run_differential(
        seeds,
        num_gpus=args.gpus,
        scale=args.scale,
        iterations=args.iterations,
        paradigms=paradigms,
        link=args.link,
        use_service=not args.no_service,
        progress=lambda message: print(f"  {message}"),
    )
    failures = [case for case in report.cases if not case.ok]
    for case in failures:
        for violation in case.violations:
            print(f"FAIL seed {case.spec.seed}: {violation}", file=sys.stderr)
        # Minimise against the oracle's result checks (the cheap,
        # process-local predicate); differential failures keep the full
        # generated program, whose seed already reproduces them.
        program = generate_program(
            case.spec.seed, case.spec.num_gpus,
            scale=case.spec.scale, iterations=case.spec.iterations,
        )
        config = default_system(args.gpus, LINKS_BY_NAME[args.link])

        def _oracle_fails(candidate) -> bool:
            return bool(check_result(simulate(candidate, paradigms[0], config), config))

        minimized = program
        if any(not v.check.startswith("differential") for v in case.violations):
            minimized = minimize_program(program, _oracle_fails)
        path = write_artifact(
            args.out,
            build_artifact(
                case, paradigms, args.link,
                program=minimized, shrink=shrink_stats(program, minimized),
            ),
        )
        print(f"wrote {path}", file=sys.stderr)
    summary = report.summary()
    print(
        f"verify: {summary['cases']} cases, {summary['violations']} violations, "
        f"paths: {', '.join(summary['paths'])}"
    )
    if failures:
        print(f"verify: {len(failures)} case(s) FAILED", file=sys.stderr)
        return 1
    print("verify: OK — all paths byte-identical, all invariants hold")
    return 0


def _cmd_list(_args) -> int:
    rows = [
        [name, get_workload(name).info.comm_pattern, get_workload(name).info.description]
        for name in workload_names()
    ]
    print(format_table(["workload", "pattern", "description"], rows, title="Workloads"))
    print()
    print("Paradigms     :", ", ".join(sorted(PARADIGMS)))
    print("Interconnects :", ", ".join(sorted(LINKS_BY_NAME)))
    return 0


def main(argv=None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "compare": _cmd_compare,
        "figure": _cmd_figure,
        "list": _cmd_list,
        "trace": _cmd_trace,
        "profile": _cmd_profile,
        "export-trace": _cmd_export_trace,
        "run-trace": _cmd_run_trace,
        "lint": _cmd_lint,
        "cache": _cmd_cache,
        "store": _cmd_store,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "result": _cmd_result,
        "events": _cmd_events,
        "slo": _cmd_slo,
        "query": _cmd_query,
        "verify": _cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
