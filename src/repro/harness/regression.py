"""Experiment-result snapshots for regression tracking.

Simulations are deterministic, so any change to the model shows up as a
numeric diff against a stored baseline. ``snapshot`` flattens an experiment
result into {metric-path: number}; ``compare`` reports every metric whose
relative change exceeds a tolerance. The benchmark suite can persist
baselines with :func:`save_baseline` and CI can fail on drift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path


def snapshot(result: dict, prefix: str = "") -> dict:
    """Flatten nested dicts of numbers into {dotted.path: float}.

    Non-numeric leaves (names, lists of labels) are skipped — a snapshot
    captures the *numbers* an experiment produced, not its metadata.
    """
    out: dict[str, float] = {}
    for key, value in result.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(snapshot(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            out[path] = float(value)
    return out


@dataclass(frozen=True)
class Drift:
    """One metric that moved beyond tolerance."""

    path: str
    baseline: "float | None"
    current: "float | None"

    @property
    def relative_change(self) -> float:
        """|current - baseline| / max(|baseline|, eps); inf for add/remove."""
        if self.baseline is None or self.current is None:
            return float("inf")
        denom = max(abs(self.baseline), 1e-12)
        return abs(self.current - self.baseline) / denom

    def __str__(self) -> str:
        if self.baseline is None:
            return f"{self.path}: new metric = {self.current}"
        if self.current is None:
            return f"{self.path}: metric disappeared (was {self.baseline})"
        return (
            f"{self.path}: {self.baseline:.6g} -> {self.current:.6g} "
            f"({100 * self.relative_change:.1f}%)"
        )


def compare(baseline: dict, current: dict, rel_tol: float = 0.05) -> list:
    """Drifted metrics between two snapshots (empty list = no regression)."""
    drifts: list[Drift] = []
    for path in sorted(set(baseline) | set(current)):
        b = baseline.get(path)
        c = current.get(path)
        drift = Drift(path, b, c)
        if b is None or c is None or drift.relative_change > rel_tol:
            drifts.append(drift)
    return drifts


def save_baseline(result: dict, path: "str | Path") -> dict:
    """Snapshot a result and write it as the stored baseline."""
    snap = snapshot(result)
    Path(path).write_text(json.dumps(snap, indent=1, sort_keys=True) + "\n")
    return snap


def check_against_baseline(
    result: dict, path: "str | Path", rel_tol: float = 0.05
) -> list:
    """Compare a fresh result against a stored baseline file.

    A missing baseline file is created (first run) and reported as no
    drift — the bootstrap behaviour CI wants.
    """
    path = Path(path)
    if not path.exists():
        save_baseline(result, path)
        return []
    baseline = json.loads(path.read_text())
    return compare(baseline, snapshot(result), rel_tol=rel_tol)
