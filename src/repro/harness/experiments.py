"""One driver per paper artifact (every table and every figure).

Each function returns a plain dict of rows/series so callers (benchmarks,
tests, notebooks) can assert on values or render them with
:mod:`repro.harness.report`. All drivers accept ``scale`` / ``iterations``
knobs so the test suite can run them at reduced fidelity.
"""

from __future__ import annotations

import dataclasses

from ..config import CACHE_BLOCK, GPSConfig, PAGE_2M, PAGE_4K, PAGE_64K, default_system
from ..core.gps_page_table import GPSPageTable
from ..core.gps_tlb import GPSTLB
from ..core.write_queue import RemoteWriteQueue
from ..interconnect.platforms import bandwidth_gap_summary
from ..paradigms.registry import FIGURE8_ORDER
from ..system.analysis import get_analysis
from ..workloads.registry import WORKLOADS, get_workload, workload_names
from .report import geomean
from .runner import SimJob, run_many

#: The four applications whose write streams coalesce (Figure 14 curves);
#: the other four sit at 0% by construction (sequential writes or atomics).
COALESCING_APPS = ("ct", "eqwp", "diffusion", "hit")
ZERO_HIT_APPS = ("jacobi", "pagerank", "sssp", "als")


def _run_indexed(jobs: "list[SimJob]") -> dict:
    """Fan a job list through the parallel runner; index results by job key.

    Drivers build their whole simulation grid up front, submit it once (so
    uncached jobs run concurrently across worker processes), then read
    results back by reconstructing the same :class:`SimJob`.
    """
    return {job.key(): result for job, result in zip(jobs, run_many(jobs))}


# -- Figure 1 -------------------------------------------------------------------


#: The pre-GPS techniques available to Figure 1's hypothetical programmer.
_FIG1_PARADIGMS = ("um_hints", "rdl", "memcpy")


def fig1_motivation(scale: float = 1.0, iterations: int = 16, workloads=None) -> dict:
    """Figure 1: 4-GPU strong scaling under today's best practice.

    The paper's motivation figure runs each application under the best
    technique available *before* GPS (per app, per interconnect — a
    well-tuned port picks whatever works) and sweeps the interconnect:
    PCIe 3.0 loses to one GPU, projected PCIe 6.0 reaches ~2x, and an
    infinite interconnect ~3x.
    """
    workloads = list(workloads or workload_names())
    interconnects = ["pcie3", "pcie6", "infinite"]
    jobs = []
    for workload in workloads:
        for link in ("pcie3", "pcie6"):
            jobs.append(SimJob(workload, "memcpy", 1, link, scale, iterations))
            jobs.extend(
                SimJob(workload, p, 4, link, scale, iterations) for p in _FIG1_PARADIGMS
            )
        # The upper bound ignores all transfer costs regardless of paradigm
        # (paper section 6).
        jobs.append(SimJob(workload, "infinite", 4, "pcie6", scale, iterations))
    results = _run_indexed(jobs)

    def _speedup(workload: str, paradigm: str, link: str) -> float:
        single = results[SimJob(workload, "memcpy", 1, link, scale, iterations).key()]
        multi = results[SimJob(workload, paradigm, 4, link, scale, iterations).key()]
        return single.total_time / multi.total_time

    speedups: dict = {}
    best_paradigm: dict = {}
    for workload in workloads:
        speedups[workload] = {}
        best_paradigm[workload] = {}
        for link in interconnects:
            if link == "infinite":
                speedups[workload][link] = _speedup(workload, "infinite", "pcie6")
                best_paradigm[workload][link] = "infinite"
                continue
            candidates = {p: _speedup(workload, p, link) for p in _FIG1_PARADIGMS}
            best = max(candidates, key=candidates.get)
            speedups[workload][link] = candidates[best]
            best_paradigm[workload][link] = best
    mean = {
        link: geomean([speedups[w][link] for w in workloads]) for link in interconnects
    }
    return {
        "figure": "fig1",
        "workloads": workloads,
        "interconnects": interconnects,
        "speedups": speedups,
        "best_paradigm": best_paradigm,
        "geomean": mean,
    }


# -- Figure 3 -------------------------------------------------------------------


def fig3_bandwidth_gap() -> dict:
    """Figure 3: local vs remote bandwidth across five GPU platforms."""
    rows = bandwidth_gap_summary()
    return {
        "figure": "fig3",
        "rows": rows,
        "min_gap": min(r["gap"] for r in rows),
        "max_gap": max(r["gap"] for r in rows),
    }


# -- Figure 8 -------------------------------------------------------------------


def fig8_end_to_end(
    scale: float = 1.0,
    iterations: int = 16,
    workloads=None,
    num_gpus: int = 4,
    link: str = "pcie6",
    paradigms=FIGURE8_ORDER,
) -> dict:
    """Figure 8: 4-GPU speedup of every paradigm on every application."""
    workloads = list(workloads or workload_names())
    jobs = [SimJob(w, "memcpy", 1, link, scale, iterations) for w in workloads]
    jobs += [
        SimJob(w, p, num_gpus, link, scale, iterations)
        for w in workloads
        for p in paradigms
    ]
    results = _run_indexed(jobs)
    speedups: dict = {}
    for workload in workloads:
        single = results[SimJob(workload, "memcpy", 1, link, scale, iterations).key()]
        speedups[workload] = {
            p: single.total_time
            / results[SimJob(workload, p, num_gpus, link, scale, iterations).key()].total_time
            for p in paradigms
        }
    mean = {p: geomean([speedups[w][p] for w in workloads]) for p in paradigms}
    non_gps = [p for p in paradigms if p not in ("gps", "infinite")]
    next_best = {w: max(speedups[w][p] for p in non_gps) for w in workloads}
    gps_vs_next = geomean([speedups[w]["gps"] / next_best[w] for w in workloads])
    return {
        "figure": "fig8",
        "workloads": workloads,
        "paradigms": list(paradigms),
        "speedups": speedups,
        "geomean": mean,
        "gps_vs_next_best": gps_vs_next,
        "opportunity_captured": mean["gps"] / mean["infinite"],
    }


# -- Figure 9 -------------------------------------------------------------------


def fig9_subscriber_distribution(
    scale: float = 1.0, iterations: int = 4, workloads=None, num_gpus: int = 4
) -> dict:
    """Figure 9: subscriber-count distribution of shared GPS pages."""
    workloads = list(workloads or workload_names())
    results = run_many(
        [SimJob(w, "gps", num_gpus, "pcie6", scale, iterations) for w in workloads]
    )
    distribution: dict = {}
    for workload, result in zip(workloads, results):
        hist = result.subscriber_histogram
        total = sum(hist.values())
        distribution[workload] = {
            count: 100.0 * pages / total if total else 0.0
            for count, pages in sorted(hist.items())
        }
    return {
        "figure": "fig9",
        "workloads": workloads,
        "num_gpus": num_gpus,
        "percent_by_subscribers": distribution,
    }


# -- Figure 10 ------------------------------------------------------------------


def fig10_interconnect_traffic(
    scale: float = 1.0, iterations: int = 16, workloads=None, num_gpus: int = 4
) -> dict:
    """Figure 10: total interconnect bytes, normalised to memcpy."""
    workloads = list(workloads or workload_names())
    paradigms = ["um", "um_hints", "rdl", "gps"]
    jobs = [
        SimJob(w, p, num_gpus, "pcie6", scale, iterations)
        for w in workloads
        for p in ["memcpy"] + paradigms
    ]
    results = _run_indexed(jobs)

    def _bytes(workload: str, paradigm: str) -> int:
        job = SimJob(workload, paradigm, num_gpus, "pcie6", scale, iterations)
        return results[job.key()].interconnect_bytes

    normalized: dict = {}
    raw: dict = {}
    for workload in workloads:
        base = _bytes(workload, "memcpy")
        raw[workload] = {"memcpy": base}
        normalized[workload] = {}
        for paradigm in paradigms:
            moved = _bytes(workload, paradigm)
            raw[workload][paradigm] = moved
            normalized[workload][paradigm] = moved / base if base else float("inf")
    return {
        "figure": "fig10",
        "workloads": workloads,
        "paradigms": paradigms,
        "normalized_to_memcpy": normalized,
        "raw_bytes": raw,
    }


# -- Figure 11 ------------------------------------------------------------------


def fig11_subscription_benefit(
    scale: float = 1.0, iterations: int = 16, workloads=None, num_gpus: int = 4
) -> dict:
    """Figure 11: GPS with vs without subscription tracking."""
    workloads = list(workloads or workload_names())
    variants = ("gps_nosub", "gps")
    jobs = [SimJob(w, "memcpy", 1, "pcie6", scale, iterations) for w in workloads]
    jobs += [
        SimJob(w, p, num_gpus, "pcie6", scale, iterations)
        for w in workloads
        for p in variants
    ]
    results = _run_indexed(jobs)
    speedups: dict = {}
    for workload in workloads:
        single = results[SimJob(workload, "memcpy", 1, "pcie6", scale, iterations).key()]
        speedups[workload] = {
            p: single.total_time
            / results[SimJob(workload, p, num_gpus, "pcie6", scale, iterations).key()].total_time
            for p in variants
        }
    return {
        "figure": "fig11",
        "workloads": workloads,
        "paradigms": ["gps_nosub", "gps"],
        "speedups": speedups,
        "geomean": {
            p: geomean([speedups[w][p] for w in workloads]) for p in ("gps_nosub", "gps")
        },
    }


# -- Figure 12 ------------------------------------------------------------------


def fig12_sixteen_gpus(
    scale: float = 1.0, iterations: int = 32, workloads=None, paradigms=FIGURE8_ORDER
) -> dict:
    """Figure 12: strong scaling on 16 GPUs with projected PCIe 6.0."""
    result = fig8_end_to_end(
        scale=scale,
        iterations=iterations,
        workloads=workloads,
        num_gpus=16,
        link="pcie6",
        paradigms=paradigms,
    )
    result["figure"] = "fig12"
    return result


# -- Figure 13 ------------------------------------------------------------------


def fig13_bandwidth_sensitivity(
    scale: float = 1.0, iterations: int = 16, workloads=None, paradigms=FIGURE8_ORDER
) -> dict:
    """Figure 13: geomean speedup of each paradigm vs PCIe generation."""
    workloads = list(workloads or workload_names())
    links = ["pcie3", "pcie4", "pcie5", "pcie6"]
    jobs = [SimJob(w, "memcpy", 1, link, scale, iterations) for w in workloads for link in links]
    jobs += [
        SimJob(w, p, 4, link, scale, iterations)
        for w in workloads
        for link in links
        for p in paradigms
    ]
    results = _run_indexed(jobs)

    def _speedup(workload: str, paradigm: str, link: str) -> float:
        single = results[SimJob(workload, "memcpy", 1, link, scale, iterations).key()]
        multi = results[SimJob(workload, paradigm, 4, link, scale, iterations).key()]
        return single.total_time / multi.total_time

    means: dict = {}
    for link in links:
        means[link] = {
            p: geomean([_speedup(w, p, link) for w in workloads]) for p in paradigms
        }
    return {
        "figure": "fig13",
        "links": links,
        "paradigms": list(paradigms),
        "geomean": means,
    }


# -- Figure 14 ------------------------------------------------------------------


def fig14_write_queue_hit_rate(
    scale: float = 1.0,
    queue_sizes=(16, 32, 64, 128, 256, 512, 1024),
    workloads=COALESCING_APPS + ZERO_HIT_APPS,
    num_gpus: int = 4,
) -> dict:
    """Figure 14: remote write queue hit rate vs queue size.

    Drives the queue directly with each application's SM-coalesced store
    streams (the same streams the full simulation replays), flushing at
    phase boundaries — no end-to-end timing needed for this metric.
    """
    config = default_system(num_gpus)
    hit_rates: dict = {}
    for workload in workloads:
        program = get_workload(workload).build(num_gpus, scale=scale, iterations=2)
        analysis = get_analysis(program, config)
        # Distinct steady-state kernels, one per GPU per phase shape.
        kernels = {k: None for k in program.iter_kernels() if k.gpu == 0}
        hit_rates[workload] = {}
        for size in queue_sizes:
            gps_cfg = dataclasses.replace(config.gps, write_queue_entries=size)
            queue = RemoteWriteQueue(gps_cfg)
            for kernel in kernels:
                for _, stream, atomic in analysis.store_streams(kernel):
                    queue.process_stream(stream.lines, stream.bytes_per_txn, atomic=atomic)
                queue.flush()  # grid-end implicit release
            hit_rates[workload][size] = queue.stats.hit_rate
    return {
        "figure": "fig14",
        "workloads": list(workloads),
        "queue_sizes": list(queue_sizes),
        "hit_rate": hit_rates,
    }


# -- Section 7.4: GPS-TLB sensitivity ---------------------------------------------


def gps_tlb_sensitivity(
    scale: float = 1.0,
    tlb_sizes=(4, 8, 16, 32, 64),
    workloads=None,
    num_gpus: int = 4,
) -> dict:
    """Section 7.4: GPS-TLB hit rate vs size (~100% at just 32 entries).

    Replays each application's drained write-queue output through a
    GPS-TLB of each size, over an all-to-all GPS page table — the same
    datapath as the full GPS unit, isolated.
    """
    config = default_system(num_gpus)
    workloads = list(workloads or workload_names())
    lines_per_page = config.page_size // CACHE_BLOCK
    hit_rates: dict = {}
    for workload in workloads:
        program = get_workload(workload).build(num_gpus, scale=scale, iterations=2)
        analysis = get_analysis(program, config)
        kernels = [k for k in program.iter_kernels() if k.gpu == 0]
        # Capture each kernel's drained entries once. The store stream is
        # issued by many concurrent CTAs striding across the shard, so the
        # drains interleave several regions — modelled by slicing each
        # stream and weaving warp-sized chunks round-robin.
        drained_vpns: list = []
        queue = RemoteWriteQueue(config.gps)
        for kernel in {k: None for k in kernels}:
            entries = []
            for _, stream, atomic in analysis.store_streams(kernel):
                lines = _interleave_cta_slices(stream.lines)
                payload = stream.bytes_per_txn
                entries.extend(queue.process_stream(lines, payload, atomic=atomic))
            entries.extend(queue.flush())
            drained_vpns.append([e.line // lines_per_page for e in entries])
        hit_rates[workload] = {}
        for size in tlb_sizes:
            gps_cfg = dataclasses.replace(
                config.gps,
                gps_tlb_entries=size,
                gps_tlb_assoc=min(size, config.gps.gps_tlb_assoc),
            )
            page_table = GPSPageTable(gps_cfg, num_gpus)
            for vpns in drained_vpns:
                for vpn in vpns:
                    if vpn not in page_table:
                        for gpu in range(num_gpus):
                            page_table.install_replica(vpn, gpu, vpn)
            tlb = GPSTLB(gps_cfg, page_table)
            for vpns in drained_vpns:
                for vpn in vpns:
                    tlb.translate(vpn)
            hit_rates[workload][size] = tlb.stats.hit_rate
    return {
        "figure": "sec7.4-gps-tlb",
        "workloads": workloads,
        "tlb_sizes": list(tlb_sizes),
        "hit_rate": hit_rates,
    }


def _interleave_cta_slices(lines, ways: int = 8, chunk: int = 32):
    """Round-robin ``ways`` contiguous slices of a stream in ``chunk`` txns.

    Approximates the issue order of a grid whose CTAs each own one slice
    of the shard and make progress concurrently.
    """
    import numpy as np

    n = lines.shape[0]
    if n < ways * chunk:
        return lines
    slices = np.array_split(lines, ways)
    out = np.empty(n, dtype=lines.dtype)
    pos = 0
    offsets = [0] * ways
    while pos < n:
        for i, piece in enumerate(slices):
            take = piece[offsets[i] : offsets[i] + chunk]
            if take.shape[0] == 0:
                continue
            out[pos : pos + take.shape[0]] = take
            pos += take.shape[0]
            offsets[i] += chunk
    return out


# -- Section 7.4: page-size sensitivity -------------------------------------------


def page_size_sensitivity(
    scale: float = 1.0,
    iterations: int = 8,
    workloads=None,
    num_gpus: int = 4,
    page_sizes=(PAGE_4K, PAGE_64K, PAGE_2M),
) -> dict:
    """Section 7.4: GPS runtime at 4 KiB / 64 KiB / 2 MiB pages.

    The paper reports 4 KiB 42% slower (TLB pressure) and 2 MiB 15%
    slower (false sharing inflating interconnect traffic), making 64 KiB
    the sweet spot.
    """
    workloads = list(workloads or workload_names())
    configs = {
        page_size: dataclasses.replace(
            default_system(num_gpus),
            gps=dataclasses.replace(GPSConfig(), page_size=page_size),
        )
        for page_size in page_sizes
    }
    jobs = [
        SimJob(w, "gps", num_gpus, "pcie6", scale, iterations, config=configs[ps])
        for ps in page_sizes
        for w in workloads
    ]
    results = _run_indexed(jobs)
    times: dict = {}
    for page_size in page_sizes:
        times[page_size] = sum(
            results[
                SimJob(
                    w, "gps", num_gpus, "pcie6", scale, iterations, config=configs[page_size]
                ).key()
            ].total_time
            for w in workloads
        )
    base = times[PAGE_64K]
    return {
        "figure": "sec7.4-page-size",
        "workloads": workloads,
        "page_sizes": list(page_sizes),
        "total_time": times,
        "slowdown_vs_64k": {ps: times[ps] / base for ps in page_sizes},
    }


# -- Extension: weak scaling -------------------------------------------------------


def weak_scaling(
    workload: str = "jacobi",
    gpu_counts=(1, 2, 4, 8),
    scale_per_gpu: float = 0.25,
    iterations: int = 8,
    paradigms=("memcpy", "gps", "infinite"),
) -> dict:
    """Extension study: weak scaling (problem grows with the GPU count).

    The paper evaluates strong scaling only; weak scaling is the natural
    companion question — with per-GPU work held constant, a perfect system
    keeps iteration time flat, so *efficiency* is t(1 GPU) / t(N GPUs).
    GPS should stay near 1.0 (halo communication per GPU is constant)
    while bulk-synchronous transfers degrade (broadcast volume grows with
    N).
    """
    jobs = [
        SimJob(workload, paradigm, num_gpus, "pcie6", scale_per_gpu * num_gpus, iterations)
        for paradigm in paradigms
        for num_gpus in gpu_counts
    ]
    results = _run_indexed(jobs)
    times: dict = {p: {} for p in paradigms}
    for paradigm in paradigms:
        for num_gpus in gpu_counts:
            job = SimJob(
                workload, paradigm, num_gpus, "pcie6", scale_per_gpu * num_gpus, iterations
            )
            times[paradigm][num_gpus] = results[job.key()].total_time
    efficiency = {
        p: {n: times[p][gpu_counts[0]] / times[p][n] for n in gpu_counts}
        for p in paradigms
    }
    return {
        "figure": "ext-weak-scaling",
        "workload": workload,
        "gpu_counts": list(gpu_counts),
        "paradigms": list(paradigms),
        "total_time": times,
        "efficiency": efficiency,
    }


# -- Tables ---------------------------------------------------------------------


def table1_simulation_settings() -> dict:
    """Table 1: simulation settings (GV100 + GPS structures)."""
    system = default_system(4)
    gpu, gps = system.gpu, system.gps
    return {
        "table": "table1",
        "gpu": {
            "cache_block_bytes": gpu.cache_block,
            "global_memory_bytes": gpu.dram_bytes,
            "streaming_multiprocessors": gpu.num_sms,
            "cuda_cores_per_sm": gpu.cores_per_sm,
            "l2_cache_bytes": gpu.l2_bytes,
            "warp_size": gpu.warp_size,
            "max_threads_per_sm": gpu.max_threads_per_sm,
            "max_threads_per_cta": gpu.max_threads_per_cta,
        },
        "gps": {
            "remote_write_queue_entries": gps.write_queue_entries,
            "remote_write_queue_entry_bytes": gps.write_queue_entry_bytes,
            "tlb_assoc": gps.gps_tlb_assoc,
            "tlb_entries": gps.gps_tlb_entries,
            "virtual_address_bits": gps.virtual_address_bits,
            "physical_address_bits": gps.physical_address_bits,
        },
    }


def table2_applications() -> dict:
    """Table 2: the application suite and its communication patterns."""
    rows = [
        {
            "name": wl.info.name,
            "description": wl.info.description,
            "comm_pattern": wl.info.comm_pattern,
        }
        for wl in WORKLOADS.values()
    ]
    return {"table": "table2", "rows": rows}
