"""Cache observability: hit/miss/evict counters for the memoised runner."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counters for one process's runner cache (memory + disk layers).

    A *lookup* is one ``run_simulation``/``run_many`` job resolution; it
    lands in exactly one of ``memory_hits``, ``disk_hits``, or ``misses``.
    ``evictions`` counts persistent entries removed (``cache clear`` or
    corrupt records dropped on read).
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    disk_writes: int = 0
    evictions: int = 0
    disk_errors: int = 0

    @property
    def hits(self) -> int:
        """Lookups served from either cache layer."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total job resolutions observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache; 0.0 before any lookup."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of lookups served from the persistent layer."""
        if self.lookups == 0:
            return 0.0
        return self.disk_hits / self.lookups

    def reset(self) -> None:
        """Zero every counter (``clear_run_cache`` calls this)."""
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.disk_writes = 0
        self.evictions = 0
        self.disk_errors = 0

    def as_dict(self) -> dict:
        """Counters plus derived rates, JSON-safe."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "disk_writes": self.disk_writes,
            "evictions": self.evictions,
            "disk_errors": self.disk_errors,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "disk_hit_rate": self.disk_hit_rate,
        }

    def report(self) -> str:
        """One-line human summary (the CLI prints this after figure runs)."""
        return (
            f"{self.hits}/{self.lookups} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk, "
            f"{self.misses} misses; {100.0 * self.hit_rate:.0f}% hit rate)"
        )
