"""Cache and fleet observability for the memoised runner.

:class:`CacheStats` counts cache-layer outcomes per lookup;
:class:`FleetStats` aggregates ``run_many`` fan-outs — how many jobs each
worker process computed and how much wall-clock the computation took —
surfaced by ``python -m repro cache show``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheStats:
    """Counters for one process's runner cache (memory + disk layers).

    A *lookup* is one ``run_simulation``/``run_many`` job resolution; it
    lands in exactly one of ``memory_hits``, ``disk_hits``, or ``misses``.
    ``evictions`` counts persistent entries removed (``cache clear`` or
    corrupt records dropped on read).
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    disk_writes: int = 0
    evictions: int = 0
    disk_errors: int = 0

    @property
    def hits(self) -> int:
        """Lookups served from either cache layer."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total job resolutions observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache; 0.0 before any lookup."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def disk_hit_rate(self) -> float:
        """Fraction of lookups served from the persistent layer."""
        if self.lookups == 0:
            return 0.0
        return self.disk_hits / self.lookups

    def reset(self) -> None:
        """Zero every counter (``clear_run_cache`` calls this)."""
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.disk_writes = 0
        self.evictions = 0
        self.disk_errors = 0

    def as_dict(self) -> dict:
        """Counters plus derived rates, JSON-safe."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "disk_writes": self.disk_writes,
            "evictions": self.evictions,
            "disk_errors": self.disk_errors,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
            "disk_hit_rate": self.disk_hit_rate,
        }

    def report(self) -> str:
        """One-line human summary (the CLI prints this after figure runs)."""
        return (
            f"{self.hits}/{self.lookups} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk, "
            f"{self.misses} misses; {100.0 * self.hit_rate:.0f}% hit rate)"
        )


@dataclass
class WorkerStats:
    """Per-worker-process accounting of one or more ``run_many`` fan-outs."""

    worker: str
    jobs: int = 0
    wall_clock: float = 0.0

    def as_dict(self) -> dict:
        """JSON-safe representation."""
        return {"worker": self.worker, "jobs": self.jobs, "wall_clock_s": self.wall_clock}


@dataclass
class FleetStats:
    """Aggregate view of every ``run_many`` fan-out this process issued.

    ``jobs_cached`` counts submissions resolved without simulating (memo or
    disk hit, plus in-batch duplicates); ``jobs_computed`` counts actual
    simulations; ``jobs_failed`` counts simulations that raised (surfaced
    per-job by ``run_many_settled``); ``wall_clock`` sums per-job compute
    time across workers (it exceeds elapsed time when the pool runs wide).
    """

    runs: int = 0
    jobs_submitted: int = 0
    jobs_cached: int = 0
    jobs_computed: int = 0
    jobs_failed: int = 0
    wall_clock: float = 0.0
    workers: dict = field(default_factory=dict)

    def record_job(self, worker: str, wall_clock: float) -> None:
        """Account one computed job to one worker."""
        stats = self.workers.get(worker)
        if stats is None:
            stats = self.workers[worker] = WorkerStats(worker=worker)
        stats.jobs += 1
        stats.wall_clock += wall_clock
        self.jobs_computed += 1
        self.wall_clock += wall_clock

    def reset(self) -> None:
        """Zero everything (``clear_run_cache`` calls this)."""
        self.runs = 0
        self.jobs_submitted = 0
        self.jobs_cached = 0
        self.jobs_computed = 0
        self.jobs_failed = 0
        self.wall_clock = 0.0
        self.workers = {}

    def as_dict(self) -> dict:
        """JSON-safe representation, workers sorted by name."""
        return {
            "runs": self.runs,
            "jobs_submitted": self.jobs_submitted,
            "jobs_cached": self.jobs_cached,
            "jobs_computed": self.jobs_computed,
            "jobs_failed": self.jobs_failed,
            "wall_clock_s": self.wall_clock,
            "workers": [self.workers[w].as_dict() for w in sorted(self.workers)],
        }

    def report(self) -> str:
        """Multi-line human summary for ``python -m repro cache show``."""
        failed = f", {self.jobs_failed} failed" if self.jobs_failed else ""
        lines = [
            f"fleet: {self.runs} run_many call(s), {self.jobs_submitted} jobs submitted "
            f"({self.jobs_cached} cached, {self.jobs_computed} computed{failed}, "
            f"{self.wall_clock:.2f}s compute wall-clock)"
        ]
        for name in sorted(self.workers):
            w = self.workers[name]
            lines.append(f"  {w.worker}: {w.jobs} job(s), {w.wall_clock:.2f}s")
        return "\n".join(lines)
