"""Parallel fan-out for simulation job lists.

The figure grid (8 apps x 6 paradigms x 4 interconnects) is embarrassingly
parallel and fully deterministic, so ``run_many`` dedups the job list
against the cache and fans the remaining work across a process pool. Worker
processes only *compute* — the parent stores every result into the memo and
the persistent cache, so disk records are written exactly once and never
race. ``REPRO_MAX_WORKERS=1`` (or a single pending job) falls back to plain
serial execution.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from ...analysis import check_program
from ...system.executor import simulate
from ...system.results import SimulationResult
from ...workloads.registry import get_workload
from . import memo
from .fingerprint import SimJob
from .stats import FleetStats

#: Serial fallback threshold: a pool is not worth forking below this many
#: uncached jobs.
_MIN_PARALLEL_JOBS = 3

#: Process-wide fan-out accounting (see :func:`fleet_stats`).
_FLEET = FleetStats()


def fleet_stats() -> FleetStats:
    """This process's live ``run_many`` fan-out counters."""
    return _FLEET


def compute_job(job: SimJob) -> SimulationResult:
    """Run one job's simulation, bypassing every cache layer.

    The trace is gated through the static analyzer first: a program whose
    diagnostics mark the job's *paradigm* unsafe (races, memory-model
    violations, stale-read hazards whose witness applies to it) raises
    :class:`repro.errors.AnalysisError` instead of silently corrupting
    every figure computed from it. The gate is per-paradigm — a stale-read
    hazard blocks ``gps`` but not ``memcpy`` — and the underlying analysis
    is cached by program fingerprint, so a paradigm sweep analyzes each
    program once. ``REPRO_NO_ANALYZE=1`` opts out.
    """
    program = get_workload(job.workload).build(
        job.num_gpus, scale=job.scale, iterations=job.iterations
    )
    config = job.resolved_config()
    if not os.environ.get("REPRO_NO_ANALYZE"):
        check_program(program, page_size=config.page_size, paradigm=job.paradigm)
    return simulate(program, job.paradigm, config)


def _timed_compute(job: SimJob) -> "tuple[int, float, SimulationResult]":
    """Pool entry point: compute one job, returning (pid, wall_clock, result)."""
    t0 = time.perf_counter()
    result = compute_job(job)
    return os.getpid(), time.perf_counter() - t0, result


def _worker_init() -> None:
    # Workers never consult the caches, must never recursively fork, and
    # skip span materialisation (the parent only receives the result dict).
    os.environ["REPRO_RUNNER_WORKER"] = "1"
    os.environ["REPRO_NO_CACHE"] = "1"
    os.environ["REPRO_NO_TRACE"] = "1"


def _resolve_workers(max_workers: "int | None", pending: int) -> int:
    if os.environ.get("REPRO_RUNNER_WORKER"):
        return 1
    if max_workers is None:
        env = os.environ.get("REPRO_MAX_WORKERS", "")
        max_workers = int(env) if env else (os.cpu_count() or 1)
    if max_workers <= 1 or pending < _MIN_PARALLEL_JOBS:
        return 1
    return min(max_workers, pending)


def _job_keys(jobs: "list[SimJob]") -> "list[str]":
    """Fingerprint each job, hashing every *distinct* job exactly once.

    ``SimJob.key()`` memoises on the instance, but a grid routinely repeats
    the same job as separate instances (every figure shares its single-GPU
    baselines) — and each repeat used to pay a full ``dataclasses.asdict``
    + JSON + SHA-256 pass over the ~25-field config. Jobs are frozen and
    hashable, so duplicates within one submission share one computation.
    """
    keys: "list[str]" = []
    key_of: "dict[SimJob, str]" = {}
    for job in jobs:
        key = key_of.get(job)
        if key is None:
            key = key_of[job] = job.key()
        keys.append(key)
    return keys


def run_many_settled(
    jobs, max_workers: "int | None" = None
) -> "list[SimulationResult | Exception]":
    """Run a job list, returning a per-job outcome instead of raising.

    Same caching, dedup, and fan-out behaviour as :func:`run_many`, but a
    job whose simulation raises (analysis gate, workload bug, worker crash)
    yields its exception in that slot rather than aborting the whole batch.
    Duplicate jobs share one outcome — including a shared failure. Callers
    that need per-job retry (the service scheduler) use this entry point;
    everyone else wants :func:`run_many`.
    """
    jobs = [job if isinstance(job, SimJob) else SimJob(*job) for job in jobs]
    keys = _job_keys(jobs)
    outcomes: "dict[str, SimulationResult | Exception]" = {}
    pending: "dict[str, SimJob]" = {}
    for job, key in zip(jobs, keys):
        if key in outcomes or key in pending:
            continue
        cached = memo.lookup(key)
        if cached is not None:
            outcomes[key] = cached
        else:
            pending[key] = job

    _FLEET.runs += 1
    _FLEET.jobs_submitted += len(jobs)
    _FLEET.jobs_cached += len(jobs) - len(pending)

    workers = _resolve_workers(max_workers, len(pending))
    if workers <= 1:
        for key, job in pending.items():
            t0 = time.perf_counter()
            try:
                result = compute_job(job)
            except Exception as exc:
                _FLEET.jobs_failed += 1
                outcomes[key] = exc
                continue
            _FLEET.record_job(f"pid{os.getpid()} (serial)", time.perf_counter() - t0)
            outcomes[key] = memo.store(key, result, job.meta())
    elif pending:
        with ProcessPoolExecutor(max_workers=workers, initializer=_worker_init) as pool:
            futures = {pool.submit(_timed_compute, job): key for key, job in pending.items()}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    try:
                        pid, wall, result = future.result()
                    except Exception as exc:  # includes BrokenProcessPool
                        _FLEET.jobs_failed += 1
                        outcomes[key] = exc
                        continue
                    _FLEET.record_job(f"pid{pid}", wall)
                    outcomes[key] = memo.store(key, result, pending[key].meta())
    return [outcomes[key] for key in keys]


def run_many(jobs, max_workers: "int | None" = None) -> "list[SimulationResult]":
    """Run (and memoise) a list of jobs, preserving input order.

    ``jobs`` holds :class:`SimJob` instances or tuples of ``SimJob``'s
    constructor arguments. Duplicate jobs and jobs already present in the
    memory or disk cache are resolved without simulating; the rest run
    across a process pool sized by ``max_workers`` (default: the
    ``REPRO_MAX_WORKERS`` environment knob, else ``os.cpu_count()``).
    Identical results are returned for identical jobs regardless of which
    path produced them — simulations are deterministic and the serialised
    form round-trips exactly. The first failing job's exception propagates;
    use :func:`run_many_settled` for per-job outcomes.
    """
    outcomes = run_many_settled(jobs, max_workers)
    for outcome in outcomes:
        if isinstance(outcome, Exception):
            raise outcome
    return outcomes  # type: ignore[return-value]
