"""Parallel fan-out for simulation job lists.

The figure grid (8 apps x 6 paradigms x 4 interconnects) is embarrassingly
parallel and fully deterministic, so ``run_many`` dedups the job list
against the cache and fans the remaining work across a process pool. Worker
processes only *compute* — the parent stores every result into the memo and
the persistent cache, so disk records are written exactly once and never
race. ``REPRO_MAX_WORKERS=1`` (or a single pending job) falls back to plain
serial execution.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from ...analysis import check_program
from ...system.executor import simulate
from ...system.results import SimulationResult
from ...workloads.registry import get_workload
from . import memo
from .fingerprint import SimJob
from .stats import FleetStats

#: Serial fallback threshold: a pool is not worth forking below this many
#: uncached jobs.
_MIN_PARALLEL_JOBS = 3

#: Process-wide fan-out accounting (see :func:`fleet_stats`).
_FLEET = FleetStats()


def fleet_stats() -> FleetStats:
    """This process's live ``run_many`` fan-out counters."""
    return _FLEET


#: Thread-local span-capture channel between :func:`compute_job_traced` and
#: :func:`compute_job`. When a sink list is installed, ``compute_job`` runs
#: with its collector force-enabled and deposits ``(span_dicts, evicted)``
#: there — keeping one compute path so test hooks and future wrappers apply
#: to traced and untraced runs alike.
_trace_capture = threading.local()


def compute_job(job: SimJob) -> SimulationResult:
    """Run one job's simulation, bypassing every cache layer.

    The trace is gated through the static analyzer first: a program whose
    diagnostics mark the job's *paradigm* unsafe (races, memory-model
    violations, stale-read hazards whose witness applies to it) raises
    :class:`repro.errors.AnalysisError` instead of silently corrupting
    every figure computed from it. The gate is per-paradigm — a stale-read
    hazard blocks ``gps`` but not ``memcpy`` — and the underlying analysis
    is cached by program fingerprint, so a paradigm sweep analyzes each
    program once. ``REPRO_NO_ANALYZE=1`` opts out.
    """
    program = get_workload(job.workload).build(
        job.num_gpus, scale=job.scale, iterations=job.iterations
    )
    config = job.resolved_config()
    if not os.environ.get("REPRO_NO_ANALYZE"):
        check_program(program, page_size=config.page_size, paradigm=job.paradigm)
    sink = getattr(_trace_capture, "sink", None)
    if sink is None:
        return simulate(program, job.paradigm, config)
    from ...paradigms.registry import make_executor  # local import: avoids a cycle

    executor = make_executor(job.paradigm, program, config)
    executor.collector.enable()
    result = executor.run()
    sink.append(([span.to_dict() for span in executor.collector.spans], executor.collector.evicted))
    return result


def compute_job_traced(job: SimJob) -> "tuple[SimulationResult, list[dict] | None, int]":
    """Run one job with span tracing forced on, returning the spans too.

    Same analysis gate and simulation as :func:`compute_job`, but the
    executor's :class:`~repro.obs.collector.TraceCollector` is enabled
    explicitly (overriding the worker's ``REPRO_NO_TRACE=1``) and the
    engine's spans travel back **out-of-band** as ``Span.to_dict`` payloads
    alongside the result — never inside ``SimulationResult`` itself, which
    must stay byte-identical across the direct/cache/store/pool/service paths.
    Returns ``(result, span_dicts, evicted_span_count)``.
    """
    _trace_capture.sink = sink = []
    try:
        result = compute_job(job)
    finally:
        _trace_capture.sink = None
    spans, evicted = sink[0] if sink else (None, 0)
    return result, spans, evicted


def _timed_compute(job: SimJob) -> "tuple[int, float, SimulationResult]":
    """Pool entry point: compute one job, returning (pid, wall_clock, result)."""
    t0 = time.perf_counter()
    result = compute_job(job)
    return os.getpid(), time.perf_counter() - t0, result


def _timed_compute_traced(
    job: SimJob,
) -> "tuple[int, float, SimulationResult, list[dict], int]":
    """Traced pool entry point: (pid, wall_clock, result, spans, evicted)."""
    t0 = time.perf_counter()
    result, spans, evicted = compute_job_traced(job)
    return os.getpid(), time.perf_counter() - t0, result, spans, evicted


def _worker_init() -> None:
    # Workers never consult the caches, must never recursively fork, and
    # skip span materialisation (the parent only receives the result dict).
    os.environ["REPRO_RUNNER_WORKER"] = "1"
    os.environ["REPRO_NO_CACHE"] = "1"
    os.environ["REPRO_NO_TRACE"] = "1"


def _resolve_workers(max_workers: "int | None", pending: int) -> int:
    if os.environ.get("REPRO_RUNNER_WORKER"):
        return 1
    if max_workers is None:
        env = os.environ.get("REPRO_MAX_WORKERS", "")
        max_workers = int(env) if env else (os.cpu_count() or 1)
    if max_workers <= 1 or pending < _MIN_PARALLEL_JOBS:
        return 1
    return min(max_workers, pending)


def _job_keys(jobs: "list[SimJob]") -> "list[str]":
    """Fingerprint each job, hashing every *distinct* job exactly once.

    ``SimJob.key()`` memoises on the instance, but a grid routinely repeats
    the same job as separate instances (every figure shares its single-GPU
    baselines) — and each repeat used to pay a full ``dataclasses.asdict``
    + JSON + SHA-256 pass over the ~25-field config. Jobs are frozen and
    hashable, so duplicates within one submission share one computation.
    """
    keys: "list[str]" = []
    key_of: "dict[SimJob, str]" = {}
    for job in jobs:
        key = key_of.get(job)
        if key is None:
            key = key_of[job] = job.key()
        keys.append(key)
    return keys


#: One settled slot of a traced run: the outcome, the engine spans shipped
#: back from the worker (``None`` for cache hits and failures), and the
#: collector's evicted-span count for that run.
TracedOutcome = "tuple[SimulationResult | Exception, list[dict] | None, int]"


def _settled(jobs, max_workers: "int | None", traced: bool) -> "list[tuple]":
    """Shared dedup + fan-out engine behind the two ``*_settled`` fronts.

    Returns one ``(outcome, spans, evicted)`` slot per input job; untraced
    runs always carry ``(None, 0)`` in the trailing positions.
    """
    jobs = [job if isinstance(job, SimJob) else SimJob(*job) for job in jobs]
    keys = _job_keys(jobs)
    outcomes: "dict[str, tuple]" = {}
    pending: "dict[str, SimJob]" = {}
    for job, key in zip(jobs, keys):
        if key in outcomes or key in pending:
            continue
        cached = memo.lookup(key)
        if cached is not None:
            outcomes[key] = (cached, None, 0)
        else:
            pending[key] = job

    _FLEET.runs += 1
    _FLEET.jobs_submitted += len(jobs)
    _FLEET.jobs_cached += len(jobs) - len(pending)

    workers = _resolve_workers(max_workers, len(pending))
    if workers <= 1:
        for key, job in pending.items():
            t0 = time.perf_counter()
            spans: "list[dict] | None" = None
            evicted = 0
            try:
                if traced:
                    result, spans, evicted = compute_job_traced(job)
                else:
                    result = compute_job(job)
            except Exception as exc:
                _FLEET.jobs_failed += 1
                outcomes[key] = (exc, None, 0)
                continue
            _FLEET.record_job(f"pid{os.getpid()} (serial)", time.perf_counter() - t0)
            outcomes[key] = (memo.store(key, result, job.meta()), spans, evicted)
    elif pending:
        entry = _timed_compute_traced if traced else _timed_compute
        with ProcessPoolExecutor(max_workers=workers, initializer=_worker_init) as pool:
            futures = {pool.submit(entry, job): key for key, job in pending.items()}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures[future]
                    try:
                        if traced:
                            pid, wall, result, spans, evicted = future.result()
                        else:
                            pid, wall, result = future.result()
                            spans, evicted = None, 0
                    except Exception as exc:  # includes BrokenProcessPool
                        _FLEET.jobs_failed += 1
                        outcomes[key] = (exc, None, 0)
                        continue
                    _FLEET.record_job(f"pid{pid}", wall)
                    outcomes[key] = (
                        memo.store(key, result, pending[key].meta()),
                        spans,
                        evicted,
                    )
    return [outcomes[key] for key in keys]


def run_many_settled(
    jobs, max_workers: "int | None" = None
) -> "list[SimulationResult | Exception]":
    """Run a job list, returning a per-job outcome instead of raising.

    Same caching, dedup, and fan-out behaviour as :func:`run_many`, but a
    job whose simulation raises (analysis gate, workload bug, worker crash)
    yields its exception in that slot rather than aborting the whole batch.
    Duplicate jobs share one outcome — including a shared failure. Callers
    that need per-job retry (the service scheduler) use this entry point;
    everyone else wants :func:`run_many`.
    """
    return [outcome for outcome, _, _ in _settled(jobs, max_workers, traced=False)]


def run_many_traced_settled(jobs, max_workers: "int | None" = None) -> "list":
    """Like :func:`run_many_settled`, but each slot also ships engine spans.

    Returns ``(outcome, spans, evicted)`` triples: ``spans`` is the run's
    engine span list as ``Span.to_dict`` payloads (``None`` when the
    outcome came from a cache or is an exception — cached results never
    carry spans, keeping the byte-identical result invariant), and
    ``evicted`` is the run collector's dropped-span count. The traced
    service scheduler uses this to re-parent engine spans under request
    traces without touching ``SimulationResult``.
    """
    return _settled(jobs, max_workers, traced=True)


def run_many(jobs, max_workers: "int | None" = None) -> "list[SimulationResult]":
    """Run (and memoise) a list of jobs, preserving input order.

    ``jobs`` holds :class:`SimJob` instances or tuples of ``SimJob``'s
    constructor arguments. Duplicate jobs and jobs already present in the
    memory or disk cache are resolved without simulating; the rest run
    across a process pool sized by ``max_workers`` (default: the
    ``REPRO_MAX_WORKERS`` environment knob, else ``os.cpu_count()``).
    Identical results are returned for identical jobs regardless of which
    path produced them — simulations are deterministic and the serialised
    form round-trips exactly. The first failing job's exception propagates;
    use :func:`run_many_settled` for per-job outcomes.
    """
    outcomes = run_many_settled(jobs, max_workers)
    for outcome in outcomes:
        if isinstance(outcome, Exception):
            raise outcome
    return outcomes  # type: ignore[return-value]
