"""Lakehouse-backed persistent layer for the memoised runner.

Selected with ``REPRO_RESULT_BACKEND=store``: the runner's persistent
result layer then reads and writes the :mod:`repro.store` lakehouse
(rooted at ``REPRO_STORE_DIR``, default ``.repro-store/``) instead of the
flat one-file-per-fingerprint :class:`~repro.harness.runner.disk.DiskCache`.
The first open auto-imports any existing flat ``.repro-cache/`` as an
``import`` commit, so switching backends never loses a result corpus.

:class:`StoreCache` is duck-type compatible with ``DiskCache`` — the memo
layer and ``repro cache show`` work unchanged — but every ``put`` is a
snapshot-versioned commit: crash-safe, time-travelable, and visible to
``repro store`` queries and the incremental figure views.

Commits refresh the materialized views only when
``REPRO_STORE_AUTO_REFRESH`` is set: the runner's hot path favours commit
throughput, and views catch up lazily on their next read.
"""

from __future__ import annotations

import os
from pathlib import Path

from ...system.results import SimulationResult
from .fingerprint import MODEL_FINGERPRINT
from .stats import CacheStats


def _auto_refresh_enabled() -> bool:
    return os.environ.get("REPRO_STORE_AUTO_REFRESH", "") not in ("", "0")


class StoreCache:
    """Fingerprint-keyed result layer backed by :class:`repro.store.ResultStore`."""

    backend = "store"

    def __init__(self, directory: "str | Path", stats: "CacheStats | None" = None) -> None:
        self.directory = Path(directory)
        self.stats = stats if stats is not None else CacheStats()
        self._store = None

    def _open(self):
        """Open the lakehouse lazily (imports the legacy flat cache once)."""
        if self._store is None:
            from ...store import ResultStore

            self._store = ResultStore.open(
                self.directory, auto_refresh=_auto_refresh_enabled()
            )
        return self._store

    def get(self, key: str) -> "SimulationResult | None":
        """Latest committed copy of one fingerprint, or ``None`` on miss.

        Mirrors ``DiskCache.get``'s contract: never raises — structural
        store problems count as errors and the caller recomputes.
        """
        from ...store import StoreError

        try:
            record = self._open().record(key)
            if record is None:
                return None
            return SimulationResult.from_dict(record.result)
        except (OSError, StoreError, AttributeError, KeyError, TypeError, ValueError):
            self.stats.disk_errors += 1
            return None

    def put(self, key: str, result: SimulationResult, meta: "dict | None" = None) -> None:
        """Commit one result (one ``append`` snapshot); failures just count."""
        from ...store import StoreError, StoredRecord

        record = StoredRecord(
            key=key,
            meta=dict(meta or {}),
            result=result.to_dict(),
            model=MODEL_FINGERPRINT,
        )
        try:
            self._open().append([record])
        except (OSError, StoreError):
            self.stats.disk_errors += 1
            return
        self.stats.disk_writes += 1

    def clear(self) -> int:
        """Logically truncate the store; returns records made unreachable.

        History stays readable through ``store.at()`` until retention
        expires it — ``repro store vacuum`` reclaims the bytes.
        """
        from ...store import StoreError

        try:
            store = self._open()
            removed = sum(1 for _ in store.at().iter_records())
            store.truncate()
        except (OSError, StoreError):
            self.stats.disk_errors += 1
            return 0
        self.stats.evictions += removed
        return removed

    def entry_count(self) -> int:
        """Distinct fingerprints visible at the current snapshot."""
        from ...store import StoreError

        try:
            return sum(1 for _ in self._open().at().iter_records())
        except (OSError, StoreError):
            return 0

    def size_bytes(self) -> int:
        """Canonical bytes of the current snapshot's live partitions."""
        from ...store import StoreError

        try:
            return sum(entry.bytes for entry in self._open().at().partitions())
        except (OSError, StoreError):
            return 0

    def entries(self) -> "list[dict]":
        """Job metadata of every visible record (``repro cache show`` shape)."""
        from ...store import StoreError

        rows = []
        try:
            for record in self._open().at().iter_records():
                job = dict(record.meta)
                job["model"] = record.model
                job["key"] = record.key[:12]
                rows.append(job)
        except (OSError, StoreError):
            return rows
        return rows
