"""Canonical simulation-job fingerprints.

The historical bug this module exists to prevent: the old runner's
``_config_key`` fingerprinted only 7 of ~25 :class:`SystemConfig` fields, so
two configs differing in, say, ``gps.high_watermark`` or ``um.fault_latency``
collided and returned each other's cached results. Keys here are derived from
the *complete* config via :func:`repro.config.config_fingerprint`
(``dataclasses.asdict`` over every nested field), scoped by workload,
paradigm, scale, iterations, and a model-version string so cache entries
invalidate whenever the simulator itself changes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from ... import __version__
from ...config import (
    LINKS_BY_NAME,
    LinkConfig,
    SystemConfig,
    config_fingerprint,
    default_system,
)

#: Versions every cache key. Bump ``repro.__version__`` (or this suffix) when
#: the simulation model changes behaviour: old persistent-cache entries then
#: miss instead of serving results from a different simulator.
MODEL_FINGERPRINT = f"repro-model/{__version__}"


def resolve_link(link: "str | LinkConfig") -> LinkConfig:
    """Accept either a link name from ``LINKS_BY_NAME`` or a LinkConfig."""
    if isinstance(link, LinkConfig):
        return link
    return LINKS_BY_NAME[link]


def job_key(
    workload: str,
    paradigm: str,
    scale: float,
    iterations: int,
    config: SystemConfig,
) -> str:
    """Cache key for one simulation: complete config + job + model version."""
    fingerprint = config_fingerprint(config)
    payload = json.dumps(
        {
            "model": MODEL_FINGERPRINT,
            "workload": workload,
            "paradigm": paradigm,
            "scale": scale,
            "iterations": iterations,
            "config": fingerprint,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SimJob:
    """One simulation request, as accepted by ``run_simulation``/``run_many``.

    ``link`` may be a name or a :class:`LinkConfig`; when an explicit
    ``config`` is given, its ``num_gpus`` and ``link`` fields are overridden
    by the job's own (mirroring ``run_simulation``'s long-standing calling
    convention).
    """

    workload: str
    paradigm: str
    num_gpus: int
    link: "str | LinkConfig" = "pcie6"
    scale: float = 1.0
    iterations: int = 16
    config: "SystemConfig | None" = None

    def resolved_config(self) -> SystemConfig:
        """The full SystemConfig this job simulates under."""
        link = resolve_link(self.link)
        if self.config is None:
            return default_system(self.num_gpus, link)
        return dataclasses.replace(self.config, num_gpus=self.num_gpus, link=link)

    def key(self) -> str:
        """Canonical cache key (memoised on the instance)."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = job_key(
                self.workload,
                self.paradigm,
                self.scale,
                self.iterations,
                self.resolved_config(),
            )
            object.__setattr__(self, "_key", cached)
        return cached

    def meta(self) -> dict:
        """Human-readable description stored alongside cached results."""
        config = self.resolved_config()
        return {
            "workload": self.workload,
            "paradigm": self.paradigm,
            "num_gpus": self.num_gpus,
            "link": config.link.name,
            "scale": self.scale,
            "iterations": self.iterations,
        }
