"""Persistent on-disk result cache: one JSON record per simulation.

Records live under a cache directory (default ``.repro-cache/`` in the
working directory, overridable via ``REPRO_CACHE_DIR``; ``REPRO_NO_CACHE``
disables the layer entirely). Filenames are the job fingerprints, which
already embed the model version — a simulator upgrade therefore misses
cleanly instead of replaying stale results. Writes are crash-safe: record
bytes are flushed and fsynced to a temp file *before* the atomic
``os.replace``, so neither a concurrent reader nor a reader after a crash
can observe a torn record — the published name either holds the complete
old record or the complete new one. Corrupt files (e.g. a stray partial
temp promoted by hand) are dropped on read and counted as evictions.

Directory scans (``entry_count``/``size_bytes``/``entries``) share one
memoised listing, invalidated by this process's own writes/evictions —
``repro cache show`` walks the directory once, not three times.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ...system.results import SimulationResult
from .fingerprint import MODEL_FINGERPRINT
from .stats import CacheStats

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk record format version.
RECORD_VERSION = 1


class DiskCache:
    """Fingerprint-keyed JSON store for :class:`SimulationResult` records."""

    def __init__(self, directory: "str | Path", stats: "CacheStats | None" = None) -> None:
        self.directory = Path(directory)
        self.stats = stats if stats is not None else CacheStats()
        self._scan: "list[Path] | None" = None

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> "SimulationResult | None":
        """Load one cached result, or ``None`` on miss/corruption.

        Concurrent readers must *never* raise out of this method: a reader
        racing a writer mid-``os.replace``, or landing on a truncated or
        otherwise corrupt record (including valid JSON that is not a dict),
        counts a miss — the caller recomputes — and the bad record is
        dropped so the next reader misses cleanly too.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self.stats.disk_errors += 1
            self._evict(path)
            return None
        try:
            if not isinstance(payload, dict):
                raise ValueError("record is not a JSON object")
            if payload.get("key") != key or payload.get("record_version") != RECORD_VERSION:
                raise ValueError("record does not match its filename")
            return SimulationResult.from_dict(payload["result"])
        except (AttributeError, KeyError, TypeError, ValueError):
            self.stats.disk_errors += 1
            self._evict(path)
            return None

    def put(self, key: str, result: SimulationResult, meta: "dict | None" = None) -> None:
        """Persist one result crash-safely; failures disable nothing, they just count.

        The record is written to a pid-suffixed temp name, flushed, and
        fsynced before ``os.replace`` publishes it: a crash at any point
        leaves either no record or the previous complete one — never a
        truncated file under the final name.
        """
        record = {
            "record_version": RECORD_VERSION,
            "model": MODEL_FINGERPRINT,
            "key": key,
            "job": meta or {},
            "result": result.to_dict(),
        }
        tmp = self._path(key).with_suffix(f".tmp.{os.getpid()}")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self._path(key))
        except OSError:
            self.stats.disk_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self._scan = None
        self.stats.disk_writes += 1

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
            self.stats.evictions += 1
        except OSError:
            pass
        self._scan = None

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in self._record_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._scan = None
        self.stats.evictions += removed
        return removed

    def _record_paths(self) -> "list[Path]":
        """The record listing, scanned once and reused until a local mutation.

        Other processes writing the shared directory invalidate nothing
        here — the memo only serves the read-only inspection surface
        (``entry_count``/``size_bytes``/``entries``), where a point-in-time
        listing is the desired semantics anyway.
        """
        if self._scan is None:
            if not self.directory.is_dir():
                return []
            self._scan = sorted(self.directory.glob("*.json"))
        return self._scan

    def entry_count(self) -> int:
        """Number of persisted records."""
        return len(self._record_paths())

    def size_bytes(self) -> int:
        """Total bytes of persisted records (entries evicted mid-scan count 0)."""
        total = 0
        for path in self._record_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def entries(self) -> "list[dict]":
        """Job metadata of every record (for ``python -m repro cache show``)."""
        rows = []
        for path in self._record_paths():
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict):
                continue
            job = dict(payload.get("job", {}))
            job["model"] = payload.get("model", "?")
            job["key"] = payload.get("key", path.stem)[:12]
            rows.append(job)
        return rows
