"""Memoised, parallel, persistent simulation runner shared by all experiments.

Simulations are deterministic, so every (workload, paradigm, config) job is
cached at two levels:

* an in-process memo (same-object hits — Figure 8's single-GPU baselines are
  Figure 13's too, and the benchmark suite runs every figure in one process);
* a persistent JSON cache under ``.repro-cache/`` keyed by a *complete*
  canonical config fingerprint plus a model-version string, so repeat CLI
  and benchmark invocations skip identical simulations across processes.

``run_many`` fans uncached jobs across a process pool; the figure drivers in
:mod:`repro.harness.experiments` submit their whole grids through it.

Every uncached job's trace is gated through the static analyzer
(:func:`repro.analysis.check_program`) before it simulates, so a workload
generator bug cannot silently corrupt a figure.

Environment knobs: ``REPRO_NO_CACHE`` (disable the persistent layer),
``REPRO_CACHE_DIR`` (cache directory, default ``.repro-cache/``),
``REPRO_MAX_WORKERS`` (pool width; ``1`` forces serial execution),
``REPRO_NO_ANALYZE`` (skip the pre-simulation static analysis gate).
"""

from __future__ import annotations

from ...config import LinkConfig, SystemConfig
from ...system.results import SimulationResult
from . import memo
from .disk import DEFAULT_CACHE_DIR, DiskCache
from .fingerprint import MODEL_FINGERPRINT, SimJob, job_key, resolve_link
from .parallel import (
    compute_job,
    compute_job_traced,
    fleet_stats,
    run_many,
    run_many_settled,
    run_many_traced_settled,
)
from .stats import CacheStats, FleetStats, WorkerStats
from .store_backend import StoreCache

__all__ = [
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "FleetStats",
    "StoreCache",
    "MODEL_FINGERPRINT",
    "SimJob",
    "WorkerStats",
    "cache_stats",
    "clear_disk_cache",
    "clear_run_cache",
    "compute_job_traced",
    "disk_cache_info",
    "fleet_stats",
    "job_key",
    "resolve_link",
    "run_many",
    "run_many_settled",
    "run_many_traced_settled",
    "run_simulation",
    "run_speedup",
]


def run_simulation(
    workload: str,
    paradigm: str,
    num_gpus: int,
    link: "str | LinkConfig" = "pcie6",
    scale: float = 1.0,
    iterations: int = 16,
    config: "SystemConfig | None" = None,
) -> SimulationResult:
    """Run (and memoise) one simulation."""
    job = SimJob(workload, paradigm, num_gpus, link, scale, iterations, config)
    key = job.key()
    cached = memo.lookup(key)
    if cached is not None:
        return cached
    return memo.store(key, compute_job(job), job.meta())


def run_speedup(
    workload: str,
    paradigm: str,
    num_gpus: int,
    link: "str | LinkConfig" = "pcie6",
    scale: float = 1.0,
    iterations: int = 16,
    config: "SystemConfig | None" = None,
    baseline_paradigm: str = "memcpy",
) -> float:
    """Strong-scaling speedup over the single-GPU baseline (memoised).

    The baseline runs ``baseline_paradigm`` on one GPU. On a single GPU no
    communication happens, so every non-fault-based paradigm produces the
    same time and ``memcpy`` is a fair default; fault-based UM still pays
    first-touch population costs and would *not* be a neutral baseline —
    which is why the choice is an explicit kwarg rather than an assumption.
    """
    single = run_simulation(workload, baseline_paradigm, 1, link, scale, iterations, config)
    multi = run_simulation(workload, paradigm, num_gpus, link, scale, iterations, config)
    return single.total_time / multi.total_time


def clear_run_cache() -> None:
    """Drop memoised results (tests that mutate global knobs use this).

    Also zeroes the :class:`CacheStats` and :class:`FleetStats` counters and
    detaches the persistent cache handle so it is re-resolved from the
    environment on next use. Records already on disk are kept; see
    :func:`clear_disk_cache`.
    """
    memo.clear()
    fleet_stats().reset()


def cache_stats() -> CacheStats:
    """This process's live cache counters."""
    return memo.stats()


def clear_disk_cache() -> int:
    """Delete every persistent record; returns how many were removed."""
    disk = memo.disk_cache()
    if disk is None:
        return 0
    return disk.clear()


def disk_cache_info() -> dict:
    """Status of the persistent layer (for ``python -m repro cache show``).

    One directory scan total: ``entries`` and ``size_bytes`` share the
    cache's memoised scan instead of walking the directory twice.
    """
    disk = memo.disk_cache()
    if disk is None:
        return {"enabled": False}
    return {
        "enabled": True,
        "backend": getattr(disk, "backend", "flat"),
        "directory": str(disk.directory),
        "entries": disk.entry_count(),
        "size_bytes": disk.size_bytes(),
        "model": MODEL_FINGERPRINT,
    }
