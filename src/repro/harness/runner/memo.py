"""Process-wide memo layer tying the in-memory and on-disk caches together.

Lookup order: in-memory dict (same-object hits, preserving the historical
``a is b`` memoisation contract), then the persistent :class:`DiskCache`
(deserialised results are promoted into memory). Environment knobs are
re-read whenever they change, so tests can flip ``REPRO_NO_CACHE`` /
``REPRO_CACHE_DIR`` with a plain ``monkeypatch.setenv`` and the next lookup
honours them.
"""

from __future__ import annotations

import os
from pathlib import Path

from ...system.results import SimulationResult
from .disk import DEFAULT_CACHE_DIR, DiskCache
from .stats import CacheStats

from .store_backend import StoreCache

_RESULT_CACHE: "dict[str, SimulationResult]" = {}
_STATS = CacheStats()
_DISK: "DiskCache | StoreCache | None" = None
_DISK_ENV: "tuple | None" = None

#: Default lakehouse directory when ``REPRO_RESULT_BACKEND=store`` is
#: selected without an explicit ``REPRO_STORE_DIR``.
DEFAULT_STORE_DIR = ".repro-store"


def _cache_env() -> tuple:
    return (
        os.environ.get("REPRO_NO_CACHE") or "",
        os.environ.get("REPRO_CACHE_DIR") or "",
        os.environ.get("REPRO_RESULT_BACKEND") or "",
        os.environ.get("REPRO_STORE_DIR") or "",
    )


def disk_cache() -> "DiskCache | StoreCache | None":
    """The active persistent cache, or ``None`` when disabled.

    ``REPRO_NO_CACHE`` set to anything but ``""``/``"0"`` disables the
    layer; ``REPRO_CACHE_DIR`` overrides the default ``.repro-cache/``.
    ``REPRO_RESULT_BACKEND=store`` swaps the flat per-file cache for the
    :mod:`repro.store` lakehouse rooted at ``REPRO_STORE_DIR`` (default
    ``.repro-store/``), auto-importing the flat cache on first open.
    """
    global _DISK, _DISK_ENV
    env = _cache_env()
    if env != _DISK_ENV:
        _DISK_ENV = env
        no_cache, cache_dir, backend, store_dir = env
        if no_cache and no_cache != "0":
            _DISK = None
        elif backend == "store":
            _DISK = StoreCache(Path(store_dir or DEFAULT_STORE_DIR), _STATS)
        else:
            _DISK = DiskCache(Path(cache_dir or DEFAULT_CACHE_DIR), _STATS)
    return _DISK


def lookup(key: str) -> "SimulationResult | None":
    """Resolve one job key through both cache layers, counting the outcome."""
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        _STATS.memory_hits += 1
        return cached
    disk = disk_cache()
    if disk is not None:
        result = disk.get(key)
        if result is not None:
            _STATS.disk_hits += 1
            _RESULT_CACHE[key] = result
            return result
    _STATS.misses += 1
    return None


def store(key: str, result: SimulationResult, meta: "dict | None" = None) -> SimulationResult:
    """Record one freshly computed result in both layers."""
    _RESULT_CACHE[key] = result
    disk = disk_cache()
    if disk is not None:
        disk.put(key, result, meta)
    return result


def clear() -> None:
    """Drop the in-memory memo, zero the counters, and detach the disk handle.

    The handle is re-resolved from the environment on the next lookup —
    tests that mutate global knobs between runs (the clear-between-mutations
    pattern) therefore also get a freshly configured persistent layer.
    Persistent *records* are left on disk; ``clear_disk_cache`` removes those.
    """
    global _DISK, _DISK_ENV
    _RESULT_CACHE.clear()
    _STATS.reset()
    _DISK = None
    _DISK_ENV = None


def stats() -> CacheStats:
    """Live counters for this process."""
    return _STATS
