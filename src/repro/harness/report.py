"""Plain-text rendering of experiment results."""

from __future__ import annotations

import math
from typing import Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError(f"geomean requires positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with two decimals; everything else via ``str``.
    """

    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedup_matrix(result: dict, title: str = "") -> str:
    """Render a {workload: {paradigm: speedup}} experiment result."""
    paradigms = result["paradigms"]
    headers = ["app"] + list(paradigms)
    rows = []
    for workload, per_paradigm in result["speedups"].items():
        rows.append([workload] + [per_paradigm[p] for p in paradigms])
    if "geomean" in result:
        rows.append(["geomean"] + [result["geomean"][p] for p in paradigms])
    return format_table(headers, rows, title=title)
