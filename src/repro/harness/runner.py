"""Memoised simulation runner shared by all experiments.

Simulations are deterministic, so (workload, system, paradigm) triples are
cached for the lifetime of the process: Figure 8's single-GPU baselines are
Figure 13's too, and the benchmark suite runs every figure in one process.
"""

from __future__ import annotations

import dataclasses

from ..config import LINKS_BY_NAME, LinkConfig, SystemConfig, default_system
from ..system.executor import simulate
from ..system.results import SimulationResult
from ..workloads.registry import get_workload

_RESULT_CACHE: dict = {}


def _link_by_name(link: "str | LinkConfig") -> LinkConfig:
    if isinstance(link, LinkConfig):
        return link
    return LINKS_BY_NAME[link]


def _config_key(config: SystemConfig) -> tuple:
    return (
        config.num_gpus,
        config.link.name,
        config.link.bandwidth,
        config.gps.page_size,
        config.gps.write_queue_entries,
        config.gps.gps_tlb_entries,
        config.gpu.l2_bytes,
    )


def run_simulation(
    workload: str,
    paradigm: str,
    num_gpus: int,
    link: "str | LinkConfig" = "pcie6",
    scale: float = 1.0,
    iterations: int = 16,
    config: "SystemConfig | None" = None,
) -> SimulationResult:
    """Run (and memoise) one simulation."""
    if config is None:
        config = default_system(num_gpus, _link_by_name(link))
    else:
        config = dataclasses.replace(
            config, num_gpus=num_gpus, link=_link_by_name(link)
        )
    key = (workload, paradigm, scale, iterations, _config_key(config))
    if key not in _RESULT_CACHE:
        program = get_workload(workload).build(num_gpus, scale=scale, iterations=iterations)
        _RESULT_CACHE[key] = simulate(program, paradigm, config)
    return _RESULT_CACHE[key]


def run_speedup(
    workload: str,
    paradigm: str,
    num_gpus: int,
    link: "str | LinkConfig" = "pcie6",
    scale: float = 1.0,
    iterations: int = 16,
    config: "SystemConfig | None" = None,
) -> float:
    """Strong-scaling speedup over the single-GPU baseline (memoised)."""
    single = run_simulation(workload, "memcpy", 1, link, scale, iterations, config)
    multi = run_simulation(workload, paradigm, num_gpus, link, scale, iterations, config)
    return single.total_time / multi.total_time


def clear_run_cache() -> None:
    """Drop memoised results (tests that mutate global knobs use this)."""
    _RESULT_CACHE.clear()
