"""Export experiment results to JSON and CSV.

Every ``fig*``/``table*`` driver returns a plain dict; these helpers
serialise that dict for downstream analysis (plotting notebooks,
regression tracking across simulator versions).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path


def _jsonable(value):
    """Coerce numpy scalars/containers and odd keys into JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if hasattr(value, "item"):  # other 0-d array-likes
        return value.item()
    return value


def to_json(result: dict, path: "str | Path | None" = None, indent: int = 2) -> str:
    """Serialise one experiment result to JSON; optionally write a file."""
    text = json.dumps(_jsonable(result), indent=indent, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text


def speedups_to_csv(result: dict, path: "str | Path | None" = None) -> str:
    """Flatten a speedup-matrix result ({workload: {paradigm: v}}) to CSV."""
    if "speedups" not in result or "paradigms" not in result:
        raise ValueError("result does not look like a speedup-matrix experiment")
    paradigms = list(result["paradigms"])
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["workload"] + paradigms)
    for workload, row in result["speedups"].items():
        writer.writerow([workload] + [f"{row[p]:.6g}" for p in paradigms])
    if "geomean" in result:
        writer.writerow(["geomean"] + [f"{result['geomean'][p]:.6g}" for p in paradigms])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def series_to_csv(
    result: dict,
    series_key: str,
    x_label: str,
    path: "str | Path | None" = None,
) -> str:
    """Flatten a {workload: {x: y}} sensitivity result to long-form CSV.

    Works for Figure 14 (``series_key='hit_rate'``, x = queue size) and the
    GPS-TLB study (x = TLB entries).
    """
    if series_key not in result:
        raise ValueError(f"result has no series {series_key!r}")
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["workload", x_label, series_key])
    for workload, series in result[series_key].items():
        for x, y in series.items():
            writer.writerow([workload, x, f"{y:.6g}"])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
