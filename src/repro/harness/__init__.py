"""Evaluation harness: one driver per paper table/figure.

Each ``fig*``/``table*`` function in :mod:`repro.harness.experiments`
regenerates the corresponding artifact of the paper and returns structured
rows; :mod:`repro.harness.report` renders them as aligned text tables. The
benchmark suite under ``benchmarks/`` is a thin wrapper over these drivers.
"""

from .experiments import (
    fig1_motivation,
    fig3_bandwidth_gap,
    fig8_end_to_end,
    fig9_subscriber_distribution,
    fig10_interconnect_traffic,
    fig11_subscription_benefit,
    fig12_sixteen_gpus,
    fig13_bandwidth_sensitivity,
    fig14_write_queue_hit_rate,
    gps_tlb_sensitivity,
    page_size_sensitivity,
    table1_simulation_settings,
    table2_applications,
)
from .report import format_table, geomean
from .runner import (
    CacheStats,
    SimJob,
    cache_stats,
    clear_disk_cache,
    clear_run_cache,
    disk_cache_info,
    run_many,
    run_simulation,
    run_speedup,
)

__all__ = [
    "fig1_motivation",
    "fig3_bandwidth_gap",
    "fig8_end_to_end",
    "fig9_subscriber_distribution",
    "fig10_interconnect_traffic",
    "fig11_subscription_benefit",
    "fig12_sixteen_gpus",
    "fig13_bandwidth_sensitivity",
    "fig14_write_queue_hit_rate",
    "gps_tlb_sensitivity",
    "page_size_sensitivity",
    "table1_simulation_settings",
    "table2_applications",
    "format_table",
    "geomean",
    "run_simulation",
    "run_speedup",
    "run_many",
    "SimJob",
    "CacheStats",
    "cache_stats",
    "clear_run_cache",
    "clear_disk_cache",
    "disk_cache_info",
]
