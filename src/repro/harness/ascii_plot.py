"""Terminal plotting for experiment results: bar charts and line series.

The paper's figures are bar/line charts; these helpers render the same
series in a terminal so the CLI and benchmark logs can show shape at a
glance without a plotting stack.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Default drawable width of the value area, in character cells.
DEFAULT_WIDTH = 50


def bar_chart(
    values: "Mapping[str, float]",
    title: str = "",
    width: int = DEFAULT_WIDTH,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart of label -> value.

    Bars scale to the maximum value; zero and negative values render as
    empty bars (the chart is for magnitudes).
    """
    if not values:
        return title
    peak = max(max(values.values()), 1e-12)
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        filled = int(round(width * max(value, 0.0) / peak))
        bar = "#" * filled
        lines.append(f"{str(label):>{label_width}} | {bar:<{width}} {fmt.format(value)}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: "Mapping[str, Mapping[str, float]]",
    title: str = "",
    width: int = DEFAULT_WIDTH,
) -> str:
    """Bar chart with one sub-bar per series inside each group.

    ``groups`` maps group label (e.g. workload) to {series: value}
    (e.g. paradigm speedups) — the shape of Figure 8.
    """
    if not groups:
        return title
    peak = max(
        (value for series in groups.values() for value in series.values()),
        default=0.0,
    )
    peak = max(peak, 1e-12)
    series_width = max(
        (len(str(s)) for series in groups.values() for s in series), default=1
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            filled = int(round(width * max(value, 0.0) / peak))
            lines.append(
                f"  {str(name):>{series_width}} | {'#' * filled:<{width}} {value:.2f}"
            )
    return "\n".join(lines)


def line_plot(
    series: "Mapping[str, Sequence[tuple]]",
    title: str = "",
    width: int = 60,
    height: int = 12,
) -> str:
    """Scatter/line plot of named (x, y) series on one shared canvas.

    Each series gets a distinct marker; x and y scale linearly to the data
    range. Intended for the Figure 14-style sensitivity curves.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return title
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for (name, pts), marker in zip(series.items(), markers):
        legend.append(f"{marker}={name}")
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            canvas[row][col] = marker
    lines = [title] if title else []
    lines.append(f"y: {y_lo:.3g} .. {y_hi:.3g}")
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_lo:.3g} .. {x_hi:.3g}    {'  '.join(legend)}")
    return "\n".join(lines)
