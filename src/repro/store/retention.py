"""Retention policies and ``vacuum``: bounding history and reclaiming disk.

Retention and garbage collection are deliberately two separate steps with
one safety property between them:

* :func:`expire_snapshots` applies a :class:`RetentionPolicy` — keep the
  newest ``keep_last`` snapshots, every tagged snapshot, and every manifest
  any retained snapshot's delta chain resolves through — and deletes only
  snapshot *manifests* (plus their materialized-view states). Partition
  bytes are untouched.
* :func:`vacuum` recomputes the set of partition files reachable from
  **every manifest still on disk** and unlinks the rest (plus torn
  ``*.tmp.*`` files crashed writers left behind). Because reachability is
  computed from the surviving manifests — not from the policy — vacuum can
  never delete a partition reachable from any tagged snapshot: tags are
  GC roots the expiry step refuses to drop.

Orphaned partitions (written by a commit that crashed before publishing
its manifest) are unreachable by construction and get collected here. The
``min_age_s`` knob protects a *live* concurrent committer that is between
writing its partition files and publishing its manifest: files younger
than the threshold are left alone.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from .format import StoreError
from .incremental import VIEWS_DIR, prune_states
from .partitions import PARTITIONS_DIR
from .snapshots import SNAPSHOTS_DIR, live_partitions


@dataclass(frozen=True)
class RetentionPolicy:
    """How much history a store keeps.

    ``keep_last`` newest snapshots always survive; with ``keep_tags`` (the
    default, and the safe choice) every tagged snapshot survives too, no
    matter how old. The current snapshot is always retained.
    """

    keep_last: int = 8
    keep_tags: bool = True

    def __post_init__(self) -> None:
        if self.keep_last < 1:
            raise StoreError("retention must keep at least the current snapshot")


@dataclass(frozen=True)
class ExpireReport:
    """What one expiry pass removed and kept."""

    expired: "tuple[int, ...]"
    kept: "tuple[int, ...]"
    view_states_pruned: int


@dataclass(frozen=True)
class VacuumReport:
    """What one vacuum pass reclaimed."""

    expired_snapshots: "tuple[int, ...]"
    live_partitions: int
    removed_partitions: int
    removed_bytes: int
    removed_temp_files: int
    view_states_pruned: int


def retained_snapshots(store, policy: "RetentionPolicy | None" = None) -> "set[int]":
    """Snapshot ids the policy keeps, closed over their delta chains.

    A retained snapshot's partition list resolves by walking parents down
    to the nearest checkpoint, so every manifest on that walk must survive
    with it — deleting a mid-chain delta would corrupt time-travel reads.
    """
    policy = policy if policy is not None else RetentionPolicy()
    ids = store.log.ids()
    roots: "set[int]" = set(ids[-policy.keep_last:])
    current = store.current_snapshot_id()
    if current is not None:
        roots.add(current)
    if policy.keep_tags:
        roots.update(store.tags().values())
    closure: "set[int]" = set()
    for snapshot_id in roots:
        cursor: "int | None" = snapshot_id
        while cursor is not None and cursor not in closure:
            try:
                snapshot = store.log.load(cursor)
            except StoreError:
                break
            closure.add(cursor)
            if snapshot.is_checkpoint:
                break
            cursor = snapshot.parent
    return closure


def expire_snapshots(store, policy: "RetentionPolicy | None" = None) -> ExpireReport:
    """Delete snapshot manifests (and view states) outside the policy."""
    keep = retained_snapshots(store, policy)
    expired = tuple(i for i in store.log.ids() if i not in keep)
    for snapshot_id in expired:
        store.log.delete(snapshot_id)
        store._index.pop(snapshot_id, None)
    pruned = prune_states(store, keep)
    return ExpireReport(expired, tuple(sorted(keep)), pruned)


def _collect_temps(directory: Path, cutoff: float) -> int:
    """Unlink torn ``*.tmp.*`` files older than ``cutoff`` under one dir."""
    removed = 0
    if not directory.is_dir():
        return 0
    for path in directory.rglob("*.tmp.*"):
        try:
            if path.stat().st_mtime > cutoff:
                continue
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def vacuum(
    store,
    policy: "RetentionPolicy | None" = None,
    *,
    min_age_s: float = 0.0,
    expire: bool = True,
) -> VacuumReport:
    """Expire old snapshots (optional) and drop unreachable partition files.

    Reachability is computed against *every manifest still on disk* after
    expiry — not against the policy — so a partition referenced by any
    surviving snapshot (tagged ones included) is never touched. Files
    younger than ``min_age_s`` are spared: they may belong to a commit that
    has written its partitions but not yet published its manifest.
    """
    expired: "tuple[int, ...]" = ()
    pruned = 0
    if expire:
        report = expire_snapshots(store, policy)
        expired, pruned = report.expired, report.view_states_pruned
    live = live_partitions(store.log, store.log.ids())
    cutoff = time.time() - min_age_s
    partitions_dir = store.directory / PARTITIONS_DIR
    removed = removed_bytes = 0
    if partitions_dir.is_dir():
        for path in sorted(partitions_dir.iterdir()):
            if path.name in live or not path.name.endswith(".json"):
                continue
            try:
                stat = path.stat()
                if stat.st_mtime > cutoff:
                    continue
                path.unlink()
            except OSError:
                continue
            removed += 1
            removed_bytes += stat.st_size
    removed_temp = sum(
        _collect_temps(store.directory / sub, cutoff)
        for sub in (PARTITIONS_DIR, SNAPSHOTS_DIR, VIEWS_DIR)
    )
    return VacuumReport(
        expired_snapshots=expired,
        live_partitions=len(live),
        removed_partitions=removed,
        removed_bytes=removed_bytes,
        removed_temp_files=removed_temp,
        view_states_pruned=pruned,
    )
