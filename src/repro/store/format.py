"""On-disk format primitives shared by every store layer.

The lakehouse has exactly two kinds of files, and both are written the
same way:

* **immutable objects** (partition files, snapshot manifests, view states)
  are fully written and fsynced to a temp file first, then *published* with
  ``os.link`` — which fails atomically if the name is already taken. For
  content-addressed objects a taken name means the identical bytes already
  exist (publish is idempotent); for snapshot manifests it means another
  writer claimed the id and the commit must rebase and retry. A crash at
  any point leaves either no file or a complete file — never a torn one.
* **mutable pointers** (``refs.json`` and the advisory catalog pointer)
  are replaced with temp + ``os.replace`` after an fsync, the same recipe
  the runner's flat disk cache uses.

All JSON is canonical (sorted keys, compact separators) so object digests
are deterministic and byte-stable across processes and platforms.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Any

#: Version stamp embedded in every file the store writes.
STORE_VERSION = 1


class StoreError(Exception):
    """A structural problem with the store (corrupt manifest, bad ref, ...)."""


class CommitConflict(Exception):
    """Internal: another writer published the snapshot id first."""


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: the byte form digests and comparisons use."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: Any) -> str:
    """SHA-256 of the canonical JSON — the identity of an immutable object."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def read_json(path: Path) -> Any:
    """Load one JSON file; :class:`StoreError` on corruption, not ValueError."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise
    except (OSError, ValueError) as exc:
        raise StoreError(f"unreadable store object {path.name}: {exc}") from exc


#: Per-process sequence distinguishing temp files written by concurrent
#: threads: a pid alone is not unique within one process, and two threads
#: racing on the same snapshot id would share (and tear) one temp file.
_TMP_SEQ = itertools.count()


def _tmp_name(path: Path) -> Path:
    return path.with_name(f"{path.name}.tmp.{os.getpid()}.{next(_TMP_SEQ)}")


def _write_durable(path: Path, text: str) -> None:
    """Write + flush + fsync so the bytes are on disk before any publish."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())


def write_pointer(path: Path, payload: Any) -> None:
    """Atomically replace a mutable pointer file (refs, catalog pointer)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_name(path)
    _write_durable(tmp, canonical_json(payload))
    os.replace(tmp, path)


def publish_object(path: Path, payload: Any, *, exclusive: bool) -> bool:
    """Publish one immutable object; returns ``False`` when the name exists.

    With ``exclusive=True`` an existing name raises :class:`CommitConflict`
    (snapshot-id claims must not be silently swallowed); otherwise it is the
    idempotent content-addressed case and the existing object wins.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_name(path)
    _write_durable(tmp, canonical_json(payload))
    try:
        os.link(tmp, path)
    except FileExistsError:
        if exclusive:
            raise CommitConflict(f"{path.name} already published") from None
        return False
    finally:
        with contextlib.suppress(OSError):
            tmp.unlink()
    return True
