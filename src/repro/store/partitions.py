"""Content-addressed partition files: where result payloads actually live.

A partition groups the results of one ``workload x paradigm x model
version`` cell — the axes every figure slices on, so queries prune whole
files without opening them. Partition files are immutable and named by the
SHA-256 of their canonical content: rewriting identical records is a no-op,
and two writers racing on the same content converge on one file.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .format import STORE_VERSION, StoreError, canonical_json, content_digest, read_json

#: Subdirectory (under the store root) holding partition files.
PARTITIONS_DIR = "partitions"


@dataclass(frozen=True)
class StoredRecord:
    """One result as the store keeps it: fingerprint + job meta + payload.

    ``result`` is the *exact* ``SimulationResult.to_dict()`` dict; the store
    never re-interprets it, which is what keeps the verify differential's
    byte-identity guarantee trivially true through this layer.
    """

    key: str
    meta: dict
    result: dict
    model: str = "?"

    def partition_key(self) -> "tuple[str, str, str]":
        return (
            str(self.meta.get("workload", "?")),
            str(self.meta.get("paradigm", "?")),
            self.model,
        )

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "meta": self.meta,
            "result": self.result,
            "model": self.model,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StoredRecord":
        return cls(
            key=payload["key"],
            meta=payload["meta"],
            result=payload["result"],
            model=payload.get("model", "?"),
        )


@dataclass(frozen=True)
class PartitionEntry:
    """What a snapshot manifest knows about one partition, without opening it."""

    path: str
    workload: str
    paradigm: str
    model: str
    records: int
    bytes: int
    keys: "tuple[str, ...]"

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["keys"] = list(self.keys)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PartitionEntry":
        return cls(
            path=payload["path"],
            workload=payload["workload"],
            paradigm=payload["paradigm"],
            model=payload["model"],
            records=payload["records"],
            bytes=payload["bytes"],
            keys=tuple(payload["keys"]),
        )

    def matches(self, workloads=None, paradigms=None, models=None) -> bool:
        """Partition pruning: can this file contain a matching record?"""
        if workloads is not None and self.workload not in workloads:
            return False
        if paradigms is not None and self.paradigm not in paradigms:
            return False
        return not (models is not None and self.model not in models)


def group_records(records: "Iterable[StoredRecord]") -> "dict[tuple, list[StoredRecord]]":
    """Split a commit's records into partition cells, preserving order."""
    groups: "dict[tuple, list[StoredRecord]]" = {}
    for record in records:
        groups.setdefault(record.partition_key(), []).append(record)
    return groups


def partition_payload(cell: tuple, records: "list[StoredRecord]") -> dict:
    workload, paradigm, model = cell
    return {
        "store_version": STORE_VERSION,
        "partition_key": {"workload": workload, "paradigm": paradigm, "model": model},
        "records": [record.to_dict() for record in records],
    }


def write_partition(root: Path, cell: tuple, records: "list[StoredRecord]") -> PartitionEntry:
    """Write one content-addressed partition file; idempotent by content."""
    from .format import publish_object

    payload = partition_payload(cell, records)
    digest = content_digest(payload)
    name = f"{digest}.json"
    publish_object(root / PARTITIONS_DIR / name, payload, exclusive=False)
    workload, paradigm, model = cell
    return PartitionEntry(
        path=name,
        workload=workload,
        paradigm=paradigm,
        model=model,
        records=len(records),
        bytes=len(canonical_json(payload)),
        keys=tuple(record.key for record in records),
    )


def read_partition(root: Path, path: str) -> "list[StoredRecord]":
    """Load every record of one partition file, in commit order."""
    payload = read_json(root / PARTITIONS_DIR / path)
    if not isinstance(payload, dict) or "records" not in payload:
        raise StoreError(f"partition {path} is not a record file")
    return [StoredRecord.from_dict(entry) for entry in payload["records"]]
