"""Compaction: merge a cell's small partition files into one.

Every ``append`` commit writes one file per touched ``workload x paradigm
x model`` cell, so long campaigns accumulate many small files per cell
(and re-committed fingerprints leave shadowed copies behind). Compaction
rewrites each fragmented cell into a single deduplicated partition via
the normal commit protocol — the rewrite is just another snapshot, so
time travel to pre-compaction snapshots still sees the old files until
retention expires them and ``vacuum`` collects the bytes.

The merge plan runs inside :meth:`ResultStore.rewrite`, which re-evaluates
it on every optimistic-concurrency retry — a plan computed against a
stale snapshot is never committed. Before returning, the plan asserts the
merged record set matches the pre-merge *visible* set exactly (latest copy
per fingerprint); any mismatch aborts the commit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .format import StoreError
from .partitions import PartitionEntry, StoredRecord, read_partition, write_partition


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction pass did."""

    snapshot: "int | None"
    cells_compacted: int
    files_before: int
    files_after: int
    records: int
    shadowed_dropped: int


def _merge_cell(store, entries: "list[PartitionEntry]") -> "tuple[list[StoredRecord], int]":
    """Latest-wins merge of one cell's files, preserving first-seen order.

    Returns ``(merged_records, shadowed_copies_dropped)``.
    """
    merged: "dict[str, StoredRecord]" = {}
    copies = 0
    for entry in entries:
        for record in read_partition(store.directory, entry.path):
            copies += 1
            merged[record.key] = record  # dict keeps first-seen position
    return list(merged.values()), copies - len(merged)


def _cell_needs_compaction(entries: "list[PartitionEntry]") -> bool:
    if len(entries) > 1:
        return True
    # A single file still compacts when re-commits left shadowed copies.
    only = entries[0]
    return len(set(only.keys)) != only.records


def compact(store) -> CompactionReport:
    """Merge every fragmented cell; returns what happened.

    A no-op (nothing fragmented) publishes no snapshot.
    """
    outcome = {"cells": 0, "before": 0, "after": 0, "records": 0, "shadowed": 0}

    def plan(current: "list[PartitionEntry]"):
        outcome.update({"cells": 0, "before": 0, "after": 0, "records": 0, "shadowed": 0})
        cells: "dict[tuple, list[PartitionEntry]]" = {}
        for entry in current:
            cells.setdefault((entry.workload, entry.paradigm, entry.model), []).append(entry)
        added, removed = [], []
        for cell, entries in sorted(cells.items()):
            if not _cell_needs_compaction(entries):
                continue
            merged, shadowed = _merge_cell(store, entries)
            visible = {
                record.key
                for entry in entries
                for record in read_partition(store.directory, entry.path)
            }
            if {record.key for record in merged} != visible:
                raise StoreError(
                    f"compaction of cell {cell} would change the record set; aborting"
                )
            replacement = write_partition(store.directory, cell, merged)
            old_paths = [entry.path for entry in entries]
            if [replacement.path] == old_paths:
                continue  # content-identical rewrite; nothing to commit
            added.append(replacement)
            removed.extend(old_paths)
            outcome["cells"] += 1
            outcome["before"] += len(entries)
            outcome["after"] += 1
            outcome["records"] += len(merged)
            outcome["shadowed"] += shadowed
        return tuple(added), tuple(removed)

    snapshot = store.rewrite("compact", plan, {"kind": "compaction"})
    return CompactionReport(
        snapshot=None if snapshot is None else snapshot.snapshot_id,
        cells_compacted=outcome["cells"],
        files_before=outcome["before"],
        files_after=outcome["after"],
        records=outcome["records"],
        shadowed_dropped=outcome["shadowed"],
    )
