"""Materialized views: one live aggregate per paper figure.

A figure view keeps, for every simulation config in its shape, the scalar
metrics that figure is computed from — keyed by the full config identity
``workload|paradigm|num_gpus|link|scale|iterations``. Because simulations
are deterministic and results are fingerprint-addressed, the per-config
"aggregate" is an upsert (last committed copy wins), which makes the view
*incrementally maintainable*: applying just the records of a commit's
added partitions produces exactly the state a full rescan would (see
:mod:`repro.store.incremental`).

``render_view`` turns a view's row table back into the figure dict shape
the :mod:`repro.harness.experiments` drivers produce, computed per
``(num_gpus, link, scale, iterations)`` combo present in the store — so
the figures stay warm as design-space campaigns append results, with no
rescan and no re-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.report import geomean
from ..paradigms.registry import FIGURE8_ORDER
from .query import record_row

#: Paradigms Figure 10 plots (normalised to memcpy).
_FIG10_PARADIGMS = ("um", "um_hints", "rdl", "gps")


@dataclass(frozen=True)
class FigureView:
    """Declarative shape of one figure's aggregate."""

    name: str
    #: Paradigms the figure plots at ``num_gpus``.
    paradigms: "tuple[str, ...]"
    #: GPU count the figure evaluates (baseline rows are memcpy @ 1).
    num_gpus: int
    #: Scalar metrics kept per config row.
    metrics: "tuple[str, ...]" = ("total_time", "interconnect_bytes")
    #: Whether memcpy single-GPU baselines are part of the shape.
    baseline: bool = True

    def wants(self, row: dict) -> bool:
        """Does one query row belong to this view?"""
        paradigm, gpus = row.get("paradigm"), row.get("num_gpus")
        if paradigm in self.paradigms and gpus == self.num_gpus:
            return True
        return self.baseline and paradigm == "memcpy" and gpus == 1

    def row_key(self, row: dict) -> str:
        return "|".join(
            str(row.get(field))
            for field in ("workload", "paradigm", "num_gpus", "link", "scale", "iterations")
        )

    def project(self, row: dict) -> dict:
        projected = {metric: row.get(metric) for metric in self.metrics}
        projected["key"] = row.get("key")
        return projected


#: The committed view catalogue: the four headline end-to-end figures.
FIGURE_VIEWS: "tuple[FigureView, ...]" = (
    FigureView("fig08", tuple(FIGURE8_ORDER), num_gpus=4),
    FigureView("fig10", ("memcpy",) + _FIG10_PARADIGMS, num_gpus=4),
    FigureView("fig11", ("gps_nosub", "gps"), num_gpus=4),
    FigureView("fig12", tuple(FIGURE8_ORDER), num_gpus=16),
)

VIEWS_BY_NAME = {view.name: view for view in FIGURE_VIEWS}


def apply_records(view: FigureView, rows: "dict[str, dict]", records) -> int:
    """Upsert stored records into a view's row table; returns rows touched.

    The reduce is an upsert keyed by full config identity, so applying a
    delta is order-insensitive against re-commits of the same fingerprint
    (deterministic simulations re-commit identical payloads).
    """
    applied = 0
    for record in records:
        row = record_row(record)
        if not view.wants(row):
            continue
        rows[view.row_key(row)] = view.project(row)
        applied += 1
    return applied


def _explode(rows: "dict[str, dict]") -> "list[tuple[tuple, str, str, dict]]":
    exploded = []
    for key, metrics in rows.items():
        workload, paradigm, num_gpus, link, scale, iterations = key.split("|")
        combo = (link, scale, iterations)
        exploded.append((combo, workload, paradigm, {**metrics, "num_gpus": num_gpus}))
    return exploded


def render_view(view: FigureView, rows: "dict[str, dict]") -> dict:
    """Figure dict per complete ``(link, scale, iterations)`` combo.

    A combo is complete for a workload when its baseline row (memcpy @ 1
    GPU) and at least one multi-GPU paradigm row are present; figures
    without baselines (fig10) only need the memcpy traffic row.
    """
    combos: "dict[tuple, dict]" = {}
    for combo, workload, paradigm, metrics in _explode(rows):
        slot = combos.setdefault(combo, {})
        gpus = int(metrics["num_gpus"])
        if paradigm == "memcpy" and gpus == 1:
            slot.setdefault("_base", {})[workload] = metrics
        if gpus == view.num_gpus and paradigm in view.paradigms:
            slot.setdefault("_multi", {}).setdefault(workload, {})[paradigm] = metrics

    out: "dict[str, dict]" = {}
    for combo, slot in sorted(combos.items()):
        multi = slot.get("_multi", {})
        base = slot.get("_base", {})
        if view.name == "fig10":
            rendered = _render_fig10(multi)
        else:
            rendered = _render_speedups(view, base, multi)
        if rendered is None:
            continue
        link, scale, iterations = combo
        rendered.update(
            {"figure": view.name, "link": link, "scale": scale, "iterations": iterations}
        )
        out["|".join(combo)] = rendered
    return out


def _render_speedups(view: FigureView, base: dict, multi: dict) -> "dict | None":
    speedups: "dict[str, dict]" = {}
    for workload, per_paradigm in sorted(multi.items()):
        baseline = base.get(workload)
        if baseline is None or not baseline.get("total_time"):
            continue
        speedups[workload] = {
            paradigm: baseline["total_time"] / metrics["total_time"]
            for paradigm, metrics in sorted(per_paradigm.items())
            if metrics.get("total_time")
        }
    speedups = {w: s for w, s in speedups.items() if s}
    if not speedups:
        return None
    paradigms = sorted({p for s in speedups.values() for p in s})
    complete = [
        p for p in paradigms if all(p in s for s in speedups.values())
    ]
    return {
        "workloads": sorted(speedups),
        "paradigms": paradigms,
        "speedups": speedups,
        "geomean": {
            p: geomean([speedups[w][p] for w in speedups]) for p in complete
        },
    }


def _render_fig10(multi: dict) -> "dict | None":
    normalized: "dict[str, dict]" = {}
    raw: "dict[str, dict]" = {}
    for workload, per_paradigm in sorted(multi.items()):
        base = per_paradigm.get("memcpy", {}).get("interconnect_bytes")
        if not base:
            continue
        raw[workload] = {
            p: m["interconnect_bytes"] for p, m in sorted(per_paradigm.items())
        }
        normalized[workload] = {
            p: m["interconnect_bytes"] / base
            for p, m in sorted(per_paradigm.items())
            if p != "memcpy"
        }
    if not normalized:
        return None
    return {
        "workloads": sorted(normalized),
        "paradigms": [p for p in _FIG10_PARADIGMS],
        "normalized_to_memcpy": normalized,
        "raw_bytes": raw,
    }
