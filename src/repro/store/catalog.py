"""The result lakehouse: an append-only, snapshot-versioned catalog.

``ResultStore`` is the facade every consumer goes through: the harness
runner's persistent layer, the service's job sink, the verify
differential's fifth execution path, and the ``repro store`` CLI verbs.

Commit protocol (see :mod:`repro.store.snapshots` for why this is safe):

1. group the commit's records into ``workload x paradigm x model`` cells
   and write one content-addressed partition file per cell (idempotent);
2. read the current snapshot id, build a delta manifest against it, and
   publish it *exclusively* as ``current + 1``;
3. on conflict (another writer claimed the id) re-read and retry — the
   partition files written in step 1 stay valid, only the manifest is
   rebuilt, so concurrent commits serialize without losing either;
4. advance the advisory ``catalog.json`` pointer (readers never trust it:
   the snapshot directory is the source of truth, so a crash between 3
   and 4 is invisible).

A crash before step 2 publishes leaves orphaned partition files that
``vacuum`` collects later; the previous snapshot stays fully readable
throughout.

The first ``open()`` of a fresh store auto-imports the legacy flat
``.repro-cache/`` (one JSON record per fingerprint) as an ``import``
commit, so existing result corpora survive the backend switch.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterable

from ..system.results import SimulationResult
from .format import (
    STORE_VERSION,
    CommitConflict,
    StoreError,
    canonical_json,
    write_pointer,
)
from .partitions import (
    PARTITIONS_DIR,
    PartitionEntry,
    StoredRecord,
    group_records,
    read_partition,
    write_partition,
)
from .snapshots import CHECKPOINT_EVERY, Refs, Snapshot, SnapshotLog

#: Default store directory, relative to the working directory.
DEFAULT_STORE_DIR = ".repro-store"

#: Mutable advisory pointer; the snapshots directory is authoritative.
CATALOG_FILE = "catalog.json"

#: Store marker written once at creation.
MARKER_FILE = "store.json"

#: Operations that always embed a full partition list (checkpoints).
_CHECKPOINT_OPS = frozenset({"import", "compact", "truncate"})

#: Bounded commit retries; each retry means another writer made progress,
#: so hitting the bound requires dozens of concurrent committers.
_MAX_COMMIT_RETRIES = 64


def default_store_dir() -> Path:
    """Resolve the store root from the environment (``REPRO_STORE_DIR``)."""
    return Path(os.environ.get("REPRO_STORE_DIR") or DEFAULT_STORE_DIR)


def default_legacy_dir() -> Path:
    """Where the flat one-file-per-result cache lives (for auto-import)."""
    from ..harness.runner.disk import DEFAULT_CACHE_DIR

    return Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)


class ResultStore:
    """One lakehouse instance rooted at ``directory``.

    Instances are cheap; all durable state lives on disk. Concurrent
    instances (threads or processes) sharing one directory are safe:
    commits serialize through exclusive snapshot publishes and readers
    only ever see complete, immutable objects.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self.log = SnapshotLog(self.directory)
        self.refs = Refs(self.directory)
        #: Point-lookup index per resolved snapshot id: key -> partition path.
        self._index: "dict[int, dict[str, str]]" = {}
        self._auto_refresh = True

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: "str | Path | None" = None,
        *,
        create: bool = True,
        legacy: "str | Path | None | bool" = None,
        auto_refresh: bool = True,
    ) -> "ResultStore":
        """Open (and lazily create) a store, auto-importing the legacy cache.

        ``legacy`` picks the flat-cache directory to import on first open:
        ``None`` resolves ``REPRO_CACHE_DIR``/``.repro-cache``, ``False``
        disables the import, anything else is used as the path.
        """
        store = cls(directory if directory is not None else default_store_dir())
        store._auto_refresh = auto_refresh
        marker = store.directory / MARKER_FILE
        if not marker.exists():
            if not create:
                raise StoreError(f"no result store at {store.directory}")
            store.directory.mkdir(parents=True, exist_ok=True)
            try:
                from .format import publish_object

                publish_object(
                    marker, {"store_version": STORE_VERSION}, exclusive=True
                )
            except CommitConflict:
                pass  # another opener won the race; the store exists now
        if legacy is not False and store.current_snapshot_id() is None:
            legacy_dir = default_legacy_dir() if legacy is None else Path(legacy)
            store.import_legacy(legacy_dir)
        return store

    # -- snapshot resolution -------------------------------------------------

    def current_snapshot_id(self) -> "int | None":
        return self.log.current_id()

    def resolve(self, ref: "int | str | None" = None) -> "int | None":
        """Turn a snapshot id, tag name, or ``None`` (= head) into an id."""
        if ref is None:
            return self.current_snapshot_id()
        if isinstance(ref, int) or (isinstance(ref, str) and ref.isdigit()):
            snapshot_id = int(ref)
            self.log.load(snapshot_id)  # raises StoreError if missing
            return snapshot_id
        tags = self.refs.tags()
        if ref in tags:
            return tags[ref]
        raise StoreError(f"unknown snapshot or tag {ref!r}")

    def at(self, ref: "int | str | None" = None) -> "StoreReader":
        """A read view pinned to one snapshot (time travel)."""
        return StoreReader(self, self.resolve(ref))

    def history(self) -> "list[Snapshot]":
        """Every retained snapshot, oldest first."""
        return [self.log.load(i) for i in self.log.ids()]

    # -- commits -------------------------------------------------------------

    def append(
        self,
        records: "Iterable[StoredRecord]",
        operation: str = "append",
    ) -> "Snapshot | None":
        """Commit new results; returns the published snapshot (or ``None``

        for an empty commit). Records grouped into partition cells; the
        same fingerprint re-committed later *shadows* the older copy (last
        write wins at read time; compaction physically dedups).
        """
        records = list(records)
        if not records:
            return None
        groups = group_records(records)
        added = tuple(
            write_partition(self.directory, cell, cell_records)
            for cell, cell_records in sorted(groups.items())
        )
        summary = {"records": len(records), "partitions": len(added)}
        return self._commit(operation, lambda current: (added, ()), summary)

    def rewrite(
        self,
        operation: str,
        plan: "Callable[[list[PartitionEntry]], tuple]",
        summary: "dict | None" = None,
    ) -> "Snapshot | None":
        """Commit a structural change (compaction, truncate).

        ``plan`` maps the current partition list to ``(added, removed)``
        and is *re-evaluated on every conflict retry*, so a compaction
        plan computed against a stale snapshot is never committed.
        """
        return self._commit(operation, plan, dict(summary or {}))

    def truncate(self) -> "Snapshot | None":
        """Logically empty the store (history stays readable via ``at()``)."""
        return self.rewrite(
            "truncate", lambda current: ((), tuple(e.path for e in current))
        )

    def _commit(
        self,
        operation: str,
        plan: "Callable[[list[PartitionEntry]], tuple]",
        summary: dict,
    ) -> "Snapshot | None":
        for _ in range(_MAX_COMMIT_RETRIES):
            parent = self.current_snapshot_id()
            current = [] if parent is None else self.log.partitions_at(parent)
            planned = plan(current)
            added, removed = tuple(planned[0]), tuple(planned[1])
            if not added and not removed:
                return None
            snapshot_id = (parent or 0) + 1
            checkpoint = operation in _CHECKPOINT_OPS or (
                parent is not None
                and self.log.chain_depth(parent) + 1 >= CHECKPOINT_EVERY
            )
            partitions = None
            if checkpoint:
                merged = {entry.path: entry for entry in current}
                for path in removed:
                    merged.pop(path, None)
                kept = [e for e in current if e.path in merged]
                partitions = tuple(kept) + tuple(
                    e for e in added if e.path not in {k.path for k in kept}
                )
            snapshot = Snapshot(
                snapshot_id=snapshot_id,
                parent=parent,
                operation=operation,
                added=added,
                removed=removed,
                partitions=partitions,
                summary=summary,
            )
            try:
                self.log.publish(snapshot)
            except CommitConflict:
                continue  # rebase onto the winner and retry
            write_pointer(
                self.directory / CATALOG_FILE,
                {"store_version": STORE_VERSION, "current_snapshot": snapshot_id},
            )
            if self._auto_refresh:
                self._refresh_views(snapshot_id)
            return snapshot
        raise StoreError(
            f"commit of {operation!r} lost {_MAX_COMMIT_RETRIES} races; giving up"
        )

    def _refresh_views(self, snapshot_id: int) -> None:
        from .incremental import refresh_all_views

        try:
            refresh_all_views(self, snapshot_id)
        except StoreError:
            # A damaged view state must never fail a commit; the next
            # explicit refresh rebuilds it from scratch.
            pass

    # -- legacy import -------------------------------------------------------

    def import_legacy(self, legacy_dir: "str | Path") -> "Snapshot | None":
        """Import a flat ``.repro-cache/`` directory as one commit.

        Unreadable or torn records are skipped (the flat cache already
        treats them as misses). Returns ``None`` when there is nothing to
        import.
        """
        legacy_dir = Path(legacy_dir)
        if not legacy_dir.is_dir():
            return None
        records = []
        for path in sorted(legacy_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(payload, dict) or "result" not in payload:
                continue
            key = payload.get("key") or path.stem
            records.append(
                StoredRecord(
                    key=key,
                    meta=dict(payload.get("job", {})),
                    result=payload["result"],
                    model=str(payload.get("model", "?")),
                )
            )
        if not records:
            return None
        return self.append(records, operation="import")

    # -- reads ---------------------------------------------------------------

    def get(self, key: str, at: "int | str | None" = None) -> "SimulationResult | None":
        """Point lookup by config fingerprint (last committed copy wins)."""
        return self.at(at).get(key)

    def record(self, key: str, at: "int | str | None" = None) -> "StoredRecord | None":
        return self.at(at).record(key)

    def query(self, *args, **kwargs):
        """Attribute-filtered scan; see :func:`repro.store.query.run_query`."""
        from .query import run_query

        return run_query(self.at(kwargs.pop("at", None)), *args, **kwargs)

    # -- tags ----------------------------------------------------------------

    def tag(self, name: str, ref: "int | str | None" = None) -> int:
        """Create/move a tag; returns the snapshot id it now points at."""
        snapshot_id = self.resolve(ref)
        if snapshot_id is None:
            raise StoreError("cannot tag an empty store")
        self.refs.set_tag(name, snapshot_id)
        return snapshot_id

    def clone(self, name: str, ref: "int | str | None" = None) -> int:
        """A clone *is* a tag: O(1), sharing every partition byte."""
        return self.tag(name, ref)

    def drop_tag(self, name: str) -> bool:
        return self.refs.delete_tag(name)

    def tags(self) -> "dict[str, int]":
        return self.refs.tags()

    # -- stats ---------------------------------------------------------------

    def stats(self) -> dict:
        """Everything ``repro store show`` prints, in one scan."""
        current = self.current_snapshot_id()
        partitions = [] if current is None else self.log.partitions_at(current)
        partitions_dir = self.directory / PARTITIONS_DIR
        files_on_disk = (
            sum(1 for p in partitions_dir.glob("*.json")) if partitions_dir.is_dir() else 0
        )
        from .matviews import FIGURE_VIEWS
        from .incremental import latest_state_id

        views = {
            view.name: latest_state_id(self, view.name) for view in FIGURE_VIEWS
        }
        return {
            "directory": str(self.directory),
            "current_snapshot": current,
            "snapshots": len(self.log.ids()),
            "partitions": len(partitions),
            "partition_files": files_on_disk,
            "records": sum(e.records for e in partitions),
            "bytes": sum(e.bytes for e in partitions),
            "tags": self.tags(),
            "views": views,
        }

    # -- internal ------------------------------------------------------------

    def _key_index(self, snapshot_id: int) -> "dict[str, str]":
        """key -> partition path at one snapshot (later partitions shadow)."""
        cached = self._index.get(snapshot_id)
        if cached is None:
            cached = {}
            for entry in self.log.partitions_at(snapshot_id):
                for key in entry.keys:
                    cached[key] = entry.path
            self._index[snapshot_id] = cached
        return cached


class StoreReader:
    """A read-only view of one snapshot (what ``store.at()`` returns)."""

    def __init__(self, store: ResultStore, snapshot_id: "int | None") -> None:
        self.store = store
        self.snapshot_id = snapshot_id

    def partitions(self) -> "list[PartitionEntry]":
        if self.snapshot_id is None:
            return []
        return self.store.log.partitions_at(self.snapshot_id)

    def record(self, key: str) -> "StoredRecord | None":
        if self.snapshot_id is None:
            return None
        path = self.store._key_index(self.snapshot_id).get(key)
        if path is None:
            return None
        # Last copy of the key in the file wins (re-commits append).
        found = None
        for record in read_partition(self.store.directory, path):
            if record.key == key:
                found = record
        return found

    def get(self, key: str) -> "SimulationResult | None":
        record = self.record(key)
        if record is None:
            return None
        return SimulationResult.from_dict(record.result)

    def canonical_payload(self, key: str) -> "str | None":
        """The byte-comparable canonical JSON the verify harness asserts on."""
        record = self.record(key)
        if record is None:
            return None
        return canonical_json(record.result)

    def iter_records(
        self, workloads=None, paradigms=None, models=None
    ) -> "Iterable[StoredRecord]":
        """Scan records with partition pruning; later copies shadow earlier.

        Yields each fingerprint exactly once, in partition order with the
        *latest* committed copy of each key.
        """
        pruned = [
            entry
            for entry in self.partitions()
            if entry.matches(workloads, paradigms, models)
        ]
        latest: "dict[str, tuple[int, int, StoredRecord]]" = {}
        for p_index, entry in enumerate(pruned):
            for r_index, record in enumerate(
                read_partition(self.store.directory, entry.path)
            ):
                latest[record.key] = (p_index, r_index, record)
        for _, _, record in sorted(
            latest.values(), key=lambda item: (item[0], item[1])
        ):
            yield record

    def records(self, **kwargs) -> "list[StoredRecord]":
        return list(self.iter_records(**kwargs))


def open_store(
    directory: "str | Path | None" = None, **kwargs
) -> ResultStore:
    """Module-level convenience mirroring :meth:`ResultStore.open`."""
    return ResultStore.open(directory, **kwargs)
