"""``repro.store`` — the versioned, compacting, queryable result lakehouse.

Every :class:`~repro.system.results.SimulationResult` the platform produces
can land here instead of (or imported from) the flat one-file-per-result
``.repro-cache/``: results are grouped into content-addressed partition
files by ``workload x paradigm x model`` cell, every commit publishes a
monotonically increasing snapshot (time-travel reads via ``store.at(ref)``,
O(1) tags/clones), small partitions compact, retention + ``vacuum`` bound
history and disk, and **incremental materialized views** keep one live
aggregate per paper figure up to date as results commit.

Consumers:

* the harness runner's persistent layer (``REPRO_RESULT_BACKEND=store``);
* the service's completed-job sink (``REPRO_SERVICE_STORE_DIR``);
* ``repro verify``'s differential harness (the ``store`` execution path);
* the ``repro store show|query|tags|compact|vacuum|history`` CLI verbs.

See ``docs/STORE.md`` for the on-disk format, commit protocol, and the
view-refresh algorithm.
"""

from .catalog import (
    CATALOG_FILE,
    DEFAULT_STORE_DIR,
    ResultStore,
    StoreReader,
    default_store_dir,
    open_store,
)
from .format import STORE_VERSION, CommitConflict, StoreError, canonical_json
from .incremental import (
    RefreshStats,
    refresh_all_views,
    refresh_view,
    view_figure,
)
from .maintenance import CompactionReport, compact
from .matviews import FIGURE_VIEWS, VIEWS_BY_NAME, FigureView, render_view
from .partitions import PartitionEntry, StoredRecord
from .query import Filter, QueryResult, ROW_FIELDS, parse_filter, record_row, run_query
from .retention import (
    ExpireReport,
    RetentionPolicy,
    VacuumReport,
    expire_snapshots,
    retained_snapshots,
    vacuum,
)
from .snapshots import Snapshot

__all__ = [
    "CATALOG_FILE",
    "CommitConflict",
    "CompactionReport",
    "DEFAULT_STORE_DIR",
    "ExpireReport",
    "FIGURE_VIEWS",
    "Filter",
    "FigureView",
    "PartitionEntry",
    "QueryResult",
    "ROW_FIELDS",
    "RefreshStats",
    "RetentionPolicy",
    "ResultStore",
    "STORE_VERSION",
    "Snapshot",
    "StoreError",
    "StoreReader",
    "StoredRecord",
    "VIEWS_BY_NAME",
    "VacuumReport",
    "canonical_json",
    "compact",
    "default_store_dir",
    "expire_snapshots",
    "open_store",
    "parse_filter",
    "record_row",
    "refresh_all_views",
    "refresh_view",
    "render_view",
    "retained_snapshots",
    "run_query",
    "vacuum",
    "view_figure",
]
