"""Attribute-filtered queries over stored results.

A query is a conjunction of :class:`Filter`\\ s over the flat *row*
namespace of a record — its job meta (``workload``, ``paradigm``,
``num_gpus``, ``link``, ``scale``, ``iterations``, ``model``) plus scalar
metrics projected out of the result payload (``total_time``,
``interconnect_bytes``, ``fault_count``, ``pages_migrated``). Filters on
the partition axes (``workload``/``paradigm``/``model``) prune whole
partition files before any record is read.

Output is dataframe-shaped without a dataframe dependency:
:meth:`QueryResult.rows` is records-of-dicts, :meth:`QueryResult.columns`
is columns-of-lists — either drops straight into ``pandas.DataFrame`` when
one is available.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Iterable

from .format import StoreError
from .partitions import StoredRecord

#: Columns every row carries, in display order.
ROW_FIELDS = (
    "key",
    "workload",
    "paradigm",
    "num_gpus",
    "link",
    "scale",
    "iterations",
    "model",
    "total_time",
    "interconnect_bytes",
    "fault_count",
    "pages_migrated",
)

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "in": lambda value, options: value in options,
}

#: Longest operators first so ``>=`` never parses as ``>``.
_OP_TOKENS = ("==", "!=", ">=", "<=", "=", ">", "<")


@dataclass(frozen=True)
class Filter:
    """One predicate: ``field <op> value``."""

    field: str
    op: str
    value: Any

    def matches(self, row: dict) -> bool:
        if self.field not in row:
            return False
        actual = row[self.field]
        try:
            return bool(_OPS[self.op](actual, self.value))
        except TypeError:
            return False


def parse_filter(text: str) -> Filter:
    """Parse a CLI filter token, e.g. ``workload=jacobi`` or ``num_gpus>=4``.

    Values are coerced numerically when they look numeric; ``=`` accepts a
    comma-separated list and becomes an ``in`` filter.
    """
    for token in _OP_TOKENS:
        field, found, raw = text.partition(token)
        if found:
            field = field.strip()
            if not field:
                break
            op = "==" if token == "=" else token
            if op == "==" and "," in raw:
                return Filter(field, "in", tuple(_coerce(v) for v in raw.split(",")))
            return Filter(field, op, _coerce(raw.strip()))
    raise StoreError(f"unparseable filter {text!r} (expected field<op>value)")


def _coerce(raw: str) -> Any:
    raw = raw.strip()
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def record_row(record: StoredRecord) -> dict:
    """Flatten one stored record into the query row namespace."""
    meta = record.meta
    result = record.result
    traffic = result.get("traffic", [])
    row = {
        "key": record.key,
        "workload": meta.get("workload", result.get("program_name", "?")),
        "paradigm": meta.get("paradigm", result.get("paradigm", "?")),
        "num_gpus": meta.get("num_gpus", result.get("num_gpus")),
        "link": meta.get("link", "?"),
        "scale": meta.get("scale"),
        "iterations": meta.get("iterations"),
        "model": record.model,
        "total_time": result.get("total_time"),
        "interconnect_bytes": sum(sum(r) for r in traffic),
        "fault_count": result.get("fault_count", 0),
        "pages_migrated": result.get("pages_migrated", 0),
    }
    return row


class QueryResult:
    """Filtered rows with dataframe-shaped accessors."""

    def __init__(self, rows: "list[dict]", columns: "tuple[str, ...]") -> None:
        self._rows = rows
        self._columns = columns

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def rows(self) -> "list[dict]":
        """Records orientation: one dict per result."""
        return [
            {field: row.get(field) for field in self._columns} for row in self._rows
        ]

    def columns(self) -> "dict[str, list]":
        """Columnar orientation: ``{column: [values]}`` (dataframe-shaped)."""
        return {
            field: [row.get(field) for row in self._rows] for field in self._columns
        }

    def column_names(self) -> "tuple[str, ...]":
        return self._columns

    def table(self) -> "tuple[list[str], list[list]]":
        """(headers, rows) for :func:`repro.harness.report.format_table`."""
        headers = list(self._columns)
        return headers, [[row.get(field) for field in headers] for row in self._rows]


def _partition_prune_values(filters: "list[Filter]", field: str):
    """Equality/in constraints usable for partition pruning, else ``None``."""
    for item in filters:
        if item.field != field:
            continue
        if item.op == "==":
            return (item.value,)
        if item.op == "in":
            return tuple(item.value)
    return None


def run_query(
    reader,
    where: "Iterable[Filter | str] | None" = None,
    columns: "Iterable[str] | None" = None,
    order_by: "str | None" = None,
    limit: "int | None" = None,
) -> QueryResult:
    """Execute one query against a :class:`~repro.store.catalog.StoreReader`.

    ``where`` accepts :class:`Filter` objects or CLI filter strings. Rows
    come back in deterministic partition order unless ``order_by`` names a
    column (descending via a ``-`` prefix).
    """
    filters = [
        item if isinstance(item, Filter) else parse_filter(item)
        for item in (where or [])
    ]
    chosen = tuple(columns) if columns else ROW_FIELDS
    unknown = [c for c in chosen if c not in ROW_FIELDS and not c.startswith("key")]
    if unknown:
        raise StoreError(f"unknown columns {unknown}; known: {list(ROW_FIELDS)}")
    rows = []
    for record in reader.iter_records(
        workloads=_partition_prune_values(filters, "workload"),
        paradigms=_partition_prune_values(filters, "paradigm"),
        models=_partition_prune_values(filters, "model"),
    ):
        row = record_row(record)
        if all(item.matches(row) for item in filters):
            rows.append(row)
    if order_by:
        reverse = order_by.startswith("-")
        field = order_by.lstrip("-")
        if field not in ROW_FIELDS:
            raise StoreError(f"unknown order_by column {field!r}")
        rows.sort(key=lambda row: (row.get(field) is None, row.get(field)), reverse=reverse)
    if limit is not None:
        rows = rows[: max(0, limit)]
    return QueryResult(rows, chosen)
