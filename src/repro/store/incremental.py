"""Incremental view maintenance: delta refresh instead of full rescans.

View states are immutable objects under ``views/<name>/<snapshot>.json``,
published with the same exclusive-link recipe as snapshots (a racing
refresh of the same view at the same snapshot converges on one file).

Refreshing a view at snapshot *T*:

1. find the newest existing state at an *ancestor* snapshot *A* of *T*;
2. the delta is the set of partition files *T* reaches that *A* does not,
   computed by replaying each manifest's ``added``/``removed`` along the
   *A* → *T* chain (O(delta), never O(catalog)) — compaction rewrites are
   included, which is safe because the view reduce is an upsert over
   identical record payloads (idempotent);
3. apply only the delta partitions' records to *A*'s row table and
   publish the result as *T*'s state.

With no usable ancestor state the refresh falls back to a full scan. The
returned :class:`RefreshStats` says which mode ran and how many partition
files and records were read — the quantity ``bench_store.py`` gates the
incremental-vs-full speedup on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .format import (
    STORE_VERSION,
    CommitConflict,
    StoreError,
    publish_object,
    read_json,
)
from .matviews import FIGURE_VIEWS, VIEWS_BY_NAME, FigureView, apply_records, render_view
from .partitions import read_partition
from .snapshots import snapshot_name

#: Subdirectory (under the store root) holding view states.
VIEWS_DIR = "views"

#: Operations whose commits only add or rewrite identical records, so an
#: existing ancestor state stays a valid incremental base across them. A
#: row-removing operation (``truncate``) in between invalidates the base:
#: the upsert reduce cannot un-apply rows, so the refresh falls back to a
#: full scan of the target's partitions.
_UPSERT_SAFE_OPS = frozenset({"append", "import", "compact"})


@dataclass(frozen=True)
class RefreshStats:
    """How one refresh ran (the benchmark's measured quantity)."""

    view: str
    snapshot: int
    mode: str  # "incremental" | "full" | "fresh" (no data) | "current"
    base: "int | None"
    partitions_read: int
    records_scanned: int
    rows: int


def _view_dir(root: Path, name: str) -> Path:
    return root / VIEWS_DIR / name


def _state_path(root: Path, name: str, snapshot_id: int) -> Path:
    return _view_dir(root, name) / snapshot_name(snapshot_id)


def state_ids(store, name: str) -> "list[int]":
    """Snapshot ids this view has published states for, ascending."""
    directory = _view_dir(store.directory, name)
    if not directory.is_dir():
        return []
    found = []
    for path in directory.iterdir():
        stem, _, suffix = path.name.partition(".")
        if suffix == "json" and stem.isdigit():
            found.append(int(stem))
    return sorted(found)


def latest_state_id(store, name: str) -> "int | None":
    ids = state_ids(store, name)
    return ids[-1] if ids else None


def load_state(store, name: str, snapshot_id: int) -> dict:
    payload = read_json(_state_path(store.directory, name, snapshot_id))
    if not isinstance(payload, dict) or "rows" not in payload:
        raise StoreError(f"view state {name}@{snapshot_id} is malformed")
    return payload


def _ancestors(store, snapshot_id: int) -> "list[int]":
    """``snapshot_id`` and its parents, newest first."""
    chain = []
    cursor: "int | None" = snapshot_id
    while cursor is not None:
        chain.append(cursor)
        try:
            cursor = store.log.load(cursor).parent
        except StoreError:
            break
    return chain


def refresh_view(
    store, view: "FigureView | str", at: "int | str | None" = None
) -> "tuple[dict, RefreshStats]":
    """Bring one view up to date at ``at`` (default: the current snapshot).

    Returns ``(state_payload, stats)``. Publishing is idempotent: when the
    state already exists the stored copy wins and ``mode`` is ``current``.
    """
    if isinstance(view, str):
        if view not in VIEWS_BY_NAME:
            raise StoreError(f"unknown view {view!r}; known: {sorted(VIEWS_BY_NAME)}")
        view = VIEWS_BY_NAME[view]
    target = store.resolve(at)
    if target is None:
        state = {"view": view.name, "snapshot": None, "rows": {}}
        return state, RefreshStats(view.name, 0, "fresh", None, 0, 0, 0)

    existing = set(state_ids(store, view.name))
    ancestors = _ancestors(store, target)
    if target in existing:
        state = load_state(store, view.name, target)
        return state, RefreshStats(
            view.name, target, "current", state.get("base"),
            0, 0, len(state["rows"]),
        )

    base_id = next((a for a in ancestors[1:] if a in existing), None)
    between: "list[int]" = []
    if base_id is not None:
        between = ancestors[: ancestors.index(base_id)]
        if any(
            store.log.load(s).operation not in _UPSERT_SAFE_OPS for s in between
        ):
            base_id = None
    if base_id is not None:
        base_state = load_state(store, view.name, base_id)
        rows = dict(base_state["rows"])
        # O(delta), not O(catalog): replay each manifest's added/removed
        # along the base->target chain instead of materialising both full
        # partition lists just to diff their paths. A file added then
        # removed inside the window (append, then compact) cancels out —
        # which also keeps us from touching paths vacuum may have
        # collected already.
        delta_map: "dict[str, object]" = {}
        for snapshot_id in reversed(between):
            snapshot = store.log.load(snapshot_id)
            for path in snapshot.removed:
                delta_map.pop(path, None)
            for entry in snapshot.added:
                delta_map[entry.path] = entry
        delta = list(delta_map.values())
        mode = "incremental"
    else:
        rows = {}
        delta = list(store.log.partitions_at(target))
        mode = "full"

    # Prune partitions whose paradigm can never satisfy the view's shape.
    wanted = set(view.paradigms) | ({"memcpy"} if view.baseline else set())
    delta = [e for e in delta if e.paradigm in wanted]

    records_scanned = 0
    for entry in delta:
        records = read_partition(store.directory, entry.path)
        records_scanned += len(records)
        apply_records(view, rows, records)

    state = {
        "store_version": STORE_VERSION,
        "view": view.name,
        "snapshot": target,
        "base": base_id,
        "mode": mode,
        "rows": rows,
    }
    try:
        publish_object(
            _state_path(store.directory, view.name, target), state, exclusive=True
        )
    except CommitConflict:
        state = load_state(store, view.name, target)  # racing refresh won
    return state, RefreshStats(
        view.name, target, mode, base_id, len(delta), records_scanned, len(state["rows"]),
    )


def refresh_all_views(store, at: "int | str | None" = None) -> "list[RefreshStats]":
    """Refresh the whole figure-view catalogue (what commits call)."""
    return [refresh_view(store, view, at)[1] for view in FIGURE_VIEWS]


def view_figure(store, name: str, at: "int | str | None" = None) -> dict:
    """Rendered figure dicts for one view at one snapshot (refreshing it)."""
    state, _ = refresh_view(store, name, at)
    return render_view(VIEWS_BY_NAME[name], state["rows"])


def prune_states(store, keep_snapshots: "set[int]") -> int:
    """Drop view states for snapshots retention expired; returns removals."""
    removed = 0
    for view in FIGURE_VIEWS:
        for snapshot_id in state_ids(store, view.name):
            if snapshot_id in keep_snapshots:
                continue
            try:
                _state_path(store.directory, view.name, snapshot_id).unlink()
                removed += 1
            except OSError:
                continue
    return removed
