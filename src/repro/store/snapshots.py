"""Snapshot manifests, the commit log, and named refs (tags/clones).

Every commit publishes ``snapshots/<id>.json`` where ``<id>`` is a
monotonically increasing, zero-padded integer. Publishing is *exclusive*
(``os.link``), so the snapshot id doubles as the commit lock: two writers
racing on id N produce exactly one winner, and the loser rebases onto N
and retries as N+1 — commits serialize without a daemon or a lock file.

Manifests are **deltas** (``added`` / ``removed`` partition entries against
``parent``) so a commit costs O(changed partitions), with a full partition
list embedded every :data:`CHECKPOINT_EVERY` commits — and always for
whole-catalog rewrites (compaction, truncate, import) — so resolving any
snapshot's partition set walks a bounded chain.

Tags are named pointers to snapshot ids kept in ``refs.json``. A *clone*
is just a tag: partitions are immutable and content-addressed, so cloning
a result set is O(1) and shares every byte with its source. Retention
treats tagged snapshots as GC roots — ``vacuum`` can never collect a
partition reachable from one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .format import (
    STORE_VERSION,
    StoreError,
    publish_object,
    read_json,
    write_pointer,
)
from .partitions import PartitionEntry

#: Subdirectory (under the store root) holding snapshot manifests.
SNAPSHOTS_DIR = "snapshots"

#: Mutable pointer file holding tags.
REFS_FILE = "refs.json"

#: A full partition list is embedded at least this often so delta chains
#: stay short; compaction and truncation always checkpoint.
CHECKPOINT_EVERY = 32

#: Width of zero-padded snapshot ids (sorts lexicographically = numerically).
_ID_WIDTH = 8


def snapshot_name(snapshot_id: int) -> str:
    return f"{snapshot_id:0{_ID_WIDTH}d}.json"


@dataclass(frozen=True)
class Snapshot:
    """One committed store state (immutable once published)."""

    snapshot_id: int
    parent: "int | None"
    operation: str
    added: "tuple[PartitionEntry, ...]" = ()
    removed: "tuple[str, ...]" = ()
    #: Full partition list; ``None`` for delta-only manifests.
    partitions: "tuple[PartitionEntry, ...] | None" = None
    summary: dict = field(default_factory=dict)

    @property
    def is_checkpoint(self) -> bool:
        return self.partitions is not None

    def to_dict(self) -> dict:
        payload = {
            "store_version": STORE_VERSION,
            "snapshot": self.snapshot_id,
            "parent": self.parent,
            "operation": self.operation,
            "added": [entry.to_dict() for entry in self.added],
            "removed": list(self.removed),
            "summary": self.summary,
        }
        if self.partitions is not None:
            payload["partitions"] = [entry.to_dict() for entry in self.partitions]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Snapshot":
        partitions = payload.get("partitions")
        return cls(
            snapshot_id=payload["snapshot"],
            parent=payload["parent"],
            operation=payload["operation"],
            added=tuple(PartitionEntry.from_dict(e) for e in payload["added"]),
            removed=tuple(payload["removed"]),
            partitions=(
                None
                if partitions is None
                else tuple(PartitionEntry.from_dict(e) for e in partitions)
            ),
            summary=payload.get("summary", {}),
        )


class SnapshotLog:
    """The append-only commit log under ``<root>/snapshots/``."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self._dir = root / SNAPSHOTS_DIR
        self._cache: "dict[int, Snapshot]" = {}

    # -- reading ------------------------------------------------------------

    def ids(self) -> "list[int]":
        """Every published snapshot id, ascending (torn names ignored)."""
        if not self._dir.is_dir():
            return []
        found = []
        for path in self._dir.iterdir():
            stem, _, suffix = path.name.partition(".")
            if suffix == "json" and len(stem) == _ID_WIDTH and stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def current_id(self) -> "int | None":
        """The newest *readable* snapshot — a crashed writer's claim never

        wins: publishing is atomic, so every name that exists is complete;
        this walks down only if a manifest was damaged out-of-band.
        """
        for snapshot_id in reversed(self.ids()):
            try:
                self.load(snapshot_id)
            except StoreError:
                continue
            return snapshot_id
        return None

    def load(self, snapshot_id: int) -> Snapshot:
        cached = self._cache.get(snapshot_id)
        if cached is not None:
            return cached
        try:
            payload = read_json(self._dir / snapshot_name(snapshot_id))
        except FileNotFoundError:
            raise StoreError(f"snapshot {snapshot_id} does not exist") from None
        if not isinstance(payload, dict) or "snapshot" not in payload:
            raise StoreError(f"snapshot {snapshot_id} manifest is malformed")
        snapshot = Snapshot.from_dict(payload)
        self._cache[snapshot_id] = snapshot
        return snapshot

    def partitions_at(self, snapshot_id: int) -> "list[PartitionEntry]":
        """Resolve a snapshot's full partition list through the delta chain."""
        chain: "list[Snapshot]" = []
        cursor: "int | None" = snapshot_id
        while cursor is not None:
            snapshot = self.load(cursor)
            chain.append(snapshot)
            if snapshot.is_checkpoint:
                break
            cursor = snapshot.parent
        else:
            # Chain ended at the root (parent None) without a checkpoint:
            # the root itself acts as an empty base.
            pass
        entries: "dict[str, PartitionEntry]" = {}
        order: "list[str]" = []
        for snapshot in reversed(chain):
            base = (
                list(snapshot.partitions)
                if snapshot.is_checkpoint
                else None
            )
            if base is not None:
                entries = {entry.path: entry for entry in base}
                order = [entry.path for entry in base]
                continue
            for path in snapshot.removed:
                if path in entries:
                    del entries[path]
                    order.remove(path)
            for entry in snapshot.added:
                if entry.path not in entries:
                    order.append(entry.path)
                entries[entry.path] = entry
        return [entries[path] for path in order]

    def chain_depth(self, snapshot_id: int) -> int:
        """Delta links between ``snapshot_id`` and its nearest checkpoint."""
        depth = 0
        cursor: "int | None" = snapshot_id
        while cursor is not None:
            snapshot = self.load(cursor)
            if snapshot.is_checkpoint:
                break
            depth += 1
            cursor = snapshot.parent
        return depth

    # -- writing ------------------------------------------------------------

    def publish(self, snapshot: Snapshot) -> None:
        """Atomically claim + publish one manifest.

        Raises :class:`repro.store.format.CommitConflict` when the id is
        already taken — the caller rebases and retries with a fresh id.
        """
        publish_object(
            self._dir / snapshot_name(snapshot.snapshot_id),
            snapshot.to_dict(),
            exclusive=True,
        )
        self._cache[snapshot.snapshot_id] = snapshot

    def delete(self, snapshot_id: int) -> bool:
        """Remove one expired manifest (retention only ever calls this)."""
        self._cache.pop(snapshot_id, None)
        try:
            (self._dir / snapshot_name(snapshot_id)).unlink()
        except OSError:
            return False
        return True


class Refs:
    """Named snapshot pointers (tags), persisted in ``refs.json``."""

    def __init__(self, root: Path) -> None:
        self._path = root / REFS_FILE

    def tags(self) -> "dict[str, int]":
        try:
            payload = read_json(self._path)
        except (FileNotFoundError, StoreError):
            return {}
        tags = payload.get("tags", {}) if isinstance(payload, dict) else {}
        return {str(name): int(ref) for name, ref in tags.items()}

    def set_tag(self, name: str, snapshot_id: int) -> None:
        if not name or "/" in name or name.strip() != name:
            raise StoreError(f"invalid tag name {name!r}")
        tags = self.tags()
        tags[name] = snapshot_id
        self._write(tags)

    def delete_tag(self, name: str) -> bool:
        tags = self.tags()
        if name not in tags:
            return False
        del tags[name]
        self._write(tags)
        return True

    def _write(self, tags: "dict[str, int]") -> None:
        write_pointer(
            self._path, {"store_version": STORE_VERSION, "tags": tags}
        )


def live_partitions(
    log: SnapshotLog, snapshot_ids: "Iterable[int]"
) -> "set[str]":
    """Every partition path reachable from any of ``snapshot_ids``."""
    reachable: "set[str]" = set()
    for snapshot_id in snapshot_ids:
        try:
            reachable.update(e.path for e in log.partitions_at(snapshot_id))
        except StoreError:
            continue
    return reachable
