"""The stencil family: Jacobi, EQWP, Diffusion, HIT.

All four applications in the suite with a *peer-to-peer* communication
pattern are domain-decomposed grid solvers: each GPU owns a contiguous slab
of the domain, updates it every time step, and exchanges boundary halos
with its slab neighbours. They differ in dimensionality, halo depth,
arithmetic intensity, temporal locality of the write stream, and phases per
time step — the parameters of :class:`StencilWorkload`.

The halo structure is what produces the paper's Jacobi subscription result
(Figure 9: most shared pages have exactly 2 subscribers) and the stencil
write streams with temporal revisits are what produce the EQWP / Diffusion
/ HIT write-queue hit-rate curves of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec
from ..units import MiB
from .base import Workload, WorkloadInfo, scaled_size, setup_phase, shard_bounds


@dataclass(frozen=True)
class StencilParams:
    """Shape parameters for one stencil application."""

    #: Total bytes of one field array at scale 1.0.
    field_bytes: int
    #: Bytes exchanged per shard boundary per step (halo planes).
    halo_bytes: int
    #: Temporal-revisit probability of the write stream (0 = pure streaming).
    write_revisit_prob: float
    #: Distinct-line window revisits fall into.
    write_revisit_window: int
    #: Read sweeps per kernel (L2 temporal reuse).
    read_repeat: int
    #: Sub-steps (phases) per time step.
    phases_per_step: int
    #: Short-range temporal locality of the read stream: stencil neighbour
    #: rows re-read within a small window. Gives the L2 a graded (not
    #: all-or-nothing) hit rate when the footprint exceeds capacity.
    read_revisit_prob: float = 0.0
    read_revisit_window: int = 1500


class StencilWorkload(Workload):
    """Generic slab-decomposed, halo-exchanging, double-buffered stencil."""

    def __init__(
        self,
        info: WorkloadInfo,
        params: StencilParams,
        arithmetic_intensity: float,
        remote_mlp: int = 96,
        seed: int = 0,
    ) -> None:
        self.info = info
        self.params = params
        self.arithmetic_intensity = arithmetic_intensity
        self.remote_mlp = remote_mlp
        self.seed = seed

    def _write_pattern(self) -> PatternSpec:
        p = self.params
        if p.write_revisit_prob <= 0.0:
            return PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128, seed=self.seed)
        return PatternSpec(
            PatternKind.REUSE,
            revisit_prob=p.write_revisit_prob,
            revisit_window=p.write_revisit_window,
            bytes_per_txn=128,
            seed=self.seed,
        )

    def build(self, num_gpus: int, scale: float = 1.0, iterations: int = 5) -> TraceProgram:
        p = self.params
        field = scaled_size(p.field_bytes, scale)
        halo = min(p.halo_bytes, field // max(2, num_gpus))
        buffers = (
            BufferSpec("field_a", field),
            BufferSpec("field_b", field),
        )
        if p.read_revisit_prob > 0.0:
            read_pat = PatternSpec(
                PatternKind.REUSE,
                revisit_prob=p.read_revisit_prob,
                revisit_window=p.read_revisit_window,
                bytes_per_txn=128,
                seed=self.seed,
            )
        else:
            read_pat = PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128, seed=self.seed)
        write_pat = self._write_pattern()

        phases = [setup_phase([("field_a", field), ("field_b", field)], num_gpus, self.seed)]
        names = ["field_a", "field_b"]
        # One iteration covers a full ping-pong period (an even number of
        # sub-steps), mirroring Listing 1 where the profiled iteration
        # launches the kernel in both directions. Profiling over a full
        # period observes every page's steady-state access set.
        period = p.phases_per_step if p.phases_per_step % 2 == 0 else p.phases_per_step * 2
        for it in range(iterations):
            for sub in range(period):
                # Ping-pong: read src, write dst, swap every sub-step.
                src = names[sub % 2]
                dst = names[(sub + 1) % 2]
                kernels = []
                for gpu in range(num_gpus):
                    start, end = shard_bounds(field, num_gpus, gpu)
                    accesses = [
                        AccessRange(
                            src, start, end - start, MemOp.READ, read_pat,
                            repeat=p.read_repeat,
                        ),
                        AccessRange(dst, start, end - start, MemOp.WRITE, write_pat),
                    ]
                    # Halo reads from slab neighbours (boundary planes of
                    # the source field owned by the adjacent GPU).
                    if gpu > 0:
                        accesses.append(
                            AccessRange(src, start - halo, halo, MemOp.READ, read_pat)
                        )
                    if gpu < num_gpus - 1:
                        accesses.append(AccessRange(src, end, halo, MemOp.READ, read_pat))
                    payload = sum(a.total_bytes() for a in accesses)
                    kernels.append(
                        KernelSpec(
                            name=f"step{sub}",
                            gpu=gpu,
                            compute_ops=self.compute_ops(payload),
                            accesses=tuple(accesses),
                            launch_overhead=3e-6,
                        )
                    )
                phases.append(Phase(f"it{it}/step{sub}", tuple(kernels), iteration=it))
        return TraceProgram(
            name=self.info.name,
            num_gpus=num_gpus,
            buffers=buffers,
            phases=tuple(phases),
            metadata=self._common_metadata(scale),
        )


def make_jacobi() -> StencilWorkload:
    """Jacobi: 2D 5-point iterative solver; thin halos, streaming writes.

    Sequential writes mean the SM coalescer captures all spatial locality
    and the GPS write queue sees a 0% hit rate (Figure 14's explanation).
    """
    return StencilWorkload(
        WorkloadInfo(
            "jacobi",
            "Iterative solver for diagonally dominant linear systems",
            "Peer-to-peer",
        ),
        StencilParams(
            field_bytes=32 * MiB,
            halo_bytes=768 * 1024,
            write_revisit_prob=0.0,
            write_revisit_window=1,
            read_repeat=1,
            phases_per_step=1,
        ),
        arithmetic_intensity=20.0,
        seed=11,
    )


def make_eqwp() -> StencilWorkload:
    """B2R EQWP: 3D 4th-order finite-difference earthquake wave propagation.

    Deep halos (4th order), heavy per-point arithmetic, and a working set a
    few times the L2: scaling to 4 GPUs shrinks the per-GPU footprint into
    cache, reproducing the paper's super-linear (>4x) EQWP speedup via the
    L2 hit-rate jump (section 7.1: 55% -> 68%).
    """
    return StencilWorkload(
        WorkloadInfo(
            "eqwp",
            "3D earthquake wave-propagation, 4th-order finite difference",
            "Peer-to-peer",
        ),
        StencilParams(
            field_bytes=18 * MiB,
            halo_bytes=512 * 1024,
            write_revisit_prob=0.32,
            write_revisit_window=200,
            read_repeat=3,
            phases_per_step=1,
            read_revisit_prob=0.50,
            read_revisit_window=2000,
        ),
        arithmetic_intensity=2.5,
        seed=23,
    )


def make_diffusion() -> StencilWorkload:
    """Diffusion: 3D heat / inviscid Burgers equations; plane-sized halos."""
    return StencilWorkload(
        WorkloadInfo(
            "diffusion",
            "Multi-GPU 3D heat equation and inviscid Burgers' equation",
            "Peer-to-peer",
        ),
        StencilParams(
            field_bytes=28 * MiB,
            halo_bytes=448 * 1024,
            write_revisit_prob=0.25,
            write_revisit_window=420,
            read_repeat=1,
            phases_per_step=1,
            read_revisit_prob=0.35,
            read_revisit_window=1500,
        ),
        arithmetic_intensity=16.0,
        seed=37,
    )


def make_hit() -> StencilWorkload:
    """HIT: homogeneous isotropic turbulence (3D Navier-Stokes).

    Multiple sub-step kernels per time step and strong temporal locality in
    the write stream (highest write-queue hit rate in Figure 14).
    """
    return StencilWorkload(
        WorkloadInfo(
            "hit",
            "Homogeneous isotropic turbulence via 3D Navier-Stokes",
            "Peer-to-peer",
        ),
        StencilParams(
            field_bytes=26 * MiB,
            halo_bytes=576 * 1024,
            write_revisit_prob=0.55,
            write_revisit_window=120,
            read_repeat=1,
            phases_per_step=3,
            read_revisit_prob=0.50,
            read_revisit_window=1000,
        ),
        arithmetic_intensity=18.0,
        seed=41,
    )
