"""Graph workloads: Pagerank and SSSP.

Both are vertex-partitioned push-style graph algorithms: each GPU sweeps
its edge slice and scatters *atomic* updates to destination vertices. The
atomics are the defining trace feature — the GPS remote write queue does
not coalesce them, giving these applications their 0% write-queue hit rate
(paper section 7.4), and their scattered partial-line payloads are the
bandwidth-waste case GPS's Figure 10 traffic accounting exposes.

Edge locality is modelled with community structure: most updates land in
the GPU's own partition, a band lands in the adjacent partitions, and a
tail hits a small *hub region* (high-degree vertices) that every GPU
updates — yielding the mixed 2/3/4-subscriber page distribution of
Figure 9.

Each iteration is one fused kernel per GPU (gather + scatter + apply), as
in the push-style CUDA implementations: the heavy communication (atomic
scatter, rank refresh) is produced *during* the long edge sweep, which is
exactly the overlap opportunity GPS exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec
from ..units import KiB, MiB
from .base import Workload, WorkloadInfo, scaled_size, setup_phase, shard_bounds


@dataclass(frozen=True)
class GraphParams:
    """Shape parameters for one graph application."""

    #: Bytes of one per-vertex value array at scale 1.0.
    vertex_bytes: int
    #: Bytes of the edge list at scale 1.0 (partitioned, effectively private).
    edge_bytes: int
    #: Bytes of the hub region (high-degree vertices everyone updates).
    hub_bytes: int
    #: Fraction of destination vertices in the own partition hit per sweep.
    own_touch: float
    #: Fraction of each adjacent partition hit per sweep.
    neighbor_touch: float
    #: Fraction of the hub region hit per sweep.
    hub_touch: float
    #: Payload bytes per atomic update (partial cache lines).
    atomic_bytes: int
    #: Payload bytes per gather read.
    gather_bytes: int


class GraphWorkload(Workload):
    """Generic push-style vertex-partitioned graph algorithm."""

    def __init__(
        self,
        info: WorkloadInfo,
        params: GraphParams,
        arithmetic_intensity: float,
        remote_mlp: int,
        seed: int,
    ) -> None:
        self.info = info
        self.params = params
        self.arithmetic_intensity = arithmetic_intensity
        self.remote_mlp = remote_mlp
        self.seed = seed

    def _scatter_accesses(self, gpu: int, num_gpus: int, vertex: int) -> list:
        """Atomic scatter into ``updates``: own + neighbours + hub tail."""
        p = self.params

        def atomic(start: int, length: int, touch: float, salt: int) -> AccessRange:
            return AccessRange(
                "updates",
                start,
                length,
                MemOp.ATOMIC,
                PatternSpec(
                    PatternKind.RANDOM,
                    touch_fraction=touch,
                    bytes_per_txn=p.atomic_bytes,
                    seed=self.seed + salt,
                ),
            )

        own = shard_bounds(vertex, num_gpus, gpu)
        out = [atomic(own[0], own[1] - own[0], p.own_touch, 1 + gpu)]
        if num_gpus > 1:
            left = shard_bounds(vertex, num_gpus, (gpu - 1) % num_gpus)
            out.append(atomic(left[0], left[1] - left[0], p.neighbor_touch, 101 + gpu))
            right = shard_bounds(vertex, num_gpus, (gpu + 1) % num_gpus)
            if right != left:
                out.append(atomic(right[0], right[1] - right[0], p.neighbor_touch, 201 + gpu))
            if p.hub_touch > 0:
                hub = min(p.hub_bytes, vertex)
                out.append(atomic(0, hub, p.hub_touch, 301 + gpu))
        return out

    def build(self, num_gpus: int, scale: float = 1.0, iterations: int = 5) -> TraceProgram:
        p = self.params
        vertex = scaled_size(p.vertex_bytes, scale)
        edges = scaled_size(p.edge_bytes, scale)
        buffers = (
            BufferSpec("values", vertex),
            BufferSpec("updates", vertex),
            BufferSpec("edges", edges),
        )
        seq = PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128, seed=self.seed)
        gather = PatternSpec(
            PatternKind.RANDOM, bytes_per_txn=p.gather_bytes, seed=self.seed + 7
        )

        phases = [
            setup_phase(
                [("values", vertex), ("updates", vertex), ("edges", edges)],
                num_gpus,
                self.seed,
            )
        ]
        for it in range(iterations):
            # One fused kernel per GPU: sweep the edge slice, gather source
            # values, push atomic updates, fold last iteration's updates
            # into the owned values shard, reset owned updates.
            kernels = []
            for gpu in range(num_gpus):
                e_start, e_end = shard_bounds(edges, num_gpus, gpu)
                v_start, v_end = shard_bounds(vertex, num_gpus, gpu)
                accesses = [
                    AccessRange("edges", e_start, e_end - e_start, MemOp.READ, seq),
                    AccessRange("values", 0, vertex, MemOp.READ, gather),
                    AccessRange("updates", v_start, v_end - v_start, MemOp.READ, seq),
                    AccessRange("values", v_start, v_end - v_start, MemOp.WRITE, seq),
                    AccessRange("updates", v_start, v_end - v_start, MemOp.WRITE, seq),
                ]
                accesses.extend(self._scatter_accesses(gpu, num_gpus, vertex))
                # Compute scales with the partitioned edge sweep — the part
                # of the work that strong-scales.
                edge_payload = e_end - e_start
                kernels.append(
                    KernelSpec(
                        name="sweep",
                        gpu=gpu,
                        compute_ops=self.compute_ops(edge_payload),
                        accesses=tuple(accesses),
                        launch_overhead=3e-6,
                    )
                )
            phases.append(Phase(f"it{it}/sweep", tuple(kernels), iteration=it))
        return TraceProgram(
            name=self.info.name,
            num_gpus=num_gpus,
            buffers=buffers,
            phases=tuple(phases),
            metadata=self._common_metadata(scale),
        )


def make_pagerank() -> GraphWorkload:
    """Pagerank: rank propagation with community-local edge structure."""
    return GraphWorkload(
        WorkloadInfo(
            "pagerank",
            "Google's web-page ranking algorithm",
            "Peer-to-Peer",
        ),
        GraphParams(
            vertex_bytes=4 * MiB,
            edge_bytes=48 * MiB,
            hub_bytes=512 * KiB,
            own_touch=0.55,
            neighbor_touch=0.22,
            hub_touch=0.6,
            atomic_bytes=16,
            gather_bytes=32,
        ),
        arithmetic_intensity=20.0,
        remote_mlp=256,
        seed=53,
    )


def make_sssp() -> GraphWorkload:
    """SSSP: relaxation sweeps; sparser updates, dependent access chains.

    The low ``remote_mlp`` captures the dependency structure of path
    relaxation — remote demand loads stall, making RDL's latency exposure
    the dominant cost (Table 2 classifies SSSP as many-to-many).
    """
    return GraphWorkload(
        WorkloadInfo(
            "sssp",
            "Shortest paths between vertex pairs of a graph",
            "Many-to-many",
        ),
        GraphParams(
            vertex_bytes=4 * MiB,
            edge_bytes=40 * MiB,
            hub_bytes=1 * MiB,
            own_touch=0.40,
            neighbor_touch=0.18,
            hub_touch=0.5,
            atomic_bytes=12,
            gather_bytes=24,
        ),
        arithmetic_intensity=16.0,
        remote_mlp=160,
        seed=59,
    )
