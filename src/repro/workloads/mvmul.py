"""The paper's Listing 1 sample application: iterative matrix-vector multiply.

Listing 1 allocates a matrix and two vectors with ``cudaMallocGPS``, starts
tracking on iteration 0, and alternates ``mvmul(mat, vec1, vec2)`` /
``mvmul(mat, vec2, vec1)`` across all GPUs. Each GPU owns a row slab of the
matrix and produces the matching slice of the output vector while reading
the *entire* input vector — so the vectors are all-to-all shared (small)
while the matrix pages are single-GPU and get demoted to conventional pages
at ``tracking_stop``.

Not part of the Table 2 evaluation suite; exposed for the Listing 1 example
and the runtime-behaviour tests.
"""

from __future__ import annotations

from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec
from ..units import KiB, MiB
from .base import Workload, WorkloadInfo, scaled_size, setup_phase, shard_bounds


class MvMulWorkload(Workload):
    """Iterative dense mat-vec, double-buffered vectors (paper Listing 1)."""

    info = WorkloadInfo(
        "mvmul",
        "Listing 1: iterative matrix-vector multiplication",
        "All-to-all (vectors only)",
    )
    arithmetic_intensity = 2.0  # one FMA per matrix element loaded
    remote_mlp = 1024

    def __init__(self, matrix_bytes: int = 32 * MiB, vector_bytes: int = 256 * KiB) -> None:
        self.matrix_bytes = matrix_bytes
        self.vector_bytes = vector_bytes

    def build(self, num_gpus: int, scale: float = 1.0, iterations: int = 5) -> TraceProgram:
        matrix = scaled_size(self.matrix_bytes, scale)
        vector = scaled_size(self.vector_bytes, max(scale, 0.25))
        buffers = (
            BufferSpec("mat", matrix),
            BufferSpec("vec1", vector),
            BufferSpec("vec2", vector),
        )
        seq = PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128)
        phases = [
            setup_phase(
                [("mat", matrix), ("vec1", vector), ("vec2", vector)], num_gpus
            )
        ]
        names = ("vec1", "vec2")
        for it in range(iterations):
            # Listing 1 launches mvmul twice per iteration: vec1 -> vec2,
            # then vec2 -> vec1.
            for sub in range(2):
                invec, outvec = names[sub % 2], names[(sub + 1) % 2]
                kernels = []
                for gpu in range(num_gpus):
                    m_start, m_end = shard_bounds(matrix, num_gpus, gpu)
                    v_start, v_end = shard_bounds(vector, num_gpus, gpu)
                    accesses = (
                        AccessRange("mat", m_start, m_end - m_start, MemOp.READ, seq),
                        AccessRange(invec, 0, vector, MemOp.READ, seq),
                        AccessRange(outvec, v_start, v_end - v_start, MemOp.WRITE, seq),
                    )
                    kernels.append(
                        KernelSpec(
                            name="mvmul",
                            gpu=gpu,
                            compute_ops=self.compute_ops(m_end - m_start),
                            accesses=accesses,
                            launch_overhead=3e-6,
                        )
                    )
                phases.append(Phase(f"it{it}/mvmul{sub}", tuple(kernels), iteration=it))
        return TraceProgram(
            name=self.info.name,
            num_gpus=num_gpus,
            buffers=buffers,
            phases=tuple(phases),
            metadata=self._common_metadata(scale),
        )


def make_mvmul() -> MvMulWorkload:
    """The Listing 1 configuration."""
    return MvMulWorkload()
