"""Workload trace generators for the paper's application suite (Table 2).

Each workload synthesises a :class:`~repro.trace.program.TraceProgram` with
the buffer data-flow, sharing pattern, spatial/temporal locality, and
atomics mix of the corresponding CUDA application. These are the trace
substitutes for the paper's NVBit captures — see DESIGN.md section 5 for
the substitution argument.
"""

from .base import Workload, WorkloadInfo
from .registry import WORKLOADS, get_workload, workload_names

__all__ = ["Workload", "WorkloadInfo", "WORKLOADS", "get_workload", "workload_names"]
