"""ALS: alternating least squares matrix factorization.

The all-to-all application (Table 2): updating the user factors requires
reading the *entire* item factor matrix and vice versa, so every factor
page is consumed by every GPU and subscription tracking cannot trim
anything (Figures 9 and 11: ALS shared pages are ~all 4-subscriber, and GPS
with/without subscription coincide).

Two more trace features reproduce the paper's ALS results:

* factor updates are *atomics* (per-entry accumulation across rating
  blocks), so the write queue never coalesces them — 0% hit rate in
  Figure 14;
* the gather of the opposite factor matrix has no temporal locality
  (``repeat=2`` sweeps of a random stream), so RDL refetches the same
  cachelines over the interconnect and is the one paradigm that moves
  *more* data than memcpy in Figure 10.
"""

from __future__ import annotations

from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec, stable_seed
from ..units import MiB
from .base import Workload, WorkloadInfo, scaled_size, setup_phase, shard_bounds


class ALSWorkload(Workload):
    """Alternating updates of user/item factor matrices."""

    info = WorkloadInfo(
        "als",
        "Matrix factorization by alternating least squares",
        "All-to-all",
    )
    arithmetic_intensity = 34.0
    remote_mlp = 512

    def __init__(
        self,
        user_bytes: int = 12 * MiB,
        item_bytes: int = 12 * MiB,
        ratings_bytes: int = 36 * MiB,
        gather_repeat: int = 2,
        seed: int = 67,
    ) -> None:
        self.user_bytes = user_bytes
        self.item_bytes = item_bytes
        self.ratings_bytes = ratings_bytes
        self.gather_repeat = gather_repeat
        self.seed = seed

    def _half_step(
        self,
        it: int,
        label: str,
        num_gpus: int,
        update_buf: str,
        update_size: int,
        gather_buf: str,
        gather_size: int,
        ratings: int,
    ) -> Phase:
        seq = PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128, seed=self.seed)
        gather = PatternSpec(
            PatternKind.RANDOM, bytes_per_txn=64,
            seed=self.seed + it + stable_seed(label) % 97
        )
        atomic_update = PatternSpec(
            PatternKind.RANDOM, touch_fraction=1.0, bytes_per_txn=128, seed=self.seed + 3
        )
        kernels = []
        for gpu in range(num_gpus):
            u_start, u_end = shard_bounds(update_size, num_gpus, gpu)
            r_start, r_end = shard_bounds(ratings, num_gpus, gpu)
            accesses = (
                AccessRange("ratings", r_start, r_end - r_start, MemOp.READ, seq),
                AccessRange(
                    gather_buf, 0, gather_size, MemOp.READ, gather,
                    repeat=self.gather_repeat,
                ),
                AccessRange(update_buf, u_start, u_end - u_start, MemOp.ATOMIC, atomic_update),
            )
            # Compute scales with the partitioned ratings sweep (the
            # per-GPU solve work), not with the unpartitioned gather.
            kernels.append(
                KernelSpec(
                    name=label,
                    gpu=gpu,
                    compute_ops=self.compute_ops(r_end - r_start),
                    accesses=accesses,
                    launch_overhead=3e-6,
                )
            )
        return Phase(f"it{it}/{label}", tuple(kernels), iteration=it)

    def build(self, num_gpus: int, scale: float = 1.0, iterations: int = 5) -> TraceProgram:
        users = scaled_size(self.user_bytes, scale)
        items = scaled_size(self.item_bytes, scale)
        ratings = scaled_size(self.ratings_bytes, scale)
        buffers = (
            BufferSpec("users", users),
            BufferSpec("items", items),
            BufferSpec("ratings", ratings),
        )
        phases = [
            setup_phase(
                [("users", users), ("items", items), ("ratings", ratings)],
                num_gpus,
                self.seed,
            )
        ]
        for it in range(iterations):
            phases.append(
                self._half_step(it, "update_users", num_gpus, "users", users, "items", items, ratings)
            )
            phases.append(
                self._half_step(it, "update_items", num_gpus, "items", items, "users", users, ratings)
            )
        return TraceProgram(
            name=self.info.name,
            num_gpus=num_gpus,
            buffers=buffers,
            phases=tuple(phases),
            metadata=self._common_metadata(scale),
        )


def make_als() -> ALSWorkload:
    """The evaluation's ALS configuration."""
    return ALSWorkload()
