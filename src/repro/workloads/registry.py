"""Workload registry: the Table 2 application suite by name."""

from __future__ import annotations

from ..errors import TraceError
from .als import make_als
from .base import Workload
from .ct import make_ct
from .graph import make_pagerank, make_sssp
from .mvmul import make_mvmul
from .stencil import make_diffusion, make_eqwp, make_hit, make_jacobi

#: Table 2 order.
WORKLOADS: dict = {
    "jacobi": make_jacobi(),
    "pagerank": make_pagerank(),
    "sssp": make_sssp(),
    "als": make_als(),
    "ct": make_ct(),
    "eqwp": make_eqwp(),
    "diffusion": make_diffusion(),
    "hit": make_hit(),
}

#: Additional workloads outside the Table 2 evaluation suite.
EXTRA_WORKLOADS: dict = {
    "mvmul": make_mvmul(),
}

#: Convenience aliases accepted anywhere a workload name is (``stencil``
#: runs the 5-point stencil workload, registered as ``jacobi``). Shared by
#: the CLI and the service API.
WORKLOAD_ALIASES: dict = {"stencil": "jacobi"}


def workload_names() -> list:
    """The Table 2 evaluation suite, in table order."""
    return list(WORKLOADS)


def resolve_workload_name(name: str) -> str:
    """Map aliases (``stencil``) onto registered workload names."""
    return WORKLOAD_ALIASES.get(name, name)


def get_workload(name: str) -> Workload:
    """Fetch a workload by name or alias.

    Resolves the Table 2 suite, the extras, and the dynamic ``fuzz/<seed>``
    family (deterministic fuzzer-generated programs; see
    :mod:`repro.verify.fuzzer`). Fuzz names reconstruct the same workload in
    any process — which is what lets the differential harness push fuzzed
    programs through the process pool and the service by name.
    """
    name = resolve_workload_name(name)
    if name in WORKLOADS:
        return WORKLOADS[name]
    if name in EXTRA_WORKLOADS:
        return EXTRA_WORKLOADS[name]
    if name.startswith("fuzz/"):
        from ..verify.fuzzer import FuzzWorkload  # local: avoids a cycle

        return FuzzWorkload.from_name(name)
    available = workload_names() + list(EXTRA_WORKLOADS) + ["fuzz/<seed>"]
    raise TraceError(f"unknown workload {name!r}; available: {available}")


def is_known_workload(name: str) -> bool:
    """Whether :func:`get_workload` would resolve ``name``."""
    try:
        get_workload(name)
    except TraceError:
        return False
    return True
