"""CT: model-based iterative reconstruction.

Alternates forward projection (read the whole image volume, accumulate
into the local sinogram partition) and back projection (read the whole
sinogram, update the local image slab). Every page of both arrays is read
by every GPU — the second all-to-all application (Table 2).

CT is the application where *memcpy* shines in the paper's Figure 8:
projections are arithmetic-heavy (high intensity), writes are dense over
the whole written extent, and all consumers genuinely need all the data —
exactly the regime bulk broadcast was built for. GPS still wins by
overlapping the same transfers with compute.

The write streams carry strong medium-range temporal revisits (rays hit
neighbouring detector bins repeatedly), giving CT its Figure 14 write-queue
hit-rate curve.
"""

from __future__ import annotations

from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec
from ..units import MiB
from .base import Workload, WorkloadInfo, scaled_size, setup_phase, shard_bounds


class CTWorkload(Workload):
    """Model-based iterative CT reconstruction."""

    info = WorkloadInfo(
        "ct",
        "Model-based iterative reconstruction for CT imaging",
        "All-to-all",
    )
    arithmetic_intensity = 150.0
    remote_mlp = 512

    def __init__(
        self,
        image_bytes: int = 20 * MiB,
        sino_bytes: int = 14 * MiB,
        write_revisit_prob: float = 0.45,
        write_revisit_window: int = 350,
        seed: int = 71,
    ) -> None:
        self.image_bytes = image_bytes
        self.sino_bytes = sino_bytes
        self.write_revisit_prob = write_revisit_prob
        self.write_revisit_window = write_revisit_window
        self.seed = seed

    def _projection_phase(
        self,
        it: int,
        label: str,
        num_gpus: int,
        read_buf: str,
        read_size: int,
        write_buf: str,
        write_size: int,
    ) -> Phase:
        read_pat = PatternSpec(
            PatternKind.REUSE,
            revisit_prob=0.35,
            revisit_window=1200,
            bytes_per_txn=128,
            seed=self.seed + it,
        )
        write_pat = PatternSpec(
            PatternKind.REUSE,
            revisit_prob=self.write_revisit_prob,
            revisit_window=self.write_revisit_window,
            bytes_per_txn=128,
            seed=self.seed + 13,
        )
        kernels = []
        for gpu in range(num_gpus):
            w_start, w_end = shard_bounds(write_size, num_gpus, gpu)
            accesses = (
                AccessRange(read_buf, 0, read_size, MemOp.READ, read_pat),
                AccessRange(write_buf, w_start, w_end - w_start, MemOp.WRITE, write_pat),
            )
            # Ray work scales with the GPU's projection shard (the
            # partitioned dimension), not with the shared volume it reads.
            kernels.append(
                KernelSpec(
                    name=label,
                    gpu=gpu,
                    compute_ops=self.compute_ops(w_end - w_start),
                    accesses=accesses,
                    launch_overhead=3e-6,
                )
            )
        return Phase(f"it{it}/{label}", tuple(kernels), iteration=it)

    def build(self, num_gpus: int, scale: float = 1.0, iterations: int = 5) -> TraceProgram:
        image = scaled_size(self.image_bytes, scale)
        sino = scaled_size(self.sino_bytes, scale)
        buffers = (
            BufferSpec("image", image),
            BufferSpec("sino", sino),
        )
        phases = [setup_phase([("image", image), ("sino", sino)], num_gpus, self.seed)]
        for it in range(iterations):
            phases.append(
                self._projection_phase(it, "forward", num_gpus, "image", image, "sino", sino)
            )
            phases.append(
                self._projection_phase(it, "backward", num_gpus, "sino", sino, "image", image)
            )
        return TraceProgram(
            name=self.info.name,
            num_gpus=num_gpus,
            buffers=buffers,
            phases=tuple(phases),
            metadata=self._common_metadata(scale),
        )


def make_ct() -> CTWorkload:
    """The evaluation's CT configuration."""
    return CTWorkload()
