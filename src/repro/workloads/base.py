"""Workload base class and shared partitioning helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..config import PAGE_64K
from ..errors import TraceError
from ..trace.program import TraceProgram


@dataclass(frozen=True)
class WorkloadInfo:
    """Table 2 row: name, description, predominant communication pattern."""

    name: str
    description: str
    comm_pattern: str


class Workload(ABC):
    """A synthetic trace generator for one application.

    ``build(num_gpus, scale, iterations)`` produces a strong-scaling trace:
    the *total* problem size is fixed by ``scale`` and partitioned across
    ``num_gpus`` — more GPUs means less work per GPU, the regime the paper
    evaluates.
    """

    info: WorkloadInfo

    #: Arithmetic intensity: compute ops per byte of local payload. The
    #: calibration knob standing in for each real application's FLOP mix.
    arithmetic_intensity: float = 4.0

    #: Remote memory-level parallelism under demand loads (RDL); dependent
    #: access chains (graph traversals) get low values.
    remote_mlp: int = 1024

    @abstractmethod
    def build(self, num_gpus: int, scale: float = 1.0, iterations: int = 5) -> TraceProgram:
        """Generate the trace program for one system size."""

    @property
    def name(self) -> str:
        """Workload short name."""
        return self.info.name

    def compute_ops(self, payload_bytes: int) -> float:
        """Ops for a kernel that moves ``payload_bytes`` locally."""
        return self.arithmetic_intensity * payload_bytes

    def _common_metadata(self, scale: float) -> dict:
        return {
            "workload": self.info.name,
            "comm_pattern": self.info.comm_pattern,
            "remote_mlp": self.remote_mlp,
            "scale": scale,
        }


def setup_phase(
    buffers: "list[tuple[str, int]]",
    num_gpus: int,
    seed: int = 0,
) -> "Phase":
    """An initialisation phase: each GPU writes its shard of every buffer.

    Real applications initialise their data (memset, input load, RNG fill)
    before iterating; modelling it matters because it establishes first
    touch (UM page placement) and last-writer state (RDL read routing) the
    way the original codes do. Tagged ``iteration=-1`` so GPS profiling
    (iteration 0) does not include it.
    """
    from ..trace.program import KernelSpec, Phase
    from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec

    pattern = PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128, seed=seed)
    kernels = []
    for gpu in range(num_gpus):
        accesses = []
        for name, size in buffers:
            start, end = shard_bounds(size, num_gpus, gpu)
            accesses.append(AccessRange(name, start, end - start, MemOp.WRITE, pattern))
        payload = sum(a.total_bytes() for a in accesses)
        kernels.append(
            KernelSpec(
                name="init",
                gpu=gpu,
                compute_ops=0.5 * payload,
                accesses=tuple(accesses),
                launch_overhead=3e-6,
            )
        )
    return Phase("setup/init", tuple(kernels), iteration=-1)


def scaled_size(base_bytes: int, scale: float, granule: int = PAGE_64K) -> int:
    """Scale a buffer size, rounding up to ``granule`` (>= one granule)."""
    if scale <= 0:
        raise TraceError(f"scale must be positive, got {scale}")
    size = int(base_bytes * scale)
    return max(granule, -(-size // granule) * granule)


def shard_bounds(total: int, parts: int, index: int, granule: int = 128) -> tuple:
    """Byte range [start, end) of shard ``index`` of ``parts``.

    Boundaries are aligned down to ``granule`` (cache lines) so access
    ranges stay line-aligned; the final shard absorbs the remainder.
    """
    if not 0 <= index < parts:
        raise TraceError(f"shard {index} out of range for {parts} parts")
    per = total // parts
    start = (per * index) // granule * granule
    end = total if index == parts - 1 else (per * (index + 1)) // granule * granule
    return start, end
