"""Barrier-aware vector-clock happens-before engine.

The old race rules treated every pair of same-phase accesses on different
GPUs as concurrent. That over-approximates: the paper's memory model gives
sys-scoped accesses release/acquire semantics (§2.3, §5.3) — a sys-scoped
store to a sync flag drains the write queue, and a sys-scoped load that
observes it orders everything before the store ahead of everything after
the load. Programs that hand off a buffer mid-phase through a flag
handshake are therefore race-free, and this engine proves it.

The model:

* **Barriers.** Phases retire in order; every access of phase *i* happens
  before every access of phase *i+1*. Cross-phase queries never consult
  clocks.
* **Program order.** Within one phase each GPU runs exactly one kernel
  (enforced by :class:`repro.trace.program.Phase`), and that kernel's
  access tuple is its program order.
* **Sync edges.** Within a phase, a sys-scoped store to a sync buffer
  (release) is ordered before any overlapping sys-scoped load of the same
  buffer by another GPU (acquire). Atomic/atomic flag pairs get no edge:
  RMW accumulation on a shared flag is its own well-defined idiom and
  implies no handoff direction.

Per-phase vector clocks are computed by one topological pass; an access's
clock holds, per GPU, how many of that GPU's in-phase accesses are known
to happen before (or at) it. Two same-phase accesses are *ordered* iff the
later one's clock covers the earlier one's position.

A cyclic handshake (GPU 0 waits on a flag GPU 1 only raises after waiting
on GPU 0's flag) can never complete: the cycle is reported through
:attr:`HappensBefore.cycles` (rule GPS008) and its sync edges are dropped
so the remaining analysis stays conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.records import MemOp, Scope
from .dataflow import AccessSite, ProgramDataflow


@dataclass(frozen=True, slots=True)
class SyncCycle:
    """A cyclic intra-phase flag handshake — an unserviceable wait."""

    phase_index: int
    phase: str
    #: Participating access sites, in program order.
    sites: tuple[AccessSite, ...]

    def describe(self) -> str:
        """Human-readable cycle walk (``kernel@gpuN[buffer]`` hops)."""
        hops = " -> ".join(
            f"{s.kernel}@gpu{s.gpu}[{s.access.buffer}]" for s in self.sites
        )
        return f"{hops} -> (back to start)"


def _is_release(site: AccessSite) -> bool:
    return site.buffer.sync and site.access.scope is Scope.SYS and site.is_store


def _is_acquire(site: AccessSite) -> bool:
    return site.buffer.sync and site.access.scope is Scope.SYS and site.is_read


class HappensBefore:
    """Vector-clock happens-before relation over one program's sites."""

    def __init__(self, dataflow: ProgramDataflow) -> None:
        self.dataflow = dataflow
        #: site_index -> 1-based position within its (phase, gpu) kernel.
        self._pos: dict[int, int] = {}
        #: site_index -> {gpu: covered in-phase positions of that gpu}.
        self._clock: dict[int, dict[int, int]] = {}
        #: Cyclic handshakes found, in phase order.
        self.cycles: list[SyncCycle] = []
        #: Whether any usable (acyclic) sync edge exists anywhere.
        self.has_sync_edges = False

        by_phase: dict[int, list[AccessSite]] = {}
        for site in dataflow.sites:
            by_phase.setdefault(site.phase_index, []).append(site)
        for phase_index in sorted(by_phase):
            self._build_phase(phase_index, by_phase[phase_index])

    # -- construction ---------------------------------------------------------

    def _sync_edges(self, sites: list[AccessSite]) -> list[tuple[int, int]]:
        """Release->acquire edges as (site_index, site_index) pairs."""
        releases = [s for s in sites if _is_release(s)]
        acquires = [s for s in sites if _is_acquire(s)]
        edges: list[tuple[int, int]] = []
        for rel in releases:
            for acq in acquires:
                if rel.gpu == acq.gpu:
                    continue
                if rel.access.buffer != acq.access.buffer:
                    continue
                if (rel.access.op is MemOp.ATOMIC
                        and acq.access.op is MemOp.ATOMIC):
                    continue
                lo = max(rel.access.offset, acq.access.offset)
                hi = min(rel.access.end, acq.access.end)
                if lo < hi:
                    edges.append((rel.site_index, acq.site_index))
        return edges

    def _build_phase(self, phase_index: int, sites: list[AccessSite]) -> None:
        # Program-order positions: 1-based per (gpu) within the phase.
        counts: dict[int, int] = {}
        for site in sites:
            counts[site.gpu] = counts.get(site.gpu, 0) + 1
            self._pos[site.site_index] = counts[site.gpu]

        sync_edges = self._sync_edges(sites)
        if not sync_edges:
            # Fast path: clocks degenerate to program order; ordered() only
            # consults them through _covered(), which falls back to _pos.
            for site in sites:
                self._clock[site.site_index] = {site.gpu: self._pos[site.site_index]}
            return

        preds: dict[int, list[int]] = {s.site_index: [] for s in sites}
        succs: dict[int, list[int]] = {s.site_index: [] for s in sites}
        by_index = {s.site_index: s for s in sites}
        prev_on_gpu: dict[int, int] = {}
        for site in sites:
            before = prev_on_gpu.get(site.gpu)
            if before is not None:
                preds[site.site_index].append(before)
                succs[before].append(site.site_index)
            prev_on_gpu[site.gpu] = site.site_index
        for src, dst in sync_edges:
            preds[dst].append(src)
            succs[src].append(dst)

        cyclic = self._find_cycles(phase_index, sites, succs)
        if cyclic:
            # Drop sync edges inside a strongly connected component; program
            # order alone is acyclic, so what remains is a DAG.
            for src, dst in sync_edges:
                if src in cyclic and dst in cyclic \
                        and cyclic[src] == cyclic[dst]:
                    preds[dst].remove(src)
                    succs[src].remove(dst)

        self.has_sync_edges = True
        # Kahn topological pass, deterministic by site index.
        indegree = {idx: len(pred) for idx, pred in preds.items()}
        ready = sorted(idx for idx, deg in indegree.items() if deg == 0)
        order: list[int] = []
        while ready:
            idx = ready.pop(0)
            order.append(idx)
            fresh = []
            for nxt in succs[idx]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    fresh.append(nxt)
            if fresh:
                ready = sorted(ready + fresh)
        for idx in order:
            site = by_index[idx]
            clock: dict[int, int] = {}
            for pred in preds[idx]:
                for gpu, upto in self._clock[pred].items():
                    if clock.get(gpu, 0) < upto:
                        clock[gpu] = upto
            clock[site.gpu] = self._pos[idx]
            self._clock[idx] = clock

    def _find_cycles(
        self,
        phase_index: int,
        sites: list[AccessSite],
        succs: dict[int, list[int]],
    ) -> dict[int, int]:
        """Map site_index -> SCC id for members of non-trivial SCCs.

        Iterative Tarjan over the per-phase graph; records each non-trivial
        strongly connected component as a :class:`SyncCycle`.
        """
        index_of: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        counter = 0
        scc_of: dict[int, int] = {}
        scc_id = 0
        by_index = {s.site_index: s for s in sites}

        for root in sorted(succs):
            if root in index_of:
                continue
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, child = work[-1]
                if child == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                advanced = False
                children = succs[node]
                while child < len(children):
                    nxt = children[child]
                    child += 1
                    if nxt not in index_of:
                        work[-1] = (node, child)
                        work.append((nxt, 0))
                        advanced = True
                        break
                    if nxt in on_stack and low[node] > index_of[nxt]:
                        low[node] = index_of[nxt]
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low[parent] > low[node]:
                        low[parent] = low[node]
                if low[node] == index_of[node]:
                    component: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        for member in component:
                            scc_of[member] = scc_id
                        scc_id += 1
                        members = tuple(
                            by_index[i] for i in sorted(component)
                        )
                        self.cycles.append(
                            SyncCycle(phase_index, members[0].phase, members)
                        )
        self.cycles.sort(key=lambda c: (c.phase_index, c.sites[0].site_index))
        return scc_of

    # -- queries --------------------------------------------------------------

    def _covered(self, observer: int, gpu: int) -> int:
        """How many in-phase accesses of ``gpu`` happen before ``observer``."""
        return self._clock[observer].get(gpu, 0)

    def ordered(self, a: AccessSite, b: AccessSite) -> bool:
        """Whether ``a`` happens before ``b``."""
        if a.site_index == b.site_index:
            return False
        if a.phase_index != b.phase_index:
            return a.phase_index < b.phase_index
        if a.gpu == b.gpu:
            return self._pos[a.site_index] < self._pos[b.site_index]
        return self._covered(b.site_index, a.gpu) >= self._pos[a.site_index]

    def concurrent(self, a: AccessSite, b: AccessSite) -> bool:
        """Whether neither access is ordered before the other."""
        return (
            a.site_index != b.site_index
            and not self.ordered(a, b)
            and not self.ordered(b, a)
        )

    def missing_edge(self, a: AccessSite, b: AccessSite) -> str:
        """Describe the ordering edge whose absence makes ``a``/``b`` race."""
        first, second = (a, b) if a.site_index <= b.site_index else (b, a)
        return (
            f"no sys-scoped flag handshake orders "
            f"{first.kernel!r}@gpu{first.gpu} and "
            f"{second.kernel!r}@gpu{second.gpu} within phase "
            f"{first.phase!r}; the barrier only publishes at phase end"
        )
