"""Cross-phase happens-before dataflow over a trace program.

One forward walk over the phases (whose boundaries are global barriers and,
under the GPU memory model, sys-scoped release points — paper section 2.3)
computes every fact the conformance rules consume:

* per-access :class:`AccessSite` records with the byte intervals a read
  covers that *no* earlier phase ever wrote (``uninitialized``);
* per-phase, per-buffer groupings of store and read sites for the
  intra-phase race rules;
* page-granular access sets per (GPU, buffer) split into the GPS profile
  iteration (iteration 0, paper Listing 1) and the steady iterations after
  ``tracking_stop()`` — the input to the stale-read-hazard rule.

Everything is interval-indexed (:mod:`repro.analysis.intervals`): coverage
queries against the written-so-far sets are binary searches, not scans.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.program import BufferSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp
from .intervals import IntervalSet, page_round


@dataclass(frozen=True, slots=True)
class AccessSite:
    """One access range situated in program order, with dataflow facts."""

    phase_index: int
    phase: str
    iteration: int
    kernel: str
    gpu: int
    buffer: BufferSpec
    access: AccessRange
    #: For reads: sub-intervals no earlier phase (nor setup) ever wrote.
    uninitialized: tuple[tuple[int, int], ...] = ()
    #: Global program-order index (position in ``ProgramDataflow.sites``);
    #: the happens-before engine keys its clocks on it.
    site_index: int = -1
    #: Position of the access within its kernel's access tuple.
    access_index: int = -1

    @property
    def is_store(self) -> bool:
        """Whether the site dirties memory (WRITE or ATOMIC)."""
        return self.access.op.is_store

    @property
    def is_read(self) -> bool:
        """Whether the site observes memory (READ or ATOMIC, which is RMW)."""
        return self.access.op is not MemOp.WRITE

    @property
    def interval(self) -> tuple[int, int]:
        """Buffer-relative half-open byte range of the access."""
        return (self.access.offset, self.access.end)


@dataclass(slots=True)
class PhaseSites:
    """All sites of one phase, grouped by buffer for the race rules."""

    phase_index: int
    phase: Phase
    stores: dict[str, list[AccessSite]]
    reads: dict[str, list[AccessSite]]


class ProgramDataflow:
    """Precomputed dataflow facts for one program at one page granularity.

    ``page_size`` only affects the page-granular subscription facts; byte
    intervals are tracked exactly. Buffers are page-aligned by the VA layout
    (both :class:`repro.memory.address_space.AddressSpace` and
    :class:`repro.system.analysis.ProgramAnalysis` round sizes up to pages),
    so buffer-relative page rounding matches absolute page boundaries.
    """

    def __init__(self, program: TraceProgram, page_size: int) -> None:
        self.program = program
        self.page_size = page_size
        self.buffers: dict[str, BufferSpec] = {b.name: b for b in program.buffers}
        #: Buffers touched by more than one GPU anywhere in the program.
        self.shared_buffers: set[str] = {b.name for b in program.shared_buffers()}
        #: First non-negative iteration index = the GPS profile iteration.
        iterations = sorted({p.iteration for p in program.phases if p.iteration >= 0})
        self.profile_iteration: int | None = iterations[0] if iterations else None
        self.steady_iterations: bool = len(iterations) > 1

        self.sites: list[AccessSite] = []
        self.phase_sites: list[PhaseSites] = []
        #: (gpu, buffer) -> page-rounded intervals touched in the profile iteration.
        self.profile_touched: dict[tuple[int, str], IntervalSet] = {}
        #: (gpu, buffer) -> page-rounded intervals stored in any iteration >= 0.
        self.iter_stores: dict[tuple[int, str], IntervalSet] = {}
        #: Read sites in iterations after the profile iteration.
        self.steady_reads: list[AccessSite] = []
        #: buffer -> union of everything ever accessed (for unused-buffer).
        self.used_buffers: set[str] = set()

        written: dict[str, IntervalSet] = {name: IntervalSet() for name in self.buffers}
        for phase_index, phase in enumerate(program.phases):
            stores: dict[str, list[AccessSite]] = {}
            reads: dict[str, list[AccessSite]] = {}
            phase_written: list[AccessSite] = []
            for kernel in phase.kernels:
                for access_index, access in enumerate(kernel.accesses):
                    site = self._make_site(phase_index, phase, kernel.name, kernel.gpu,
                                           access, written,
                                           site_index=len(self.sites),
                                           access_index=access_index)
                    self.sites.append(site)
                    self.used_buffers.add(access.buffer)
                    if site.is_store:
                        stores.setdefault(access.buffer, []).append(site)
                        phase_written.append(site)
                    if site.is_read:
                        reads.setdefault(access.buffer, []).append(site)
                    self._record_iteration_facts(site)
            # The phase barrier publishes this phase's stores: they join the
            # happens-before frontier only after the whole phase retires.
            for site in phase_written:
                written[site.access.buffer].add(*site.interval)
            self.phase_sites.append(PhaseSites(phase_index, phase, stores, reads))

    def _make_site(
        self,
        phase_index: int,
        phase: Phase,
        kernel: str,
        gpu: int,
        access: AccessRange,
        written: dict[str, IntervalSet],
        *,
        site_index: int,
        access_index: int,
    ) -> AccessSite:
        uninitialized: tuple[tuple[int, int], ...] = ()
        if access.op is not MemOp.WRITE:
            gaps = written[access.buffer].uncovered(access.offset, access.end)
            uninitialized = tuple(gaps)
        return AccessSite(
            phase_index=phase_index,
            phase=phase.name,
            iteration=phase.iteration,
            kernel=kernel,
            gpu=gpu,
            buffer=self.buffers[access.buffer],
            access=access,
            uninitialized=uninitialized,
            site_index=site_index,
            access_index=access_index,
        )

    def _record_iteration_facts(self, site: AccessSite) -> None:
        if site.iteration < 0:
            return
        key = (site.gpu, site.access.buffer)
        start, end = page_round(*site.interval, self.page_size)
        if site.iteration == self.profile_iteration:
            self.profile_touched.setdefault(key, IntervalSet()).add(start, end)
        if site.is_store:
            self.iter_stores.setdefault(key, IntervalSet()).add(start, end)
        if site.is_read and self.profile_iteration is not None \
                and site.iteration > self.profile_iteration:
            self.steady_reads.append(site)

    def stored_by_others(self, gpu: int, buffer: str, start: int, end: int) -> bool:
        """Whether any *other* GPU stores into ``[start, end)`` of ``buffer``
        during the iterative region (page-rounded)."""
        for (other_gpu, name), stores in self.iter_stores.items():
            if name != buffer or other_gpu == gpu:
                continue
            if stores.overlaps(start, end):
                return True
        return False
