"""Analyzer entry points: run the rule registry over a program.

``analyze_program`` is the library call; ``check_program`` is the gate the
harness runs before every simulation (raising :class:`AnalysisError` on
error-severity findings). Rule selection mirrors familiar linter CLIs:
``select``/``ignore`` take exact codes or prefixes (``GPS1`` matches every
hygiene rule), and a trace file can carry its own suppressions in
``metadata["analysis_ignore"]``.
"""

from __future__ import annotations

from typing import Iterable

from ..config import PAGE_64K
from ..errors import AnalysisError
from ..trace.program import TraceProgram
from .dataflow import ProgramDataflow
from .diagnostics import Diagnostic, Severity
from .rules import RULES, AnalysisContext

#: Page granularity the subscription-related rules default to (GPS's 64 KiB).
DEFAULT_PAGE_SIZE = PAGE_64K


def _matches(code: str, patterns: Iterable[str]) -> bool:
    return any(code.startswith(pattern) for pattern in patterns if pattern)


def _normalise(codes: "Iterable[str] | None") -> list[str]:
    if not codes:
        return []
    out: list[str] = []
    for entry in codes:
        out.extend(part.strip() for part in entry.split(",") if part.strip())
    return out


def analyze_program(
    program: TraceProgram,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
) -> list[Diagnostic]:
    """Run every enabled rule; returns diagnostics (empty = clean).

    ``select`` limits the run to the given rule codes (or code prefixes);
    ``ignore`` drops codes after selection. Codes listed in the program's
    ``metadata["analysis_ignore"]`` are suppressed as if passed to
    ``ignore`` — that is the per-trace suppression mechanism for saved
    trace files.
    """
    selected = _normalise(select)
    ignored = _normalise(ignore)
    metadata_ignore = program.metadata.get("analysis_ignore", ())
    if isinstance(metadata_ignore, str):
        metadata_ignore = [metadata_ignore]
    ignored.extend(_normalise(metadata_ignore))

    context = AnalysisContext(program, ProgramDataflow(program, page_size), page_size)
    diagnostics: list[Diagnostic] = []
    for code in sorted(RULES):
        if selected and not _matches(code, selected):
            continue
        if _matches(code, ignored):
            continue
        diagnostics.extend(RULES[code].check(context))
    return diagnostics


def check_program(
    program: TraceProgram,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> list[Diagnostic]:
    """Gate a program before simulation.

    Returns the full diagnostic list when no error-severity finding exists;
    raises :class:`AnalysisError` (carrying the diagnostics) otherwise. The
    harness runner calls this before every simulation; set
    ``REPRO_NO_ANALYZE=1`` to opt out.
    """
    diagnostics = analyze_program(program, page_size=page_size)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        preview = "; ".join(str(d) for d in errors[:3])
        if len(errors) > 3:
            preview += f"; ... ({len(errors) - 3} more)"
        raise AnalysisError(
            f"trace program {program.name!r} fails static analysis with "
            f"{len(errors)} error(s): {preview}",
            diagnostics=diagnostics,
        )
    return diagnostics
