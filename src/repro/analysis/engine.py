"""Analyzer entry points: run the rule registry over a program.

``analyze_program`` is the library call; ``check_program`` is the gate the
harness runs before every simulation (raising :class:`AnalysisError` on
blocking findings). Rule selection mirrors familiar linter CLIs:
``select``/``ignore`` take exact codes or prefixes (``GPS1`` matches every
hygiene rule), and a trace file can carry its own suppressions in
``metadata["analysis_ignore"]``.

Results are deterministic — diagnostics come back in the canonical
location-major order of :func:`repro.analysis.diagnostics.sort_key` — and
memoized in an in-process cache keyed by the program fingerprint
(:mod:`repro.analysis.cache`), so the runner's per-job gate re-analyzes a
program once, not once per paradigm.
"""

from __future__ import annotations

from typing import Iterable

from ..config import PAGE_64K
from ..errors import AnalysisError
from ..trace.program import TraceProgram
from .cache import cache_enabled, cache_get, cache_put
from .dataflow import ProgramDataflow
from .diagnostics import Diagnostic, sort_diagnostics
from .footprints import program_fingerprint
from .hb import HappensBefore
from .portability import blocking_diagnostics
from .rules import RULES, AnalysisContext

#: Page granularity the subscription-related rules default to (GPS's 64 KiB).
DEFAULT_PAGE_SIZE = PAGE_64K


def _matches(code: str, patterns: Iterable[str]) -> bool:
    return any(code.startswith(pattern) for pattern in patterns if pattern)


def _normalise(codes: "Iterable[str] | None") -> list[str]:
    if not codes:
        return []
    out: list[str] = []
    for entry in codes:
        out.extend(part.strip() for part in entry.split(",") if part.strip())
    return out


def build_context(
    program: TraceProgram, page_size: int = DEFAULT_PAGE_SIZE
) -> AnalysisContext:
    """Dataflow + happens-before facts for one program (no rules run)."""
    dataflow = ProgramDataflow(program, page_size)
    return AnalysisContext(program, dataflow, page_size, HappensBefore(dataflow))


def analyze_program(
    program: TraceProgram,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
    use_cache: bool = True,
) -> list[Diagnostic]:
    """Run every enabled rule; returns diagnostics (empty = clean).

    ``select`` limits the run to the given rule codes (or code prefixes);
    ``ignore`` drops codes after selection. Codes listed in the program's
    ``metadata["analysis_ignore"]`` are suppressed as if passed to
    ``ignore`` — that is the per-trace suppression mechanism for saved
    trace files. Diagnostics come back in canonical deterministic order.
    ``use_cache=False`` forces a cold run (benchmarks, differential
    validation) regardless of the environment.
    """
    selected = _normalise(select)
    ignored = _normalise(ignore)
    metadata_ignore = program.metadata.get("analysis_ignore", ())
    if isinstance(metadata_ignore, str):
        metadata_ignore = [metadata_ignore]
    ignored.extend(_normalise(metadata_ignore))

    caching = use_cache and cache_enabled()
    key = None
    if caching:
        key = (
            program_fingerprint(program, page_size),
            tuple(selected),
            tuple(sorted(ignored)),
        )
        cached = cache_get(key)
        if cached is not None:
            return list(cached)

    context = build_context(program, page_size)
    diagnostics: list[Diagnostic] = []
    for code in sorted(RULES):
        if selected and not _matches(code, selected):
            continue
        if _matches(code, ignored):
            continue
        diagnostics.extend(RULES[code].check(context))
    diagnostics = sort_diagnostics(diagnostics)
    if caching and key is not None:
        cache_put(key, tuple(diagnostics))
    return diagnostics


def check_program(
    program: TraceProgram,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
    paradigm: "str | None" = None,
) -> list[Diagnostic]:
    """Gate a program before simulation.

    Returns the full diagnostic list when nothing blocks; raises
    :class:`AnalysisError` (carrying the diagnostics) otherwise. With
    ``paradigm=None`` every error-severity finding blocks (the legacy
    global gate); with a concrete paradigm only errors whose portability
    impact marks that paradigm unsafe do — see
    :func:`repro.analysis.portability.blocking_diagnostics`. The harness
    runner calls this with the job's paradigm before every simulation; set
    ``REPRO_NO_ANALYZE=1`` to opt out.
    """
    diagnostics = analyze_program(program, page_size=page_size)
    errors = blocking_diagnostics(diagnostics, paradigm)
    if errors:
        preview = "; ".join(str(d) for d in errors[:3])
        if len(errors) > 3:
            preview += f"; ... ({len(errors) - 3} more)"
        target = f" under paradigm {paradigm!r}" if paradigm is not None else ""
        raise AnalysisError(
            f"trace program {program.name!r} fails static analysis{target} "
            f"with {len(errors)} error(s): {preview}",
            diagnostics=diagnostics,
        )
    return diagnostics
