"""Page-granular symbolic footprints and program fingerprints.

The sanitizer reasons about two granularities at once: rules compare exact
byte intervals (no false sharing from page rounding), while every witness
also reports the *page* extent of the dispute, because pages are the unit
GPS subscribes, tracks, and publishes (paper §3.2, §4). A
:class:`Footprint` carries both views of one access site.

:func:`program_fingerprint` is the cache key of the analysis-result cache:
a SHA-256 over the canonical trace-program JSON, the page size, and the
analyzer revision, so any observable input to the rule registry changes the
key.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..trace.io import program_to_dict
from ..trace.program import TraceProgram
from .intervals import page_round

if TYPE_CHECKING:
    from .dataflow import AccessSite

#: Bump when rule semantics change: it invalidates every cached analysis.
ANALYZER_REVISION = "2"


def page_count(start: int, end: int, page_size: int) -> int:
    """Number of pages the byte range ``[start, end)`` touches."""
    if end <= start:
        return 0
    lo, hi = page_round(start, end, page_size)
    return (hi - lo) // page_size


@dataclass(frozen=True, slots=True)
class Footprint:
    """Byte- and page-granular extent of one access in one buffer."""

    buffer: str
    byte_start: int
    byte_end: int
    page_start: int
    page_end: int
    page_size: int

    @classmethod
    def of_interval(
        cls, buffer: str, start: int, end: int, page_size: int
    ) -> "Footprint":
        """Footprint of an explicit byte interval."""
        lo, hi = page_round(start, end, page_size)
        return cls(buffer, start, end, lo, hi, page_size)

    @classmethod
    def of_site(cls, site: "AccessSite", page_size: int) -> "Footprint":
        """Footprint of a dataflow access site."""
        start, end = site.interval
        return cls.of_interval(site.access.buffer, start, end, page_size)

    @property
    def pages(self) -> int:
        """Number of pages spanned."""
        return (self.page_end - self.page_start) // self.page_size

    @property
    def bytes(self) -> int:
        """Exact byte length."""
        return self.byte_end - self.byte_start

    def byte_overlap(self, other: "Footprint") -> "tuple[int, int] | None":
        """Exact byte intersection with ``other``, or ``None``."""
        if self.buffer != other.buffer:
            return None
        lo = max(self.byte_start, other.byte_start)
        hi = min(self.byte_end, other.byte_end)
        return (lo, hi) if lo < hi else None

    def shares_pages(self, other: "Footprint") -> bool:
        """Whether the two footprints land on at least one common page."""
        if self.buffer != other.buffer:
            return False
        return (
            max(self.page_start, other.page_start)
            < min(self.page_end, other.page_end)
        )


def program_fingerprint(
    program: TraceProgram, page_size: int, revision: str = ANALYZER_REVISION
) -> str:
    """Stable hex digest identifying one analysis input.

    Built from the canonical serialized program (so metadata such as
    ``analysis_ignore`` is covered), the page granularity, and the analyzer
    revision. Two programs with equal fingerprints produce byte-identical
    diagnostics.
    """
    payload = json.dumps(
        program_to_dict(program), sort_keys=True, separators=(",", ":")
    )
    digest = hashlib.sha256()
    digest.update(revision.encode("ascii"))
    digest.update(b"|")
    digest.update(str(page_size).encode("ascii"))
    digest.update(b"|")
    digest.update(payload.encode("utf-8"))
    return digest.hexdigest()
