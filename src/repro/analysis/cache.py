"""In-process analysis-result cache keyed by program fingerprint.

The runner re-analyzes the same program once per (workload, paradigm, GPU
count) job even though the diagnostics only depend on the program and the
page size. Diagnostics are immutable (frozen dataclasses all the way
down), so one analysis can be shared freely: the cache stores the final
diagnostic tuple under ``(program_fingerprint, select, ignore)`` and a
small LRU bound keeps a long-lived service process from accumulating
unboundedly.

``REPRO_NO_ANALYSIS_CACHE=1`` disables it (the differential harness uses
this to prove cached and cold analyses agree byte-for-byte).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

from .diagnostics import Diagnostic

#: Cache key: (program fingerprint, selected codes, ignored codes).
CacheKey = tuple[str, tuple[str, ...], tuple[str, ...]]

#: Entries kept before least-recently-used eviction.
MAX_ENTRIES = 512


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/eviction counters for observability and benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


_entries: "OrderedDict[CacheKey, tuple[Diagnostic, ...]]" = OrderedDict()
_stats = CacheStats()


def cache_enabled() -> bool:
    """Whether the cache participates in :func:`repro.analysis.analyze_program`."""
    return os.environ.get("REPRO_NO_ANALYSIS_CACHE", "") != "1"


def cache_get(key: CacheKey) -> "tuple[Diagnostic, ...] | None":
    """Cached diagnostics for ``key``, refreshing its recency."""
    cached = _entries.get(key)
    if cached is None:
        _stats.misses += 1
        return None
    _entries.move_to_end(key)
    _stats.hits += 1
    return cached


def cache_put(key: CacheKey, diagnostics: "tuple[Diagnostic, ...]") -> None:
    """Store one analysis, evicting the least recently used beyond the bound."""
    _entries[key] = diagnostics
    _entries.move_to_end(key)
    while len(_entries) > MAX_ENTRIES:
        _entries.popitem(last=False)
        _stats.evictions += 1


def cache_stats() -> CacheStats:
    """The live counter object (mutates as the cache is used)."""
    return _stats


def cache_size() -> int:
    """Number of cached analyses."""
    return len(_entries)


def clear_cache() -> None:
    """Drop every entry and reset the counters."""
    _entries.clear()
    _stats.hits = _stats.misses = _stats.evictions = 0
