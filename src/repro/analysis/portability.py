"""Paradigm-portability matrix: which paradigms is this program correct under?

The same trace program means different things under different memory
paradigms. A stale-read hazard (GPS006) only bites paradigms that run
GPS's subscription tracking; a weak flag store (GPS005) deadlocks the
replicated-at-barrier family but merely loses performance under a
directly-shared paradigm whose loads go to the single coherent copy. This
pass folds the diagnostic list into a per-paradigm verdict with reasons,
and :func:`blocking_diagnostics` gives the runner its pre-simulation gate:
a program is refused only for paradigms where a witness actually applies,
instead of globally.

The paradigm families (kept as literals so importing the analyzer never
drags in the numpy-heavy paradigm executors; a registry test pins them
against :data:`repro.paradigms.registry.PARADIGMS`):

* **replicated-at-barrier** — ``gps``, ``gps_nosub``, ``gps_nocoalesce``,
  ``memcpy``: stores land in local replicas and publish at phase barriers.
* **directly-shared** — ``um``, ``um_hints``, ``rdl``, ``infinite``:
  loads and stores go to one shared copy (pages may migrate).
* **subscription-tracking** — ``gps``, ``gps_nocoalesce``: the profile
  iteration decides which pages stay subscribed (``gps_nosub`` subscribes
  everything, so stale-read hazards cannot bite it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.program import TraceProgram
from .diagnostics import Diagnostic, Severity

#: Verdict levels, from best to worst.
SAFE = "safe"
HAZARD = "hazard"
UNSAFE = "unsafe"

#: Every paradigm the runner can execute (mirrors paradigms.registry).
ALL_PARADIGMS = (
    "um", "um_hints", "rdl", "memcpy", "gps", "infinite",
    "gps_nosub", "gps_nocoalesce",
)

_REPLICATED = frozenset({"gps", "gps_nosub", "gps_nocoalesce", "memcpy"})
_DIRECT = frozenset({"um", "um_hints", "rdl", "infinite"})
_TRACKING = frozenset({"gps", "gps_nocoalesce"})
_ALL = frozenset(ALL_PARADIGMS)


def _impact(unsafe: frozenset, hazard: frozenset) -> "dict[str, str]":
    table = {}
    for paradigm in ALL_PARADIGMS:
        if paradigm in unsafe:
            table[paradigm] = UNSAFE
        elif paradigm in hazard:
            table[paradigm] = HAZARD
    return table


_NONE: frozenset = frozenset()

#: rule code -> {paradigm: verdict} for paradigms the rule affects at all.
RULE_IMPACT: "dict[str, dict[str, str]]" = {
    # Undefined merge order corrupts data under every paradigm (under the
    # directly-shared family it is a plain data race).
    "GPS001": _impact(_ALL, _NONE),
    # Benign under replication (readers see the pre-phase replica); a real
    # rereadable race only where loads observe in-flight remote stores.
    "GPS002": _impact(_NONE, _DIRECT),
    # Uninitialized reads are wrong everywhere.
    "GPS003": _impact(_ALL, _NONE),
    # Wrong-scope data accesses are a performance bug, never corruption.
    "GPS004": _impact(_NONE, _ALL),
    # A weak flag store never becomes visible mid-phase under replication
    # (spin-wait deadlock); directly-shared paradigms have one copy, so the
    # flag eventually lands — suspicious but survivable.
    "GPS005": _impact(_REPLICATED, _DIRECT),
    # Stale replicas need subscription tracking to exist.
    "GPS006": _impact(_TRACKING, _NONE),
    # Dropped atomic updates are possible wherever the plain store races.
    "GPS007": _impact(_NONE, _ALL),
    # A cyclic handshake hangs no matter who holds the pages.
    "GPS008": _impact(_ALL, _NONE),
}


def rule_impact(code: str, severity: "Severity | None" = None) -> "dict[str, str]":
    """Per-paradigm impact of one rule code.

    Unknown *error* codes conservatively map to unsafe-everywhere — a new
    rule must opt in to being portable, not accidentally pass the gate.
    """
    table = RULE_IMPACT.get(code)
    if table is not None:
        return table
    if severity is Severity.ERROR:
        return _impact(_ALL, _NONE)
    return {}


@dataclass(frozen=True, slots=True)
class ParadigmVerdict:
    """One paradigm's row of the portability matrix."""

    paradigm: str
    verdict: str
    #: (code, impact) pairs that produced the verdict, in diagnostic order.
    reasons: tuple[tuple[str, str], ...]

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "paradigm": self.paradigm,
            "verdict": self.verdict,
            "reasons": [list(pair) for pair in self.reasons],
        }


@dataclass(frozen=True, slots=True)
class PortabilityReport:
    """The full matrix for one program."""

    program: str
    verdicts: tuple[ParadigmVerdict, ...]

    def verdict(self, paradigm: str) -> str:
        """Verdict for one paradigm (unknown paradigms are ``safe``)."""
        for row in self.verdicts:
            if row.paradigm == paradigm:
                return row.verdict
        return SAFE

    def safe_paradigms(self) -> "tuple[str, ...]":
        """Paradigms with no findings against them at all."""
        return tuple(r.paradigm for r in self.verdicts if r.verdict == SAFE)

    def unsafe_paradigms(self) -> "tuple[str, ...]":
        """Paradigms the program must not run under."""
        return tuple(r.paradigm for r in self.verdicts if r.verdict == UNSAFE)

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "program": self.program,
            "verdicts": [row.to_dict() for row in self.verdicts],
        }


def portability_report(
    program: TraceProgram, diagnostics: "list[Diagnostic]"
) -> PortabilityReport:
    """Fold diagnostics into the per-paradigm portability matrix.

    Only error-severity findings can make a paradigm *unsafe*: an info
    finding whose impact table says "unsafe" (there are none today, but a
    custom rule could) still documents itself as a hazard — severity is
    the author's statement of confidence, and the gate must not outvote it.
    """
    rows: list[ParadigmVerdict] = []
    for paradigm in ALL_PARADIGMS:
        worst = SAFE
        reasons: list[tuple[str, str]] = []
        seen: set[tuple[str, str]] = set()
        for diagnostic in diagnostics:
            impact = rule_impact(diagnostic.code, diagnostic.severity).get(paradigm)
            if impact is None:
                continue
            if impact == UNSAFE and diagnostic.severity is not Severity.ERROR:
                impact = HAZARD
            key = (diagnostic.code, impact)
            if key not in seen:
                seen.add(key)
                reasons.append(key)
            if impact == UNSAFE:
                worst = UNSAFE
            elif impact == HAZARD and worst == SAFE:
                worst = HAZARD
        rows.append(ParadigmVerdict(paradigm, worst, tuple(reasons)))
    return PortabilityReport(program.name, tuple(rows))


def blocking_diagnostics(
    diagnostics: "list[Diagnostic]", paradigm: "str | None"
) -> "list[Diagnostic]":
    """The findings that forbid running under ``paradigm``.

    With ``paradigm=None`` (the legacy global gate) every error-severity
    finding blocks. With a concrete paradigm, only errors whose witness
    applies to that paradigm block — a stale-read hazard does not stop a
    ``memcpy`` run that replicates everything every phase.
    """
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if paradigm is None:
        return errors
    return [
        d for d in errors
        if rule_impact(d.code, d.severity).get(paradigm) == UNSAFE
    ]


def render_portability_text(report: PortabilityReport) -> str:
    """Human-readable matrix: one line per paradigm."""
    lines = [f"portability of {report.program}:"]
    for row in report.verdicts:
        reasons = ", ".join(f"{code}:{impact}" for code, impact in row.reasons)
        suffix = f" ({reasons})" if reasons else ""
        lines.append(f"  {row.paradigm:<14} {row.verdict}{suffix}")
    return "\n".join(lines)
