"""Diagnostic vocabulary of the static analyzer.

A :class:`Diagnostic` is one finding: a stable rule code (``GPS001``...),
a severity, a human-readable message, and a structured :class:`Location`
pinpointing where in the trace program the problem sits (phase, kernel,
GPU, buffer, byte interval). Emitters (:mod:`repro.analysis.emit`) render
lists of diagnostics as text, JSON, or SARIF without re-deriving anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """Finding severity, ordered ``INFO < WARNING < ERROR``.

    The ``str`` mixin keeps equality with plain strings (``severity ==
    "warning"``) working for callers of the deprecated
    :func:`repro.system.validate.lint_program` shim.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    __str__ = str.__str__

    @property
    def rank(self) -> int:
        """Numeric order for comparisons and exit-code mapping."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True, slots=True)
class Location:
    """Structured position of a finding inside a trace program.

    Every field is optional: a program-level finding (e.g. a missing setup
    phase) has no phase; a buffer-level finding (e.g. an unused buffer) has
    no kernel. ``interval`` is a half-open buffer-relative byte range.
    """

    phase: str | None = None
    kernel: str | None = None
    gpu: int | None = None
    buffer: str | None = None
    interval: tuple[int, int] | None = None

    def qualified_name(self) -> str:
        """``phase/kernel@gpuN`` logical name (SARIF logicalLocations)."""
        parts = []
        if self.phase is not None:
            parts.append(self.phase)
        if self.kernel is not None:
            parts.append(self.kernel)
        name = "/".join(parts) if parts else "<program>"
        if self.gpu is not None:
            name += f"@gpu{self.gpu}"
        return name

    def __str__(self) -> str:
        bits = [self.qualified_name()]
        if self.buffer is not None:
            where = repr(self.buffer)
            if self.interval is not None:
                where += f"[{self.interval[0]}, {self.interval[1]})"
            bits.append(where)
        return " ".join(bits)


#: Program-level location: no phase, kernel, buffer, or interval.
PROGRAM_LOCATION = Location()


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analyzer finding."""

    severity: Severity
    code: str
    message: str
    #: Kebab-case rule name (``weak-write-write-race``).
    rule: str = ""
    location: Location = field(default=PROGRAM_LOCATION)

    def __str__(self) -> str:
        text = f"[{self.severity.value}] {self.code}"
        if self.rule:
            text += f" {self.rule}"
        text += f": {self.message}"
        if self.location != PROGRAM_LOCATION:
            text += f" (at {self.location})"
        return text

    def to_dict(self) -> dict:
        """JSON-safe form used by the JSON and SARIF emitters."""
        loc = self.location
        return {
            "severity": self.severity.value,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "phase": loc.phase,
            "kernel": loc.kernel,
            "gpu": loc.gpu,
            "buffer": loc.buffer,
            "interval": list(loc.interval) if loc.interval is not None else None,
        }


def max_severity(diagnostics: "list[Diagnostic]") -> Severity | None:
    """Highest severity present, or ``None`` for a clean result."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)
