"""Diagnostic vocabulary of the static analyzer.

A :class:`Diagnostic` is one finding: a stable rule code (``GPS001``...),
a severity, a human-readable message, a structured :class:`Location`
pinpointing where in the trace program the problem sits (phase, kernel,
GPU, buffer, byte interval), and — for the memory-model conformance rules
— a :class:`Witness` carrying the concrete evidence: the two access sites
involved, the disputed byte/page ranges, and the ordering edge whose
absence makes the pair race. Emitters (:mod:`repro.analysis.emit`) render
lists of diagnostics as text, JSON, or SARIF without re-deriving anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from .dataflow import AccessSite


class Severity(str, enum.Enum):
    """Finding severity, ordered ``INFO < WARNING < ERROR``.

    The ``str`` mixin keeps equality with plain strings (``severity ==
    "warning"``) working, so callers never need to import the enum just to
    filter a diagnostic list.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    __str__ = str.__str__

    @property
    def rank(self) -> int:
        """Numeric order for comparisons and exit-code mapping."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True, slots=True)
class Location:
    """Structured position of a finding inside a trace program.

    Every field is optional: a program-level finding (e.g. a missing setup
    phase) has no phase; a buffer-level finding (e.g. an unused buffer) has
    no kernel. ``interval`` is a half-open buffer-relative byte range.
    """

    phase: str | None = None
    kernel: str | None = None
    gpu: int | None = None
    buffer: str | None = None
    interval: tuple[int, int] | None = None

    def qualified_name(self) -> str:
        """``phase/kernel@gpuN`` logical name (SARIF logicalLocations)."""
        parts = []
        if self.phase is not None:
            parts.append(self.phase)
        if self.kernel is not None:
            parts.append(self.kernel)
        name = "/".join(parts) if parts else "<program>"
        if self.gpu is not None:
            name += f"@gpu{self.gpu}"
        return name

    def __str__(self) -> str:
        bits = [self.qualified_name()]
        if self.buffer is not None:
            where = repr(self.buffer)
            if self.interval is not None:
                where += f"[{self.interval[0]}, {self.interval[1]})"
            bits.append(where)
        return " ".join(bits)


#: Program-level location: no phase, kernel, buffer, or interval.
PROGRAM_LOCATION = Location()


@dataclass(frozen=True, slots=True)
class SiteRef:
    """Serializable reference to one access site of the trace program."""

    phase: str
    phase_index: int
    kernel: str
    gpu: int
    buffer: str
    op: str
    scope: str
    interval: tuple[int, int]
    #: Index of the access within its kernel's access tuple.
    access_index: int

    @classmethod
    def from_site(cls, site: "AccessSite") -> "SiteRef":
        """Build a reference from a dataflow access site."""
        return cls(
            phase=site.phase,
            phase_index=site.phase_index,
            kernel=site.kernel,
            gpu=site.gpu,
            buffer=site.access.buffer,
            op=site.access.op.value,
            scope=site.access.scope.value,
            interval=site.interval,
            access_index=site.access_index,
        )

    def __str__(self) -> str:
        return (
            f"{self.phase}/{self.kernel}@gpu{self.gpu} "
            f"{self.scope} {self.op} {self.buffer!r}"
            f"[{self.interval[0]}, {self.interval[1]})"
        )

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "phase": self.phase,
            "phase_index": self.phase_index,
            "kernel": self.kernel,
            "gpu": self.gpu,
            "buffer": self.buffer,
            "op": self.op,
            "scope": self.scope,
            "interval": list(self.interval),
            "access_index": self.access_index,
        }


@dataclass(frozen=True, slots=True)
class Witness:
    """Concrete evidence backing one conformance finding.

    ``site`` is the access the diagnostic anchors on; ``other`` is the
    second party for pairwise findings (the racing store, the stale
    writer) and ``None`` for one-sided findings (uninitialized read,
    wrong scope). ``intervals`` are the disputed buffer-relative byte
    ranges — page-rounded for page-granular rules — and ``missing_edge``
    names the ordering edge whose absence makes the finding real.
    """

    kind: str
    site: SiteRef
    other: "SiteRef | None" = None
    intervals: tuple[tuple[int, int], ...] = ()
    page_size: int = 0
    pages: int = 0
    missing_edge: str = ""

    def to_dict(self) -> dict:
        """JSON-safe form used by the JSON and SARIF emitters."""
        return {
            "kind": self.kind,
            "site": self.site.to_dict(),
            "other": self.other.to_dict() if self.other is not None else None,
            "intervals": [list(pair) for pair in self.intervals],
            "page_size": self.page_size,
            "pages": self.pages,
            "missing_edge": self.missing_edge,
        }


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analyzer finding."""

    severity: Severity
    code: str
    message: str
    #: Kebab-case rule name (``weak-write-write-race``).
    rule: str = ""
    location: Location = field(default=PROGRAM_LOCATION)
    #: Concrete evidence; ``None`` for hygiene rules and program-level notes.
    witness: "Witness | None" = None

    def __str__(self) -> str:
        text = f"[{self.severity.value}] {self.code}"
        if self.rule:
            text += f" {self.rule}"
        text += f": {self.message}"
        if self.location != PROGRAM_LOCATION:
            text += f" (at {self.location})"
        return text

    def to_dict(self) -> dict:
        """JSON-safe form used by the JSON and SARIF emitters."""
        loc = self.location
        return {
            "severity": self.severity.value,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "phase": loc.phase,
            "kernel": loc.kernel,
            "gpu": loc.gpu,
            "buffer": loc.buffer,
            "interval": list(loc.interval) if loc.interval is not None else None,
            "witness": self.witness.to_dict() if self.witness is not None else None,
        }


def max_severity(diagnostics: "list[Diagnostic]") -> Severity | None:
    """Highest severity present, or ``None`` for a clean result."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Deterministic diagnostic order: location-major, then code.

    Sorts by (phase, kernel, gpu, buffer, interval, code, message) with
    ``None`` fields first, so program-level findings lead and reports are
    byte-reproducible regardless of rule evaluation order.
    """
    loc = diagnostic.location
    return (
        loc.phase or "",
        loc.kernel or "",
        loc.gpu if loc.gpu is not None else -1,
        loc.buffer or "",
        loc.interval if loc.interval is not None else (-1, -1),
        diagnostic.code,
        diagnostic.message,
    )


def sort_diagnostics(diagnostics: "list[Diagnostic]") -> "list[Diagnostic]":
    """Return diagnostics in the canonical deterministic order."""
    return sorted(diagnostics, key=sort_key)
