"""GPS conformance rules over the dataflow and happens-before facts.

Each rule is a function from an :class:`AnalysisContext` to diagnostics,
registered under a stable code. ``GPS0xx`` codes are memory-model
conformance rules derived from the paper; ``GPS1xx`` codes are the trace
hygiene checks carried over (and fixed) from the superseded
``repro.system.validate`` linter. Severities are chosen so that the
registered workload suite — which deliberately uses the data-race-tolerant
idioms the paper's applications use (atomic scatters over shard writes,
stale gather reads) — stays clean under ``--strict``, while genuine
memory-model violations are hard errors.

Since the sanitizer rework, the race rules (GPS001/002/007) consult the
vector-clock engine (:mod:`repro.analysis.hb`): same-phase accesses that a
sys-scoped flag handshake orders are *not* racy, and every conformance
finding carries a :class:`~repro.analysis.diagnostics.Witness` naming the
two access sites, the disputed byte/page ranges, and the missing ordering
edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..trace.program import TraceProgram
from ..trace.records import MemOp, Scope
from .dataflow import AccessSite, ProgramDataflow
from .diagnostics import Diagnostic, Location, Severity, SiteRef, Witness
from .footprints import page_count
from .hb import HappensBefore
from .intervals import IntervalSet, page_round, sweep_overlaps


@dataclass(slots=True)
class AnalysisContext:
    """Everything a rule may consult."""

    program: TraceProgram
    dataflow: ProgramDataflow
    page_size: int
    hb: HappensBefore


RuleCheck = Callable[[AnalysisContext], Iterable[Diagnostic]]


@dataclass(frozen=True, slots=True)
class Rule:
    """Registered rule: stable code, metadata, and the check function."""

    code: str
    name: str
    severity: Severity
    summary: str
    #: Paper-section citation backing the rule.
    paper: str
    check: RuleCheck


#: code -> Rule, in registration (== code) order.
RULES: dict[str, Rule] = {}


def rule(code: str, name: str, severity: Severity, summary: str, paper: str):
    """Decorator registering a rule check under a stable code."""

    def register(check: RuleCheck) -> RuleCheck:
        if code in RULES:
            raise ValueError(f"duplicate rule code {code!r}")
        RULES[code] = Rule(code, name, severity, summary, paper, check)
        return check

    return register


def _site_location(site: AccessSite, interval: "tuple[int, int] | None" = None) -> Location:
    return Location(
        phase=site.phase,
        kernel=site.kernel,
        gpu=site.gpu,
        buffer=site.access.buffer,
        interval=interval if interval is not None else site.interval,
    )


def _finding(
    code: str,
    message: str,
    location: Location,
    witness: "Witness | None" = None,
) -> Diagnostic:
    meta = RULES[code]
    return Diagnostic(
        meta.severity, code, message, rule=meta.name, location=location,
        witness=witness,
    )


def _witness(
    kind: str,
    site: AccessSite,
    other: "AccessSite | None",
    intervals: "tuple[tuple[int, int], ...]",
    page_size: int,
    missing_edge: str = "",
) -> Witness:
    pages = sum(page_count(start, end, page_size) for start, end in intervals)
    return Witness(
        kind=kind,
        site=SiteRef.from_site(site),
        other=SiteRef.from_site(other) if other is not None else None,
        intervals=intervals,
        page_size=page_size,
        pages=pages,
        missing_edge=missing_edge,
    )


# -- GPS0xx: memory-model conformance -----------------------------------------


@rule(
    "GPS001",
    "weak-write-write-race",
    Severity.ERROR,
    "two GPUs store non-atomically to overlapping bytes within one phase",
    "§2.3",
)
def check_weak_write_write_race(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Weak plain stores from different GPUs to overlapping bytes.

    With no intra-phase synchronisation, both replicas publish at the
    barrier and the merge order is undefined — the page ends up with a
    GPU-dependent mix of both write sets. A sys-scoped flag handshake that
    orders the two stores (release before acquire, paper §5.3) drains the
    write queue in between, so handshake-ordered pairs are skipped.
    Atomic-vs-atomic overlap is the well-defined accumulation idiom;
    atomic-vs-plain is GPS007.
    """
    for phase_sites in ctx.dataflow.phase_sites:
        for buffer, stores in sorted(phase_sites.stores.items()):
            plain = [
                s for s in stores
                if s.access.op is MemOp.WRITE and s.access.scope is Scope.WEAK
            ]
            if len(plain) < 2:
                continue
            seen: set[tuple[int, int]] = set()
            items = [(s.interval[0], s.interval[1], s) for s in plain]
            for a, b, overlap in sweep_overlaps(items):
                if a.gpu == b.gpu:
                    continue
                if not ctx.hb.concurrent(a, b):
                    continue
                pair = (min(a.gpu, b.gpu), max(a.gpu, b.gpu))
                if pair in seen:
                    continue
                seen.add(pair)
                yield _finding(
                    "GPS001",
                    f"phase {a.phase!r}: GPUs {pair[0]} and {pair[1]} both issue "
                    f"weak non-atomic stores to {buffer!r} "
                    f"[{overlap[0]}, {overlap[1]}); the replica merge order at "
                    "the barrier is undefined",
                    _site_location(b, overlap),
                    _witness(
                        "intra-phase-race", b, a, (overlap,), ctx.page_size,
                        ctx.hb.missing_edge(a, b),
                    ),
                )


@rule(
    "GPS002",
    "weak-write-read-race",
    Severity.INFO,
    "a GPU reads bytes another GPU stores in the same phase",
    "§2.3, §3",
)
def check_weak_write_read_race(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Cross-GPU same-phase store/read overlap with no ordering edge.

    Benign under GPS: loads always hit the local replica, so the reader
    observes the pre-phase value (weak stores become visible at the next
    sys-scoped sync, i.e. the barrier). Reported as info because the same
    trace is a genuine data race under directly-shared paradigms, and
    because the author may have expected to read the *new* value. Pairs a
    flag handshake orders are not reported at all — the reader provably
    observes the published value.
    """
    for phase_sites in ctx.dataflow.phase_sites:
        for buffer, stores in sorted(phase_sites.stores.items()):
            reads = phase_sites.reads.get(buffer, [])
            if not reads:
                continue
            weak_stores = [s for s in stores if s.access.scope is Scope.WEAK]
            pairs: set[tuple[int, int]] = set()
            first: "tuple[AccessSite, AccessSite, tuple[int, int]] | None" = None
            for read in reads:
                if read.access.op is not MemOp.READ:
                    continue  # atomic RMW overlap is the accumulation idiom
                for store in weak_stores:
                    if store.gpu == read.gpu:
                        continue
                    lo = max(read.interval[0], store.interval[0])
                    hi = min(read.interval[1], store.interval[1])
                    if lo >= hi:
                        continue
                    if not ctx.hb.concurrent(read, store):
                        continue
                    pairs.add((read.gpu, store.gpu))
                    if first is None:
                        first = (read, store, (lo, hi))
            if first is not None:
                read, store, overlap_range = first
                yield _finding(
                    "GPS002",
                    f"phase {read.phase!r}: {len(pairs)} reader/writer GPU "
                    f"pair(s) overlap on {buffer!r} (first: GPU {read.gpu} "
                    f"reads [{overlap_range[0]}, {overlap_range[1]}) while "
                    f"GPU {store.gpu} stores to it); under GPS the reader sees "
                    "the pre-phase replica, under directly-shared paradigms "
                    "this is a race",
                    _site_location(read, overlap_range),
                    _witness(
                        "intra-phase-race", read, store, (overlap_range,),
                        ctx.page_size, ctx.hb.missing_edge(store, read),
                    ),
                )


@rule(
    "GPS003",
    "read-before-write",
    Severity.ERROR,
    "a kernel reads bytes no earlier phase (nor setup) ever wrote",
    "§3.2 (Listing 1)",
)
def check_read_before_write(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Reads of never-written intervals observe unspecified memory.

    The dataflow frontier only publishes stores at phase barriers; a
    same-phase store a sys-scoped handshake orders *before* the read also
    initializes it (the release drains the write queue), so those bytes
    are subtracted before reporting.
    """
    for site in ctx.dataflow.sites:
        if not site.is_read or not site.uninitialized:
            continue
        gaps = site.uninitialized
        phase_stores = ctx.dataflow.phase_sites[site.phase_index].stores.get(
            site.access.buffer, []
        )
        ordered_cover = IntervalSet()
        for store in phase_stores:
            if store.site_index != site.site_index and ctx.hb.ordered(store, site):
                ordered_cover.add(*store.interval)
        if ordered_cover:
            gaps = tuple(
                part for start, end in gaps
                for part in ordered_cover.uncovered(start, end)
            )
            if not gaps:
                continue
        gap = gaps[0]
        total = sum(end - start for start, end in gaps)
        yield _finding(
            "GPS003",
            f"{site.phase!r}/{site.kernel!r} (GPU {site.gpu}) reads "
            f"{total} B of {site.access.buffer!r} that no earlier phase wrote, "
            f"first gap [{gap[0]}, {gap[1]})",
            _site_location(site, gap),
            _witness(
                "uninitialized-read", site, None, gaps,
                ctx.page_size,
                "no earlier phase stores these bytes before the read",
            ),
        )


@rule(
    "GPS004",
    "sys-scope-non-sync-buffer",
    Severity.WARNING,
    "a sys-scoped access targets a buffer not marked as a sync buffer",
    "§5.3",
)
def check_sys_scope_non_sync(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Sys-scoped data accesses forgo all GPS coalescing for no benefit.

    Strong accesses must go uncoalesced to a single point of coherence;
    the paper reserves them for synchronisation flags allocated outside
    GPS (cudaMalloc). A sys-scoped access to a plain data buffer usually
    means the scope annotation is wrong.
    """
    for site in ctx.dataflow.sites:
        if site.access.scope is Scope.SYS and not site.buffer.sync:
            yield _finding(
                "GPS004",
                f"{site.phase!r}/{site.kernel!r} (GPU {site.gpu}) issues a "
                f"sys-scoped {site.access.op.value} to data buffer "
                f"{site.access.buffer!r}; strong accesses bypass the write "
                "queue and belong on sync buffers only",
                _site_location(site),
                _witness(
                    "scope-mismatch", site, None, (site.interval,),
                    ctx.page_size,
                ),
            )


@rule(
    "GPS005",
    "weak-scope-sync-buffer",
    Severity.ERROR,
    "a weak-scoped access targets a sync buffer",
    "§5.3",
)
def check_weak_scope_sync(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Sync flags must opt out of GPS and be accessed sys-scoped.

    A weak store to a flag only becomes visible at the *next* sys-scoped
    synchronisation — exactly what the flag was supposed to provide — so a
    spin-waiting consumer deadlocks or reads stale flag values.
    """
    for site in ctx.dataflow.sites:
        if site.buffer.sync and site.access.scope is Scope.WEAK:
            yield _finding(
                "GPS005",
                f"{site.phase!r}/{site.kernel!r} (GPU {site.gpu}) issues a "
                f"weak {site.access.op.value} to sync buffer "
                f"{site.access.buffer!r}; sync flags must be accessed "
                "sys-scoped and allocated outside GPS",
                _site_location(site),
                _witness(
                    "scope-mismatch", site, None, (site.interval,),
                    ctx.page_size,
                ),
            )


def _first_other_store(
    ctx: AnalysisContext, gpu: int, buffer: str, intervals: "list[tuple[int, int]]"
) -> "AccessSite | None":
    """First iterative-region store by another GPU into any of ``intervals``."""
    for other in ctx.dataflow.sites:
        if other.gpu == gpu or not other.is_store or other.iteration < 0:
            continue
        if other.access.buffer != buffer:
            continue
        lo, hi = page_round(*other.interval, ctx.page_size)
        if any(lo < end and start < hi for start, end in intervals):
            return other
    return None


@rule(
    "GPS006",
    "stale-read-hazard",
    Severity.ERROR,
    "a GPU reads pages it never touched during the profile iteration",
    "§3.2, §4 (Listing 1)",
)
def check_stale_read_hazard(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Reads that automatic subscription management would break.

    GPS profiles iteration 0 and unsubscribes each GPU from every page it
    did not touch (``tracking_stop()``). A page read only in *later*
    iterations therefore has no local replica updates: if any other GPU
    keeps writing it, the unsubscribed reader observes stale data.
    """
    flow = ctx.dataflow
    if not flow.steady_iterations:
        return
    for site in flow.steady_reads:
        buffer = site.access.buffer
        if buffer not in flow.shared_buffers or site.buffer.sync:
            continue
        start, end = page_round(*site.interval, ctx.page_size)
        touched = flow.profile_touched.get((site.gpu, buffer))
        gaps = touched.uncovered(start, end) if touched is not None else [(start, end)]
        hazardous = [
            gap for gap in gaps if flow.stored_by_others(site.gpu, buffer, *gap)
        ]
        if not hazardous:
            continue
        pages = sum(-(-(e - s) // ctx.page_size) for s, e in hazardous)
        writer = _first_other_store(ctx, site.gpu, buffer, hazardous)
        yield _finding(
            "GPS006",
            f"{site.phase!r}/{site.kernel!r}: GPU {site.gpu} reads {pages} "
            f"page(s) of {buffer!r} it never touched in the profile iteration "
            f"(first at [{hazardous[0][0]}, {hazardous[0][1]})); auto-"
            "subscription would have unsubscribed it and the replica is stale",
            _site_location(site, hazardous[0]),
            _witness(
                "stale-subscription", site, writer, tuple(hazardous),
                ctx.page_size,
                f"GPU {site.gpu} holds no subscription for these pages after "
                "tracking_stop(); touch them in the profile iteration",
            ),
        )


@rule(
    "GPS007",
    "atomic-plain-store-mix",
    Severity.INFO,
    "atomics and plain stores hit overlapping bytes in one phase",
    "§7.4",
)
def check_atomic_plain_mix(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Atomic and plain stores interleaved on the same bytes.

    The remote write queue never coalesces atomics (the paper's graph and
    ALS traces show 0% write-queue hit rates), and a plain store racing an
    atomic accumulation can drop updates. Info severity: the registered
    graph workloads use exactly this idiom deliberately (owner resets its
    shard while neighbours scatter into it). Handshake-ordered pairs are
    not a mix — the plain store provably retires before (or after) the
    accumulation.
    """
    for phase_sites in ctx.dataflow.phase_sites:
        for buffer, stores in sorted(phase_sites.stores.items()):
            items = [(s.interval[0], s.interval[1], s) for s in stores]
            pairs: set[tuple[int, int]] = set()
            first: "tuple[AccessSite, AccessSite, tuple[int, int]] | None" = None
            for a, b, overlap in sweep_overlaps(items):
                ops = {a.access.op, b.access.op}
                if ops != {MemOp.ATOMIC, MemOp.WRITE}:
                    continue
                if a.gpu != b.gpu and not ctx.hb.concurrent(a, b):
                    continue
                pairs.add((min(a.gpu, b.gpu), max(a.gpu, b.gpu)))
                if first is None:
                    atomic = a if a.access.op is MemOp.ATOMIC else b
                    plain = b if atomic is a else a
                    first = (atomic, plain, overlap)
            if first is not None:
                atomic, plain, overlap_range = first
                yield _finding(
                    "GPS007",
                    f"phase {atomic.phase!r}: {buffer!r} receives both atomic "
                    f"and plain stores on overlapping ranges from "
                    f"{len(pairs)} GPU pair(s) (first: "
                    f"[{overlap_range[0]}, {overlap_range[1]}), atomic from "
                    f"GPU {atomic.gpu}); atomics forward uncoalesced and "
                    "plain stores can drop concurrent updates",
                    _site_location(atomic, overlap_range),
                    _witness(
                        "atomic-plain-mix", atomic, plain, (overlap_range,),
                        ctx.page_size, ctx.hb.missing_edge(atomic, plain),
                    ),
                )


@rule(
    "GPS008",
    "sync-handshake-cycle",
    Severity.ERROR,
    "intra-phase sys-scoped flag handshakes form a cycle",
    "§5.3",
)
def check_sync_cycle(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Circular flag handshakes can never all complete.

    If GPU 0 waits on a flag GPU 1 only raises after waiting on a flag
    GPU 0 only raises later, no interleaving satisfies every wait: the
    phase deadlocks on real hardware. The vector-clock engine finds these
    as strongly connected components of the intra-phase ordering graph and
    conservatively ignores the cyclic edges for the race rules.
    """
    for cycle in ctx.hb.cycles:
        head = cycle.sites[0]
        gpus = sorted({s.gpu for s in cycle.sites})
        yield _finding(
            "GPS008",
            f"phase {head.phase!r}: sys-scoped flag handshakes among GPUs "
            f"{gpus} form a cycle ({cycle.describe()}); no interleaving "
            "satisfies every wait and the phase cannot retire",
            _site_location(head),
            _witness(
                "sync-cycle", head, cycle.sites[-1],
                tuple(s.interval for s in cycle.sites), ctx.page_size,
                "the handshake graph needs a topological order; break the "
                "cycle or split the phase",
            ),
        )


# -- GPS1xx: trace hygiene (carried over from system.validate) ----------------


@rule(
    "GPS101",
    "unused-buffer",
    Severity.WARNING,
    "a declared buffer is never accessed",
    "—",
)
def check_unused_buffers(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Unused buffers usually mean a generator bug (or dead weight)."""
    for buffer in ctx.program.buffers:
        if buffer.name not in ctx.dataflow.used_buffers:
            yield _finding(
                "GPS101",
                f"buffer {buffer.name!r} is never accessed",
                Location(buffer=buffer.name),
            )


@rule(
    "GPS102",
    "idle-gpus",
    Severity.INFO,
    "a phase leaves some GPUs idle",
    "—",
)
def check_idle_gpus(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Idle GPUs in a phase are load imbalance (sometimes intentional)."""
    for phase in ctx.program.phases:
        missing = sorted(set(range(ctx.program.num_gpus)) - set(phase.gpus))
        if missing:
            yield _finding(
                "GPS102",
                f"phase {phase.name!r} leaves GPUs {missing} idle",
                Location(phase=phase.name),
            )


@rule(
    "GPS103",
    "no-setup-phase",
    Severity.WARNING,
    "an iterative program has no setup phase",
    "§3.2",
)
def check_setup_phase(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Without setup, first-touch and last-writer state default to homes."""
    if ctx.program.iterations >= 1 and not ctx.program.phases_in_iteration(-1):
        yield _finding(
            "GPS103",
            "iterative program has no setup phase; first-touch and "
            "last-writer state will default to buffer homes",
            Location(),
        )


@rule(
    "GPS104",
    "payload-imbalance",
    Severity.INFO,
    "per-GPU payloads within a phase differ wildly",
    "—",
)
def check_payload_balance(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """Wild per-GPU payload spread within a phase.

    A zero-payload kernel (no accesses) is the *worst* imbalance — the old
    linter's ``low > 0`` guard silently skipped exactly that case.
    """
    threshold = 4.0
    for phase in ctx.program.phases:
        if len(phase.kernels) < 2:
            continue
        payloads = [
            (sum(a.total_bytes() for a in kernel.accesses), kernel)
            for kernel in phase.kernels
        ]
        low, low_kernel = min(payloads, key=lambda p: p[0])
        high, _ = max(payloads, key=lambda p: p[0])
        if high <= 0:
            continue
        if low == 0:
            message = (
                f"phase {phase.name!r}: kernel {low_kernel.name!r} "
                f"(GPU {low_kernel.gpu}) moves 0 bytes while others move up "
                f"to {high} — unbounded payload imbalance"
            )
        elif high / low > threshold:
            message = (
                f"phase {phase.name!r}: per-GPU payload varies "
                f"{high / low:.1f}x ({low} .. {high} bytes)"
            )
        else:
            continue
        yield _finding(
            "GPS104",
            message,
            Location(phase=phase.name, kernel=low_kernel.name, gpu=low_kernel.gpu),
        )
