"""Memory-model-aware static analysis of trace programs.

This package supersedes the old 5-check linter in
``repro.system.validate`` with a multi-pass analyzer built on a cross-phase
happens-before dataflow engine (:mod:`repro.analysis.dataflow`), an
extensible rule registry with stable ``GPSxxx`` codes
(:mod:`repro.analysis.rules`), and text/JSON/SARIF emitters
(:mod:`repro.analysis.emit`).

Library use::

    from repro.analysis import analyze_program

    diagnostics = analyze_program(program)
    errors = [d for d in diagnostics if d.severity == "error"]

CLI use::

    python -m repro lint trace.json --strict --format sarif
    python -m repro lint jacobi --gpus 4

The harness runner calls :func:`check_program` before every simulation it
computes; ``REPRO_NO_ANALYZE=1`` opts out.
"""

from .dataflow import AccessSite, ProgramDataflow
from .diagnostics import Diagnostic, Location, Severity, max_severity
from .emit import (
    render_json,
    render_json_dict,
    render_sarif,
    render_sarif_runs,
    render_text,
    sarif_run,
    severity_counts,
)
from .engine import DEFAULT_PAGE_SIZE, analyze_program, check_program
from .intervals import IntervalSet
from .rules import RULES, AnalysisContext, Rule, rule

__all__ = [
    "AccessSite",
    "AnalysisContext",
    "DEFAULT_PAGE_SIZE",
    "Diagnostic",
    "IntervalSet",
    "Location",
    "ProgramDataflow",
    "RULES",
    "Rule",
    "Severity",
    "analyze_program",
    "check_program",
    "max_severity",
    "render_json",
    "render_json_dict",
    "render_sarif",
    "render_sarif_runs",
    "render_text",
    "rule",
    "sarif_run",
    "severity_counts",
]
