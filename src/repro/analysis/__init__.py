"""Memory-model sanitizer for trace programs.

This package grew out of the PR 2 linter into a four-part sanitizer:

* **Precision core** — a cross-phase dataflow engine
  (:mod:`repro.analysis.dataflow`) plus a barrier-aware vector-clock
  happens-before engine over page-granular footprints
  (:mod:`repro.analysis.hb`, :mod:`repro.analysis.footprints`); every
  conformance diagnostic carries a concrete witness.
* **Auto-fix engine** — :mod:`repro.analysis.fixes` plans minimal program
  repairs per fixable rule; ``repro lint --fix`` applies them to a fixed
  point.
* **Portability matrix** — :mod:`repro.analysis.portability` decides which
  paradigms a program is correct under; the runner's pre-simulation gate
  refuses a program only for paradigms where a witness applies.
* **Speed** — an in-process analysis cache keyed by program fingerprint
  (:mod:`repro.analysis.cache`), benchmarked in
  ``benchmarks/bench_analysis.py``.

Library use::

    from repro.analysis import analyze_program, fix_program

    diagnostics = analyze_program(program)
    errors = [d for d in diagnostics if d.severity == "error"]
    repaired = fix_program(program).program

CLI use::

    python -m repro lint trace.json --strict --format sarif
    python -m repro lint jacobi --gpus 4 --fix --fix-out fixed.json

The harness runner calls :func:`check_program` (with the job's paradigm)
before every simulation it computes; ``REPRO_NO_ANALYZE=1`` opts out.
"""

from .cache import CacheStats, cache_size, cache_stats, clear_cache
from .dataflow import AccessSite, ProgramDataflow
from .diagnostics import (
    Diagnostic,
    Location,
    Severity,
    SiteRef,
    Witness,
    max_severity,
    sort_diagnostics,
    sort_key,
)
from .emit import (
    render_json,
    render_json_dict,
    render_sarif,
    render_sarif_runs,
    render_text,
    sarif_run,
    severity_counts,
)
from .engine import DEFAULT_PAGE_SIZE, analyze_program, build_context, check_program
from .fixes import (
    FIXABLE_CODES,
    AppliedFix,
    Edit,
    Fix,
    FixReport,
    apply_fix,
    fix_program,
    plan_fix,
    plan_fixes,
)
from .footprints import Footprint, page_count, program_fingerprint
from .hb import HappensBefore, SyncCycle
from .intervals import IntervalSet
from .portability import (
    ALL_PARADIGMS,
    HAZARD,
    RULE_IMPACT,
    SAFE,
    UNSAFE,
    ParadigmVerdict,
    PortabilityReport,
    blocking_diagnostics,
    portability_report,
    render_portability_text,
    rule_impact,
)
from .rules import RULES, AnalysisContext, Rule, rule

__all__ = [
    "ALL_PARADIGMS",
    "AccessSite",
    "AnalysisContext",
    "AppliedFix",
    "CacheStats",
    "DEFAULT_PAGE_SIZE",
    "Diagnostic",
    "Edit",
    "FIXABLE_CODES",
    "Fix",
    "FixReport",
    "Footprint",
    "HAZARD",
    "HappensBefore",
    "IntervalSet",
    "Location",
    "ParadigmVerdict",
    "PortabilityReport",
    "ProgramDataflow",
    "RULES",
    "RULE_IMPACT",
    "Rule",
    "SAFE",
    "Severity",
    "SiteRef",
    "SyncCycle",
    "UNSAFE",
    "Witness",
    "analyze_program",
    "apply_fix",
    "blocking_diagnostics",
    "build_context",
    "cache_size",
    "cache_stats",
    "check_program",
    "clear_cache",
    "fix_program",
    "max_severity",
    "page_count",
    "plan_fix",
    "plan_fixes",
    "portability_report",
    "program_fingerprint",
    "render_json",
    "render_json_dict",
    "render_portability_text",
    "render_sarif",
    "render_sarif_runs",
    "render_text",
    "rule",
    "rule_impact",
    "sarif_run",
    "severity_counts",
    "sort_diagnostics",
    "sort_key",
]
