"""Interval index primitives for the dataflow engine.

The analyzer tracks per-buffer byte ranges (written-so-far sets, profiled
page sets, per-phase store sets). :class:`IntervalSet` keeps a coalesced,
sorted list of disjoint half-open intervals, so membership and coverage
queries are ``O(log n)`` binary searches and race detection is a sort-and-
sweep — never the O(n^2) all-pairs scans of the old linter.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, TypeVar

T = TypeVar("T")


class IntervalSet:
    """A set of bytes stored as coalesced, sorted, disjoint intervals.

    All intervals are half-open ``[start, end)``. Adding an interval merges
    it with any intervals it overlaps or abuts, so the representation stays
    canonical and queries stay logarithmic.
    """

    __slots__ = ("_starts", "_ends")

    def __init__(self, intervals: Iterable[tuple[int, int]] = ()) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        for start, end in intervals:
            self.add(start, end)

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, coalescing with neighbours."""
        if end <= start:
            return
        # Leftmost stored interval that could merge (overlap or abut).
        i = bisect_right(self._starts, start)
        if i > 0 and self._ends[i - 1] >= start:
            i -= 1
        # One past the rightmost stored interval that could merge.
        j = bisect_right(self._starts, end)
        if i < j:
            start = min(start, self._starts[i])
            end = max(end, self._ends[j - 1])
        self._starts[i:j] = [start]
        self._ends[i:j] = [end]

    def update(self, other: "IntervalSet") -> None:
        """Add every interval of ``other``."""
        for start, end in other:
            self.add(start, end)

    def overlaps(self, start: int, end: int) -> bool:
        """Whether any stored byte falls in ``[start, end)``."""
        if end <= start or not self._starts:
            return False
        i = bisect_right(self._starts, start)
        if i > 0 and self._ends[i - 1] > start:
            return True
        return i < len(self._starts) and self._starts[i] < end

    def covers(self, start: int, end: int) -> bool:
        """Whether ``[start, end)`` is entirely contained in the set."""
        if end <= start:
            return True
        i = bisect_right(self._starts, start) - 1
        return i >= 0 and self._ends[i] >= end

    def uncovered(self, start: int, end: int) -> list[tuple[int, int]]:
        """The sub-intervals of ``[start, end)`` *not* in the set (the gaps)."""
        if end <= start:
            return []
        gaps: list[tuple[int, int]] = []
        cursor = start
        i = bisect_right(self._starts, start) - 1
        if i >= 0 and self._ends[i] > cursor:
            cursor = self._ends[i]
        i += 1
        while cursor < end and i < len(self._starts) and self._starts[i] < end:
            if self._starts[i] > cursor:
                gaps.append((cursor, self._starts[i]))
            cursor = max(cursor, self._ends[i])
            i += 1
        if cursor < end:
            gaps.append((cursor, end))
        return gaps

    def intersection(self, start: int, end: int) -> list[tuple[int, int]]:
        """The sub-intervals of ``[start, end)`` that *are* in the set."""
        if end <= start:
            return []
        out: list[tuple[int, int]] = []
        i = bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        for k in range(i, len(self._starts)):
            if self._starts[k] >= end:
                break
            lo = max(start, self._starts[k])
            hi = min(end, self._ends[k])
            if lo < hi:
                out.append((lo, hi))
        return out

    def total_bytes(self) -> int:
        """Sum of interval lengths."""
        return sum(e - s for s, e in zip(self._starts, self._ends))

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self._starts, self._ends))

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __repr__(self) -> str:
        return f"IntervalSet({list(self)!r})"


def page_round(start: int, end: int, page_size: int) -> tuple[int, int]:
    """Expand ``[start, end)`` outward to page boundaries."""
    return (start // page_size) * page_size, -(-end // page_size) * page_size


def sweep_overlaps(
    items: "list[tuple[int, int, T]]",
) -> Iterator[tuple[T, T, tuple[int, int]]]:
    """Yield overlapping pairs from ``(start, end, payload)`` items.

    Sort-and-sweep: items are processed in start order with an active list
    pruned by end, so disjoint inputs cost ``O(n log n)`` — output size, not
    input size squared, bounds the work.
    """
    ordered = sorted(items, key=lambda item: (item[0], item[1]))
    active: list[tuple[int, int, T]] = []
    for start, end, payload in ordered:
        active = [item for item in active if item[1] > start]
        for a_start, a_end, a_payload in active:
            yield a_payload, payload, (max(a_start, start), min(a_end, end))
        active.append((start, end, payload))


def merge_intervals(intervals: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Coalesce arbitrary intervals into canonical disjoint form."""
    merged = IntervalSet(intervals)
    return list(merged)
