"""Auto-fix engine: minimal program repairs for fixable diagnostics.

Each fixable rule maps to a builder that turns one diagnostic (and its
witness) into a :class:`Fix` — a description plus a tuple of declarative
:class:`Edit` operations over the trace program. ``repro lint --fix``
drives :func:`fix_program`, which applies one fix per round and re-analyzes
until no fixable finding remains (a fixed point), so structural edits never
invalidate the indices later fixes refer to.

The repairs are the paper's own recommendations:

========  ====================================================
GPS001    split the phase so conflicting stores retire across a barrier
GPS003    initialize the unwritten gaps in a setup phase
GPS004    demote the sys-scoped data access to weak scope
GPS005    promote the flag access to sys scope
GPS006    touch the pages in the profile iteration (insert a subscription)
GPS007    split the mixed buffer so atomics and plain stores separate
GPS101    drop the unused buffer
GPS103    insert a setup phase initializing every buffer
========  ====================================================

GPS002/GPS102/GPS104 are advisory and GPS008 needs an intent-level rewrite
(which wait should yield?), so none of them plans a fix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, Scope
from .diagnostics import Diagnostic, Severity
from .footprints import program_fingerprint


@dataclass(frozen=True, slots=True)
class Edit:
    """One declarative repair operation over a trace program."""

    kind: str
    phase_index: int = -1
    kernel: str = ""
    access_index: int = -1
    buffer: str = ""
    new_buffer: str = ""
    scope: str = ""
    gpu: int = -1
    intervals: tuple[tuple[int, int], ...] = ()

    def to_dict(self) -> dict:
        """JSON-safe form (SARIF ``fixes`` payload)."""
        return {
            "kind": self.kind,
            "phase_index": self.phase_index,
            "kernel": self.kernel,
            "access_index": self.access_index,
            "buffer": self.buffer,
            "new_buffer": self.new_buffer,
            "scope": self.scope,
            "gpu": self.gpu,
            "intervals": [list(pair) for pair in self.intervals],
        }


@dataclass(frozen=True, slots=True)
class Fix:
    """A minimal repair for one diagnostic."""

    code: str
    description: str
    edits: tuple[Edit, ...]

    def to_dict(self) -> dict:
        """JSON-safe form."""
        return {
            "code": self.code,
            "description": self.description,
            "edits": [edit.to_dict() for edit in self.edits],
        }


# -- planning ------------------------------------------------------------------


def _gap_scope(buffer: BufferSpec) -> Scope:
    return Scope.SYS if buffer.sync else Scope.WEAK


def _plan_split_phase(program: TraceProgram, diag: Diagnostic) -> "Fix | None":
    witness = diag.witness
    if witness is None:
        return None
    return Fix(
        diag.code,
        f"split phase {witness.site.phase!r} so the conflicting stores of "
        f"GPUs {witness.other.gpu if witness.other else '?'} and "
        f"{witness.site.gpu} retire across a barrier",
        (Edit(kind="split-phase", phase_index=witness.site.phase_index),),
    )


def _plan_init_gaps(program: TraceProgram, diag: Diagnostic) -> "Fix | None":
    witness = diag.witness
    if witness is None or not witness.intervals:
        return None
    buffer = program.buffer(witness.site.buffer)
    return Fix(
        diag.code,
        f"initialize {len(witness.intervals)} unwritten gap(s) of "
        f"{buffer.name!r} in the setup phase",
        (
            Edit(
                kind="init-gaps",
                phase_index=witness.site.phase_index,
                buffer=buffer.name,
                gpu=buffer.home_gpu,
                intervals=witness.intervals,
            ),
        ),
    )


def _plan_set_scope(scope: str, why: str):
    def plan(program: TraceProgram, diag: Diagnostic) -> "Fix | None":
        witness = diag.witness
        if witness is None:
            return None
        site = witness.site
        return Fix(
            diag.code,
            f"rewrite the {site.scope} {site.op} of {site.buffer!r} in "
            f"{site.phase!r}/{site.kernel!r} to {scope} scope ({why})",
            (
                Edit(
                    kind="set-scope",
                    phase_index=site.phase_index,
                    kernel=site.kernel,
                    access_index=site.access_index,
                    scope=scope,
                ),
            ),
        )

    return plan


def _plan_profile_touch(program: TraceProgram, diag: Diagnostic) -> "Fix | None":
    witness = diag.witness
    if witness is None or not witness.intervals:
        return None
    site = witness.site
    return Fix(
        diag.code,
        f"subscribe GPU {site.gpu} to {witness.pages} page(s) of "
        f"{site.buffer!r} by touching them in the profile iteration",
        (
            Edit(
                kind="profile-touch",
                buffer=site.buffer,
                gpu=site.gpu,
                intervals=witness.intervals,
            ),
        ),
    )


def _free_buffer_name(program: TraceProgram, base: str) -> str:
    taken = {b.name for b in program.buffers}
    candidate = f"{base}.plain"
    while candidate in taken:
        candidate += "+"
    return candidate


def _plan_split_buffer(program: TraceProgram, diag: Diagnostic) -> "Fix | None":
    witness = diag.witness
    if witness is None:
        return None
    site = witness.site
    new_name = _free_buffer_name(program, site.buffer)
    return Fix(
        diag.code,
        f"split {site.buffer!r}: redirect the plain stores of phase "
        f"{site.phase!r} to a fresh buffer {new_name!r} so atomics keep "
        "the original to themselves",
        (
            Edit(
                kind="split-buffer",
                phase_index=site.phase_index,
                buffer=site.buffer,
                new_buffer=new_name,
            ),
        ),
    )


def _plan_drop_buffer(program: TraceProgram, diag: Diagnostic) -> "Fix | None":
    name = diag.location.buffer
    if name is None:
        return None
    return Fix(
        diag.code,
        f"drop the never-accessed buffer {name!r}",
        (Edit(kind="drop-buffer", buffer=name),),
    )


def _plan_insert_setup(program: TraceProgram, diag: Diagnostic) -> "Fix | None":
    return Fix(
        diag.code,
        "insert a setup phase initializing every buffer shard-by-shard",
        (Edit(kind="insert-setup"),),
    )


_FIX_BUILDERS = {
    "GPS001": _plan_split_phase,
    "GPS003": _plan_init_gaps,
    "GPS004": _plan_set_scope("weak", "data buffers belong in the write queue"),
    "GPS005": _plan_set_scope("sys", "sync flags must bypass GPS"),
    "GPS006": _plan_profile_touch,
    "GPS007": _plan_split_buffer,
    "GPS101": _plan_drop_buffer,
    "GPS103": _plan_insert_setup,
}

#: Rule codes the engine can repair.
FIXABLE_CODES = frozenset(_FIX_BUILDERS)


def plan_fix(program: TraceProgram, diagnostic: Diagnostic) -> "Fix | None":
    """The repair for one diagnostic, or ``None`` if the rule is unfixable."""
    builder = _FIX_BUILDERS.get(diagnostic.code)
    if builder is None:
        return None
    return builder(program, diagnostic)


def plan_fixes(
    program: TraceProgram,
    diagnostics: "list[Diagnostic]",
    *,
    min_severity: Severity = Severity.WARNING,
) -> "list[tuple[Diagnostic, Fix]]":
    """Repairs for every fixable diagnostic at or above ``min_severity``.

    Most-severe first (stable within a severity tier, following the
    canonical diagnostic order), so :func:`fix_program` repairs errors
    before cosmetics and the fix log reads in priority order.
    """
    plans: list[tuple[Diagnostic, Fix]] = []
    for diagnostic in diagnostics:
        if diagnostic.severity.rank < min_severity.rank:
            continue
        fix = plan_fix(program, diagnostic)
        if fix is not None:
            plans.append((diagnostic, fix))
    plans.sort(key=lambda pair: -pair[0].severity.rank)
    return plans


# -- application ---------------------------------------------------------------


def _apply_set_scope(program: TraceProgram, edit: Edit) -> TraceProgram:
    scope = Scope(edit.scope)

    def rewrite(phase_index: int, kernel: KernelSpec, access_index: int,
                access: AccessRange) -> "AccessRange | None":
        if (phase_index == edit.phase_index
                and kernel.name == edit.kernel
                and access_index == edit.access_index
                and access.scope is not scope):
            return replace(access, scope=scope)
        return access

    return program.rewrite_accesses(rewrite)


def _conflicts(a: KernelSpec, b: KernelSpec) -> bool:
    """Whether two kernels issue overlapping weak plain stores."""
    for left in a.accesses:
        if left.op is not MemOp.WRITE or left.scope is not Scope.WEAK:
            continue
        for right in b.accesses:
            if right.op is not MemOp.WRITE or right.scope is not Scope.WEAK:
                continue
            if left.buffer != right.buffer:
                continue
            if max(left.offset, right.offset) < min(left.end, right.end):
                return True
    return False


def _apply_split_phase(program: TraceProgram, edit: Edit) -> TraceProgram:
    phase = program.phases[edit.phase_index]
    groups: list[list[KernelSpec]] = []
    for kernel in phase.kernels:
        for group in groups:
            if not any(_conflicts(kernel, member) for member in group):
                group.append(kernel)
                break
        else:
            groups.append([kernel])
    if len(groups) < 2:
        return program
    replacement = tuple(
        Phase(f"{phase.name}.split{index}", tuple(group), phase.iteration)
        for index, group in enumerate(groups)
    )
    return program.splice_phases(edit.phase_index, replacement)


def _extend_phase_kernel(
    phase: Phase,
    gpu: int,
    kernel_name: str,
    accesses: "tuple[AccessRange, ...]",
) -> Phase:
    """Phase with ``accesses`` appended to ``gpu``'s kernel (or a new one)."""
    existing = phase.kernel_on(gpu)
    if existing is not None:
        kernels = tuple(
            replace(k, accesses=k.accesses + accesses) if k is existing else k
            for k in phase.kernels
        )
    else:
        kernels = phase.kernels + (
            KernelSpec(kernel_name, gpu, compute_ops=0.0, accesses=accesses),
        )
    return replace(phase, kernels=kernels)


def _apply_init_gaps(program: TraceProgram, edit: Edit) -> TraceProgram:
    buffer = program.buffer(edit.buffer)
    accesses = tuple(
        AccessRange(buffer.name, start, end - start, MemOp.WRITE,
                    scope=_gap_scope(buffer))
        for start, end in edit.intervals
        if end > start
    )
    if not accesses:
        return program
    # Writes publish at their phase's barrier, so the gap-filling store must
    # live in a phase strictly before the reading one.
    setup_indices = [
        i for i, p in enumerate(program.phases)
        if p.iteration == -1 and i < edit.phase_index
    ]
    if setup_indices:
        index = setup_indices[0]
        patched = _extend_phase_kernel(
            program.phases[index], edit.gpu, f"fix_init_gpu{edit.gpu}", accesses
        )
        return program.splice_phases(index, (patched,))
    kernel = KernelSpec(
        f"fix_init_gpu{edit.gpu}", edit.gpu, compute_ops=0.0, accesses=accesses
    )
    setup = Phase("setup.fix", (kernel,), iteration=-1)
    return program.with_phases((setup,) + program.phases)


def _apply_profile_touch(program: TraceProgram, edit: Edit) -> TraceProgram:
    iterations = sorted(
        {p.iteration for p in program.phases if p.iteration >= 0}
    )
    if not iterations:
        return program
    profile = iterations[0]
    indices = [
        i for i, p in enumerate(program.phases) if p.iteration == profile
    ]
    index = indices[-1]
    accesses = tuple(
        AccessRange(edit.buffer, start, end - start, MemOp.READ)
        for start, end in edit.intervals
        if end > start
    )
    if not accesses:
        return program
    patched = _extend_phase_kernel(
        program.phases[index], edit.gpu, f"fix_touch_gpu{edit.gpu}", accesses
    )
    return program.splice_phases(index, (patched,))


def _apply_split_buffer(program: TraceProgram, edit: Edit) -> TraceProgram:
    source = program.buffer(edit.buffer)
    clone = BufferSpec(edit.new_buffer, source.size, source.home_gpu, source.sync)

    def rewrite(phase_index: int, kernel: KernelSpec, access_index: int,
                access: AccessRange) -> "AccessRange | None":
        if (phase_index == edit.phase_index
                and access.buffer == edit.buffer
                and access.op is MemOp.WRITE):
            return replace(access, buffer=edit.new_buffer)
        return access

    redirected = program.with_buffers(program.buffers + (clone,))
    return redirected.rewrite_accesses(rewrite)


def _apply_drop_buffer(program: TraceProgram, edit: Edit) -> TraceProgram:
    buffers = tuple(b for b in program.buffers if b.name != edit.buffer)
    if len(buffers) == len(program.buffers):
        return program
    return program.with_buffers(buffers)


def _align_up(value: int, granule: int = 128) -> int:
    return -(-value // granule) * granule


def _apply_insert_setup(program: TraceProgram, edit: Edit) -> TraceProgram:
    per_gpu: dict[int, list[AccessRange]] = {g: [] for g in range(program.num_gpus)}
    for buffer in program.buffers:
        shard = _align_up(-(-buffer.size // program.num_gpus))
        for gpu in range(program.num_gpus):
            start = gpu * shard
            end = min(buffer.size, start + shard)
            if start >= end:
                continue
            per_gpu[gpu].append(
                AccessRange(buffer.name, start, end - start, MemOp.WRITE,
                            scope=_gap_scope(buffer))
            )
    kernels = tuple(
        KernelSpec(f"fix_setup_gpu{gpu}", gpu, compute_ops=0.0,
                   accesses=tuple(accesses))
        for gpu, accesses in sorted(per_gpu.items())
        if accesses
    )
    if not kernels:
        return program
    setup = Phase("setup.fix", kernels, iteration=-1)
    return program.with_phases((setup,) + program.phases)


_EDIT_APPLIERS = {
    "set-scope": _apply_set_scope,
    "split-phase": _apply_split_phase,
    "init-gaps": _apply_init_gaps,
    "profile-touch": _apply_profile_touch,
    "split-buffer": _apply_split_buffer,
    "drop-buffer": _apply_drop_buffer,
    "insert-setup": _apply_insert_setup,
}


def apply_fix(program: TraceProgram, fix: Fix) -> TraceProgram:
    """Apply every edit of ``fix``, returning the rewritten program."""
    for edit in fix.edits:
        applier = _EDIT_APPLIERS.get(edit.kind)
        if applier is None:
            raise ValueError(f"unknown edit kind {edit.kind!r}")
        program = applier(program, edit)
    return program


# -- the fixed-point driver ----------------------------------------------------


@dataclass(slots=True)
class AppliedFix:
    """One fix the driver applied, with the diagnostic that caused it."""

    diagnostic: Diagnostic
    fix: Fix


@dataclass(slots=True)
class FixReport:
    """Outcome of :func:`fix_program`."""

    program: TraceProgram
    original: TraceProgram
    applied: "list[AppliedFix]"
    remaining: "list[Diagnostic]"
    rounds: int
    converged: bool

    @property
    def changed(self) -> bool:
        """Whether any repair was applied."""
        return bool(self.applied)


def fix_program(
    program: TraceProgram,
    *,
    page_size: "int | None" = None,
    min_severity: Severity = Severity.WARNING,
    max_rounds: int = 32,
) -> FixReport:
    """Repair ``program`` to a fixed point.

    One fix per round: re-analysis after each application keeps every
    later plan's phase/access indices valid and lets repairs compose
    (inserting a setup phase, say, clears most read-before-write findings
    before they are ever planned). Already-clean programs come back as the
    *same object*, so callers can rely on byte-identical behavior.

    ``min_severity`` bounds what gets repaired (default: warnings and
    errors; pass ``Severity.INFO`` to also split atomic/plain buffers).
    A fingerprint history guards against oscillating repairs.
    """
    from .engine import DEFAULT_PAGE_SIZE, analyze_program

    if page_size is None:
        page_size = DEFAULT_PAGE_SIZE
    current = program
    applied: list[AppliedFix] = []
    seen = {program_fingerprint(current, page_size)}
    rounds = 0
    converged = False
    diagnostics: list[Diagnostic] = []
    while rounds < max_rounds:
        rounds += 1
        diagnostics = analyze_program(current, page_size=page_size)
        plans = plan_fixes(current, diagnostics, min_severity=min_severity)
        if not plans:
            converged = True
            break
        diagnostic, fix = plans[0]
        repaired = apply_fix(current, fix)
        fingerprint = program_fingerprint(repaired, page_size)
        if fingerprint in seen:
            diagnostics = analyze_program(repaired, page_size=page_size)
            current = repaired
            break
        seen.add(fingerprint)
        applied.append(AppliedFix(diagnostic, fix))
        current = repaired
    else:
        diagnostics = analyze_program(current, page_size=page_size)
    remaining = [
        d for d in diagnostics if d.severity.rank >= min_severity.rank
    ]
    return FixReport(
        program=current,
        original=program,
        applied=applied,
        remaining=remaining,
        rounds=rounds,
        converged=converged,
    )
