"""Diagnostic emitters: text, JSON, and SARIF 2.1.0.

All three formats are deterministic for a given program — diagnostics keep
the canonical location-major order of
:func:`repro.analysis.diagnostics.sort_key` and no timestamps are embedded
— so golden-file tests can compare bytes. JSON and SARIF both carry the
full sanitizer payload: each diagnostic's witness, the planned auto-fix
(when the rule is fixable), and the program's paradigm-portability matrix.
"""

from __future__ import annotations

import json

from ..trace.program import TraceProgram
from .diagnostics import Diagnostic, max_severity
from .fixes import plan_fix
from .portability import portability_report
from .rules import RULES

#: SARIF reportingConfiguration levels per severity.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def severity_counts(diagnostics: list[Diagnostic]) -> dict[str, int]:
    """``{"error": n, "warning": n, "info": n}`` (always all three keys)."""
    counts = {"error": 0, "warning": 0, "info": 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity.value] += 1
    return counts


def render_text(program: TraceProgram, diagnostics: list[Diagnostic]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [str(d) for d in diagnostics]
    counts = severity_counts(diagnostics)
    if not diagnostics:
        lines.append(f"{program.name}: clean, no findings")
    else:
        lines.append(
            f"{program.name}: {counts['error']} error(s), "
            f"{counts['warning']} warning(s), {counts['info']} info(s)"
        )
    return "\n".join(lines)


def render_json_dict(program: TraceProgram, diagnostics: list[Diagnostic]) -> dict:
    """JSON-safe dict form of one program's analysis."""
    top = max_severity(diagnostics)
    entries = []
    for diagnostic in diagnostics:
        entry = diagnostic.to_dict()
        fix = plan_fix(program, diagnostic)
        entry["fix"] = fix.to_dict() if fix is not None else None
        entries.append(entry)
    return {
        "program": program.name,
        "num_gpus": program.num_gpus,
        "max_severity": top.value if top is not None else None,
        "counts": severity_counts(diagnostics),
        "diagnostics": entries,
        "portability": portability_report(program, diagnostics).to_dict(),
    }


def render_json(program: TraceProgram, diagnostics: list[Diagnostic]) -> str:
    """Machine-readable JSON report for one program."""
    return json.dumps(render_json_dict(program, diagnostics), indent=2, sort_keys=True)


def _sarif_fix(program: TraceProgram, diagnostic: Diagnostic) -> "dict | None":
    """SARIF ``fix`` object for a fixable diagnostic.

    Trace programs are logical artifacts (one JSON document), so each edit
    is surfaced as an inserted-content replacement holding the declarative
    edit operation; ``repro lint --fix`` is the applier.
    """
    fix = plan_fix(program, diagnostic)
    if fix is None:
        return None
    return {
        "description": {"text": fix.description},
        "artifactChanges": [
            {
                "artifactLocation": {"uri": f"trace:{program.name}"},
                "replacements": [
                    {
                        "deletedRegion": {"startLine": 1, "startColumn": 1},
                        "insertedContent": {
                            "text": json.dumps(edit.to_dict(), sort_keys=True)
                        },
                    }
                    for edit in fix.edits
                ],
            }
        ],
    }


def sarif_run(program: TraceProgram, diagnostics: list[Diagnostic]) -> dict:
    """One SARIF ``run`` object covering one trace program."""
    codes = sorted(RULES)
    rule_index = {code: i for i, code in enumerate(codes)}
    driver = {
        "name": "repro-analysis",
        "rules": [
            {
                "id": code,
                "name": RULES[code].name,
                "shortDescription": {"text": RULES[code].summary},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[RULES[code].severity.value]
                },
                "properties": {"paper": RULES[code].paper},
            }
            for code in codes
        ],
    }
    results = []
    for diagnostic in diagnostics:
        loc = diagnostic.location
        properties = {
            key: value
            for key, value in (
                ("phase", loc.phase),
                ("kernel", loc.kernel),
                ("gpu", loc.gpu),
                ("buffer", loc.buffer),
                ("interval", list(loc.interval) if loc.interval else None),
                (
                    "witness",
                    diagnostic.witness.to_dict()
                    if diagnostic.witness is not None
                    else None,
                ),
            )
            if value is not None
        }
        result = {
            "ruleId": diagnostic.code,
            "ruleIndex": rule_index[diagnostic.code],
            "level": _SARIF_LEVELS[diagnostic.severity.value],
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": loc.qualified_name(),
                            "kind": "function",
                        }
                    ]
                }
            ],
            "properties": properties,
        }
        fix = _sarif_fix(program, diagnostic)
        if fix is not None:
            result["fixes"] = [fix]
        results.append(result)
    return {
        "tool": {"driver": driver},
        "properties": {
            "program": program.name,
            "num_gpus": program.num_gpus,
            "portability": portability_report(program, diagnostics).to_dict(),
        },
        "results": results,
    }


def render_sarif(program: TraceProgram, diagnostics: list[Diagnostic]) -> str:
    """SARIF 2.1.0 document for one program."""
    return render_sarif_runs([sarif_run(program, diagnostics)])


def render_sarif_runs(runs: list[dict]) -> str:
    """SARIF 2.1.0 document from prebuilt runs (multi-program lint)."""
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": runs,
    }
    return json.dumps(document, indent=2, sort_keys=True)
