"""System configuration: GPU, GPS structures, interconnect, and full systems.

The default values reproduce Table 1 of the paper (NVIDIA GV100-based
simulation settings) plus the interconnect generations used in the evaluation
(PCIe 3.0 through a projected PCIe 6.0, and an infinite-bandwidth ideal).

All configs are frozen dataclasses: a configuration describes hardware, and
hardware does not mutate mid-simulation. Derived quantities are exposed as
properties so the stored fields stay minimal and validation stays in
``__post_init__``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field

from .errors import ConfigError
from .units import GB_S, GHZ, GiB, KiB, MiB, TB_S, US, is_power_of_two

# Page sizes studied in the paper's page-size sensitivity (section 7.4).
PAGE_4K = 4 * KiB
PAGE_64K = 64 * KiB
PAGE_2M = 2 * MiB

#: Cache block (line) size used throughout; paper Table 1.
CACHE_BLOCK = 128


@dataclass(frozen=True)
class GPUConfig:
    """A single GPU's compute and memory hierarchy parameters.

    Defaults model an NVIDIA GV100 (paper Table 1): 80 SMs, 64 CUDA cores
    per SM, 16 GB of HBM2, and a 6 MB L2.
    """

    name: str = "GV100"
    num_sms: int = 80
    cores_per_sm: int = 64
    clock_hz: float = 1.53 * GHZ
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    max_threads_per_cta: int = 1024
    dram_bytes: int = 16 * GiB
    dram_bandwidth: float = 900 * GB_S
    l2_bytes: int = 6 * MiB
    l2_bandwidth: float = 2.5 * TB_S
    l2_assoc: int = 16
    cache_block: int = CACHE_BLOCK
    #: Last-level TLB miss rate per access used by the access-tracking unit
    #: model (paper section 5.2 cites ~1.4 misses per thousand cycles).
    tlb_entries: int = 2048
    #: Serial penalty per kernel-footprint page beyond TLB coverage —
    #: models the page-walk storms that make 4 KiB pages 42% slower in the
    #: paper's page-size sensitivity (section 7.4).
    tlb_walk_penalty: float = 20e-9

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ConfigError("GPU must have positive SM and core counts")
        if not is_power_of_two(self.cache_block):
            raise ConfigError(f"cache block must be a power of two, got {self.cache_block}")
        if self.dram_bandwidth <= 0 or self.l2_bandwidth <= 0:
            raise ConfigError("memory bandwidths must be positive")
        if self.l2_bytes <= 0 or self.dram_bytes <= 0:
            raise ConfigError("memory sizes must be positive")

    @property
    def throughput_ops(self) -> float:
        """Peak scalar operations per second (one op per core per cycle)."""
        return self.num_sms * self.cores_per_sm * self.clock_hz


@dataclass(frozen=True)
class GPSConfig:
    """Parameters of the GPS hardware structures (paper Table 1, section 5).

    The remote write queue is fully associative at cache-block granularity;
    the high watermark defaults to ``entries - 1`` ("one less than the
    buffer's capacity to maximize coalescing opportunity", section 5.2).
    """

    write_queue_entries: int = 512
    write_queue_entry_bytes: int = 135
    #: Entries occupied before the queue starts draining the LRU entry.
    #: ``None`` means "capacity - 1", the paper's choice.
    high_watermark: int | None = None
    gps_tlb_entries: int = 32
    gps_tlb_assoc: int = 8
    page_size: int = PAGE_64K
    virtual_address_bits: int = 49
    physical_address_bits: int = 47
    #: VA range covered by the access-tracking bitmap (64 KiB of DRAM for
    #: 32 GiB of 64 KiB pages; paper section 5.2).
    tracking_range_bytes: int = 32 * GiB

    def __post_init__(self) -> None:
        if self.write_queue_entries <= 0:
            raise ConfigError("write queue needs at least one entry")
        watermark = self.effective_watermark
        if not 0 < watermark <= self.write_queue_entries:
            raise ConfigError(
                f"high watermark {watermark} out of range for "
                f"{self.write_queue_entries} entries"
            )
        if self.gps_tlb_entries % self.gps_tlb_assoc != 0:
            raise ConfigError("GPS-TLB entries must divide evenly into its associativity")
        if not is_power_of_two(self.page_size):
            raise ConfigError(f"page size must be a power of two, got {self.page_size}")

    @property
    def effective_watermark(self) -> int:
        """The watermark actually used: explicit value or ``entries - 1``."""
        if self.high_watermark is not None:
            return self.high_watermark
        return max(1, self.write_queue_entries - 1)

    @property
    def tracking_bitmap_bytes(self) -> int:
        """DRAM footprint of the access-tracking bitmap, one bit per page."""
        pages = self.tracking_range_bytes // self.page_size
        return max(1, pages // 8)

    @property
    def vpn_bits(self) -> int:
        """Virtual page number width for the configured page size."""
        return self.virtual_address_bits - int(math.log2(self.page_size))

    @property
    def ppn_bits(self) -> int:
        """Physical page number width for the configured page size."""
        return self.physical_address_bits - int(math.log2(self.page_size))

    def gps_pte_bits(self, num_gpus: int) -> int:
        """Minimum GPS-PTE width: a VPN plus one PPN per possible *remote* subscriber.

        For 64 KiB pages (VPN=33, PPN=31) and 4 GPUs the paper (section 5.1)
        quotes 126 bits, i.e. ``33 + 31 * 3`` — the VPN tag plus one PPN per
        remote GPU. Valid/metadata bits are implementation bookkeeping on top
        of this architectural minimum and are deliberately not counted.
        """
        remote = num_gpus - 1
        return self.vpn_bits + self.ppn_bits * remote


@dataclass(frozen=True)
class LinkConfig:
    """A point-to-point inter-GPU link: per-direction bandwidth and latency."""

    name: str
    bandwidth: float  # bytes/second, per direction
    latency: float  # seconds, one-way
    #: Protocol efficiency: fraction of raw bandwidth usable as payload.
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 and not math.isinf(self.bandwidth):
            raise ConfigError("link bandwidth must be positive")
        if not 0 < self.efficiency <= 1.0:
            raise ConfigError("link efficiency must be in (0, 1]")
        if self.latency < 0:
            raise ConfigError("link latency cannot be negative")

    @property
    def effective_bandwidth(self) -> float:
        """Payload bandwidth after protocol overhead."""
        return self.bandwidth * self.efficiency


# -- interconnect generations used in the evaluation --------------------------
# PCIe per-direction x16 payload bandwidths; PCIe 6.0 per paper section 7.3
# "operating at 128GB/s". The infinite link is the upper-bound comparison.
PCIE3 = LinkConfig("PCIe 3.0", bandwidth=16 * GB_S, latency=1.4 * US, efficiency=0.85)
PCIE4 = LinkConfig("PCIe 4.0", bandwidth=32 * GB_S, latency=1.2 * US, efficiency=0.85)
PCIE5 = LinkConfig("PCIe 5.0", bandwidth=64 * GB_S, latency=1.0 * US, efficiency=0.85)
PCIE6 = LinkConfig("PCIe 6.0 (projected)", bandwidth=128 * GB_S, latency=0.8 * US, efficiency=0.9)
NVLINK2 = LinkConfig("NVLink 2", bandwidth=150 * GB_S, latency=0.7 * US, efficiency=0.92)
NVLINK3 = LinkConfig("NVLink 3", bandwidth=300 * GB_S, latency=0.6 * US, efficiency=0.92)
INFINITE_LINK = LinkConfig("Infinite", bandwidth=math.inf, latency=0.0)

LINKS_BY_NAME = {
    "pcie3": PCIE3,
    "pcie4": PCIE4,
    "pcie5": PCIE5,
    "pcie6": PCIE6,
    "nvlink2": NVLINK2,
    "nvlink3": NVLINK3,
    "infinite": INFINITE_LINK,
}


@dataclass(frozen=True)
class UMConfig:
    """Unified Memory cost parameters (fault-based and hint-based migration).

    The fault latency covers GPU fault delivery, host driver handling, and
    TLB invalidation; public measurements place the end-to-end cost in the
    20-50 us range, and batching amortises some of it.
    """

    fault_latency: float = 25 * US
    #: Cost of the TLB shootdown triggered when a read-duplicated page
    #: collapses on a write (paper section 2.1).
    shootdown_latency: float = 8 * US
    #: Fraction of hint-driven prefetch traffic that overlaps prior compute.
    prefetch_overlap: float = 0.30
    #: Faults the driver services per stall episode; real UM batches
    #: neighbouring faults, amortising the per-fault latency.
    fault_batch: int = 8
    #: Fault-storm saturation: the driver pipelines concurrent faults, so
    #: the serial stall grows as ``latency * m / (1 + m / saturation)`` —
    #: linear for small fault counts, capped near ``latency * saturation``
    #: for storms (the driver's batch-service ceiling).
    fault_storm_saturation: int = 48
    #: Achieved fraction of link bandwidth for page-sized migration DMA
    #: (small transfers plus driver bookkeeping).
    migration_efficiency: float = 0.45


@dataclass(frozen=True)
class SystemConfig:
    """A whole multi-GPU system: GPUs, interconnect, GPS and UM parameters."""

    num_gpus: int = 4
    gpu: GPUConfig = field(default_factory=GPUConfig)
    link: LinkConfig = PCIE6
    gps: GPSConfig = field(default_factory=GPSConfig)
    um: UMConfig = field(default_factory=UMConfig)
    #: Fraction of remote-load latency hidden by warp-level multithreading
    #: in the RDL paradigm (0 = fully exposed, 1 = fully hidden).
    rdl_latency_hiding: float = 0.55

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError("a system needs at least one GPU")
        if not 0 <= self.rdl_latency_hiding < 1:
            raise ConfigError("rdl_latency_hiding must be in [0, 1)")

    @property
    def page_size(self) -> int:
        """Page size shared by the conventional and GPS address spaces."""
        return self.gps.page_size

    def with_link(self, link: LinkConfig) -> "SystemConfig":
        """Return a copy of this system using a different interconnect."""
        return dataclasses.replace(self, link=link)

    def with_num_gpus(self, num_gpus: int) -> "SystemConfig":
        """Return a copy of this system with a different GPU count."""
        return dataclasses.replace(self, num_gpus=num_gpus)

    def with_page_size(self, page_size: int) -> "SystemConfig":
        """Return a copy of this system with a different page size."""
        return dataclasses.replace(self, gps=dataclasses.replace(self.gps, page_size=page_size))


def default_system(num_gpus: int = 4, link: LinkConfig = PCIE6) -> SystemConfig:
    """The evaluation system: ``num_gpus`` GV100s on the given interconnect."""
    return SystemConfig(num_gpus=num_gpus, link=link)


# -- canonical config fingerprinting ------------------------------------------

#: Bump when a :class:`SystemConfig` field changes *meaning* (not value):
#: fingerprints embed this, so every cached simulation result keyed on the
#: old interpretation invalidates at once.
CONFIG_SCHEMA_VERSION = 1


def config_fingerprint(config: SystemConfig, *, extra=None) -> str:
    """Complete, canonical, order-stable fingerprint of a :class:`SystemConfig`.

    Every field of the config — including all nested :class:`GPUConfig`,
    :class:`GPSConfig`, :class:`LinkConfig`, and :class:`UMConfig` knobs —
    participates via :func:`dataclasses.asdict`, so two configs differing in
    *any* field hash differently. The JSON canonicalisation sorts keys and
    uses Python's shortest-roundtrip float repr, making the digest stable
    across processes and platforms. ``extra`` (any JSON-able value) is folded
    in verbatim; the memoised runner uses it to scope keys by workload,
    paradigm, and model version.
    """
    payload = {
        "schema": CONFIG_SCHEMA_VERSION,
        "config": dataclasses.asdict(config),
    }
    if extra is not None:
        payload["extra"] = extra
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
