"""Sanitizer self-validation: the analyzer is itself under test.

The differential harness (:mod:`repro.verify.differential`) trusts the
static analyzer: fuzzed programs are analyzer-clean by construction, so a
broken rule would silently stop guarding anything. This module closes that
loop with a mutation harness over the same fuzz corpus:

* **clean programs stay clean** — no error or warning diagnostics, no
  paradigm marked unsafe, :func:`repro.analysis.fix_program` is the
  identity (same object), and the simulation both passes the invariant
  oracle and produces a byte-identical payload when rerun through the fix
  engine's output;
* **injected defects are caught** — each mutator plants one known defect
  class (write-write race, uninitialized read, stale subscription, weak
  flag store, sys-scoped data access, atomic/plain mix) and the harness
  asserts the expected rule fires *with a concrete witness*;
* **the gate is consistent** — for every paradigm,
  :func:`repro.analysis.check_program` raises exactly when
  :func:`repro.analysis.blocking_diagnostics` reports a blocker, and every
  paradigm the rule-impact table marks unsafe is in fact refused;
* **fixes converge** — auto-repair at the rule's own severity reaches a
  fixed point and the expected code no longer fires on the repaired
  program.

``repro verify --sanitizer`` drives this from the command line; the CI
verify job runs it next to the differential harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..analysis import (
    ALL_PARADIGMS,
    UNSAFE,
    Diagnostic,
    Severity,
    analyze_program,
    blocking_diagnostics,
    check_program,
    clear_cache,
    fix_program,
    portability_report,
    rule_impact,
)
from ..analysis.engine import DEFAULT_PAGE_SIZE
from ..analysis.rules import RULES
from ..config import LINKS_BY_NAME, default_system
from ..errors import AnalysisError
from ..system.executor import simulate
from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec, Scope
from .differential import canonical_payload
from .fuzzer import generate_program
from .oracle import check_result

#: Sequential fill pattern used by every injected kernel.
_PATTERN = PatternSpec(PatternKind.SEQUENTIAL, bytes_per_txn=128, seed=7)


def _kernel(name: str, gpu: int, accesses: "tuple[AccessRange, ...]") -> KernelSpec:
    return KernelSpec(name=name, gpu=gpu, compute_ops=0.0, accesses=accesses)


def _max_iteration(program: TraceProgram) -> int:
    return max((p.iteration for p in program.phases), default=0)


def _profile_iteration(program: TraceProgram) -> "int | None":
    iterations = sorted({p.iteration for p in program.phases if p.iteration >= 0})
    return iterations[0] if iterations else None


def _with_extra_buffer(
    program: TraceProgram, buffer: BufferSpec, phases: "list[tuple[int | None, Phase]]"
) -> TraceProgram:
    """Clone ``program`` with one more buffer and extra phases.

    ``phases`` holds ``(index, phase)`` pairs; ``None`` appends at the end.
    Indices refer to the *original* phase list and are applied in order.
    """
    out = list(program.phases)
    for index, phase in phases:
        if index is None:
            out.append(phase)
        else:
            out.insert(index, phase)
    return TraceProgram(
        name=f"{program.name}+mut",
        num_gpus=program.num_gpus,
        buffers=program.buffers + (buffer,),
        phases=tuple(out),
        metadata=dict(program.metadata),
    )


def _mut_ww_overlap(
    program: TraceProgram, page_size: int
) -> "TraceProgram | None":
    """Two GPUs plain-weak-write the same page in one phase -> GPS001."""
    if program.num_gpus < 2:
        return None
    buffer = BufferSpec("mut_race", 2 * page_size)

    def write(gpu: int) -> KernelSpec:
        return _kernel(
            f"mut_race_gpu{gpu}",
            gpu,
            (AccessRange("mut_race", 0, page_size, MemOp.WRITE, _PATTERN),),
        )

    phase = Phase(
        "mut.race", (write(0), write(1)), iteration=_max_iteration(program)
    )
    return _with_extra_buffer(program, buffer, [(None, phase)])


def _mut_uninit_read(
    program: TraceProgram, page_size: int
) -> "TraceProgram | None":
    """A read of a buffer nothing ever wrote -> GPS003."""
    buffer = BufferSpec("mut_uninit", page_size)
    phase = Phase(
        "mut.uninit",
        (
            _kernel(
                "mut_uninit_gpu0",
                0,
                (AccessRange("mut_uninit", 0, page_size, MemOp.READ, _PATTERN),),
            ),
        ),
        iteration=_max_iteration(program),
    )
    return _with_extra_buffer(program, buffer, [(None, phase)])


def _mut_stale_read(
    program: TraceProgram, page_size: int
) -> "TraceProgram | None":
    """A steady-iteration read of pages untouched while profiling -> GPS006.

    GPU 0 initialises and keeps rewriting the buffer; GPU 1 first reads it
    only *after* the profile iteration, so automatic subscription tracking
    would already have unsubscribed GPU 1 from those pages.
    """
    if program.num_gpus < 2:
        return None
    profile = _profile_iteration(program)
    last = _max_iteration(program)
    if profile is None or last <= profile:
        return None
    size = 2 * page_size
    buffer = BufferSpec("mut_stale", size)
    setup = Phase(
        "mut.stale.setup",
        (
            _kernel(
                "mut_stale_init_gpu0",
                0,
                (AccessRange("mut_stale", 0, size, MemOp.WRITE, _PATTERN),),
            ),
        ),
        iteration=-1,
    )
    profile_write = Phase(
        "mut.stale.profile",
        (
            _kernel(
                "mut_stale_write_gpu0",
                0,
                (AccessRange("mut_stale", 0, size, MemOp.WRITE, _PATTERN),),
            ),
        ),
        iteration=profile,
    )
    stale_read = Phase(
        "mut.stale.read",
        (
            _kernel(
                "mut_stale_read_gpu1",
                1,
                (AccessRange("mut_stale", 0, page_size, MemOp.READ, _PATTERN),),
            ),
        ),
        iteration=last,
    )
    # The profile-iteration write slots in right after the existing setup
    # phases so iteration labels stay nondecreasing in program order.
    first_steady = next(
        (i for i, p in enumerate(program.phases) if p.iteration > profile),
        len(program.phases),
    )
    return _with_extra_buffer(
        program,
        buffer,
        [(0, setup), (first_steady + 1, profile_write), (None, stale_read)],
    )


def _mut_weak_flag(
    program: TraceProgram, page_size: int
) -> "TraceProgram | None":
    """A weak-scoped store to a sync buffer -> GPS005."""
    buffer = BufferSpec("mut_flag", page_size, sync=True)
    phase = Phase(
        "mut.flag",
        (
            _kernel(
                "mut_flag_gpu0",
                0,
                (AccessRange("mut_flag", 0, 128, MemOp.WRITE, _PATTERN, Scope.WEAK),),
            ),
        ),
        iteration=_max_iteration(program),
    )
    return _with_extra_buffer(program, buffer, [(None, phase)])


def _mut_sys_data(
    program: TraceProgram, page_size: int
) -> "TraceProgram | None":
    """The program's first access flipped to SYS scope -> GPS004.

    Fuzzed programs declare no sync buffers and keep every access weak, so
    the first access always qualifies; the planned fix (set the scope back
    to weak) must restore the original program bit-for-bit.
    """
    state = {"done": False}

    def flip(
        phase_index: int, kernel: KernelSpec, access_index: int, access: AccessRange
    ) -> "AccessRange | None":
        if state["done"] or access.scope is not Scope.WEAK:
            return None
        state["done"] = True
        return AccessRange(
            access.buffer,
            access.offset,
            access.length,
            access.op,
            access.pattern,
            Scope.SYS,
            access.repeat,
        )

    mutated = program.rewrite_accesses(flip)
    return None if mutated is program else mutated


def _mut_atomic_mix(
    program: TraceProgram, page_size: int
) -> "TraceProgram | None":
    """Concurrent atomic and plain stores on one page -> GPS007."""
    if program.num_gpus < 2:
        return None
    buffer = BufferSpec("mut_mix", page_size)
    setup = Phase(
        "mut.mix.setup",
        (
            _kernel(
                "mut_mix_init_gpu0",
                0,
                (AccessRange("mut_mix", 0, page_size, MemOp.WRITE, _PATTERN),),
            ),
        ),
        iteration=-1,
    )
    phase = Phase(
        "mut.mix",
        (
            _kernel(
                "mut_mix_gpu0",
                0,
                (AccessRange("mut_mix", 0, page_size, MemOp.WRITE, _PATTERN),),
            ),
            _kernel(
                "mut_mix_gpu1",
                1,
                (AccessRange("mut_mix", 0, page_size, MemOp.ATOMIC, _PATTERN),),
            ),
        ),
        iteration=_max_iteration(program),
    )
    return _with_extra_buffer(program, buffer, [(0, setup), (None, phase)])


#: ``(name, expected rule code, mutator)`` — one entry per defect class.
MUTATORS: "tuple[tuple[str, str, Callable[[TraceProgram, int], TraceProgram | None]], ...]" = (
    ("ww-overlap", "GPS001", _mut_ww_overlap),
    ("uninit-read", "GPS003", _mut_uninit_read),
    ("stale-read", "GPS006", _mut_stale_read),
    ("weak-flag", "GPS005", _mut_weak_flag),
    ("sys-data", "GPS004", _mut_sys_data),
    ("atomic-mix", "GPS007", _mut_atomic_mix),
)


@dataclass(slots=True)
class SanitizerReport:
    """Outcome of one :func:`run_sanitizer` sweep."""

    cases: int = 0
    mutants: "dict[str, int]" = field(default_factory=dict)
    failures: "list[str]" = field(default_factory=list)

    @property
    def mutants_checked(self) -> int:
        return sum(self.mutants.values())

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "mutants": dict(sorted(self.mutants.items())),
            "mutants_checked": self.mutants_checked,
            "failures": list(self.failures),
            "ok": self.ok,
        }


def _gate_raises(program: TraceProgram, paradigm: str, page_size: int) -> bool:
    try:
        check_program(program, page_size=page_size, paradigm=paradigm)
    except AnalysisError:
        return True
    return False


def _check_clean(
    report: SanitizerReport,
    seed: int,
    program: TraceProgram,
    diagnostics: "list[Diagnostic]",
    page_size: int,
    config,
    simulate_clean: bool,
) -> None:
    """Clean-program obligations: quiet analyzer, identity fix, happy oracle."""
    fail = report.failures.append
    loud = [d for d in diagnostics if d.severity.rank >= Severity.WARNING.rank]
    if loud:
        fail(f"seed {seed}: clean program not strict-clean: {loud[0]}")
    unsafe = portability_report(program, diagnostics).unsafe_paradigms()
    if unsafe:
        fail(f"seed {seed}: clean program marked unsafe for {unsafe}")
    fixed = fix_program(program, page_size=page_size)
    if fixed.changed or fixed.program is not program:
        fail(f"seed {seed}: fix engine touched an already-clean program")
    if not simulate_clean:
        return
    result = simulate(program, "gps", config)
    violations = check_result(result, config)
    if violations:
        fail(f"seed {seed}: analyzer-clean program fails the oracle: {violations[0]}")
    replay = canonical_payload(simulate(fixed.program, "gps", config))
    if replay != canonical_payload(result):
        fail(f"seed {seed}: fix-identity program's payload is not byte-identical")


def _check_mutant(
    report: SanitizerReport,
    seed: int,
    name: str,
    code: str,
    mutant: TraceProgram,
    page_size: int,
) -> None:
    """Mutant obligations: flagged with a witness, gated consistently, fixed."""
    fail = report.failures.append
    label = f"seed {seed}/{name}"
    diagnostics = analyze_program(mutant, page_size=page_size)
    hits = [d for d in diagnostics if d.code == code]
    if not hits:
        fail(f"{label}: expected {code}, analyzer reported "
             f"{sorted({d.code for d in diagnostics})}")
        return
    for hit in hits:
        if hit.witness is None or not hit.witness.site.kernel:
            fail(f"{label}: {code} diagnostic lacks a concrete witness")
            return

    severity = RULES[code].severity
    blocked = {
        paradigm
        for paradigm in ALL_PARADIGMS
        if _gate_raises(mutant, paradigm, page_size)
    }
    expected_blocked = {
        paradigm
        for paradigm in ALL_PARADIGMS
        if blocking_diagnostics(diagnostics, paradigm)
    }
    if blocked != expected_blocked:
        fail(f"{label}: gate refused {sorted(blocked)} but diagnostics "
             f"block {sorted(expected_blocked)}")
    if severity is Severity.ERROR:
        must_block = {
            paradigm
            for paradigm, verdict in rule_impact(code, severity).items()
            if verdict == UNSAFE
        }
        if not must_block <= blocked:
            fail(f"{label}: {code} should refuse {sorted(must_block)}, "
                 f"gate refused {sorted(blocked)}")

    fixed = fix_program(mutant, page_size=page_size, min_severity=severity)
    if not fixed.converged:
        fail(f"{label}: fix engine did not converge ({fixed.rounds} rounds)")
        return
    after = analyze_program(fixed.program, page_size=page_size)
    if any(d.code == code for d in after):
        fail(f"{label}: {code} still fires after {len(fixed.applied)} fix(es)")


def run_sanitizer(
    *,
    seed: int = 0,
    cases: int = 10,
    num_gpus: int = 4,
    scale: float = 0.25,
    iterations: int = 2,
    link: str = "pcie6",
    page_size: int = DEFAULT_PAGE_SIZE,
    simulate_clean: bool = True,
    progress: "Optional[Callable[[str], None]]" = None,
) -> SanitizerReport:
    """Run the sanitizer self-validation sweep over ``cases`` fuzz seeds.

    Every seed is checked clean (analyzer, portability, fix identity,
    oracle, byte-identical replay), then each applicable mutator's defect
    is injected and must be flagged, gated, and repaired. Deterministic:
    the same arguments always test the same programs and mutants.
    """
    report = SanitizerReport()
    config = default_system(num_gpus, LINKS_BY_NAME[link])
    clear_cache()
    for case_seed in range(seed, seed + cases):
        program = generate_program(
            case_seed, num_gpus, scale=scale, iterations=iterations
        )
        diagnostics = analyze_program(program, page_size=page_size)
        _check_clean(
            report, case_seed, program, diagnostics, page_size, config,
            simulate_clean,
        )
        report.cases += 1
        for name, code, mutator in MUTATORS:
            mutant = mutator(program, page_size)
            if mutant is None:
                continue
            report.mutants[name] = report.mutants.get(name, 0) + 1
            _check_mutant(report, case_seed, name, code, mutant, page_size)
        if progress is not None:
            state = "ok" if report.ok else f"{len(report.failures)} failure(s)"
            progress(f"seed {case_seed}: {len(MUTATORS)} mutator(s), {state}")
    return report


__all__ = ["MUTATORS", "SanitizerReport", "run_sanitizer"]
