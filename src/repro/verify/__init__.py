"""repro.verify: invariant oracle, fuzzer, and differential conformance.

Three cooperating pieces keep the simulator honest:

* :mod:`repro.verify.oracle` — a catalogue of model-correctness laws every
  simulation must satisfy (byte conservation, timeline tiling, paradigm
  bounds), checked per result, per live execution, and across paradigm
  families;
* :mod:`repro.verify.fuzzer` — a seeded generator of well-formed,
  analyzer-clean trace programs, registered as the ``fuzz/<seed>`` workload
  family so any process can rebuild them by name;
* :mod:`repro.verify.differential` — the harness that pushes each fuzzed
  program through all five execution paths (direct, disk cache, result
  store, process pool, live service) and asserts byte-identical results
  plus metamorphic relations.

``repro verify`` on the command line drives all three and writes
machine-readable failure-repro artifacts (:mod:`repro.verify.artifact`)
with greedily minimised programs (:mod:`repro.verify.minimize`).
"""

from .artifact import (
    ARTIFACT_VERSION,
    artifact_program,
    build_artifact,
    load_artifact,
    replay_violations,
    write_artifact,
)
from .differential import (
    DEFAULT_PARADIGMS,
    PATHS,
    CaseReport,
    ServiceHandle,
    VerifyReport,
    canonical_payload,
    run_differential,
)
from .fuzzer import FuzzSpec, FuzzWorkload, generate_program, is_fuzz_workload
from .minimize import minimize_program, shrink_stats
from .oracle import (
    ORACLE_CHECKS,
    Violation,
    check_execution,
    check_family,
    check_result,
    oracle_catalogue,
)
from .sanitizer import MUTATORS, SanitizerReport, run_sanitizer

__all__ = [
    "ARTIFACT_VERSION",
    "DEFAULT_PARADIGMS",
    "MUTATORS",
    "ORACLE_CHECKS",
    "PATHS",
    "CaseReport",
    "FuzzSpec",
    "FuzzWorkload",
    "SanitizerReport",
    "ServiceHandle",
    "VerifyReport",
    "Violation",
    "artifact_program",
    "build_artifact",
    "canonical_payload",
    "check_execution",
    "check_family",
    "check_result",
    "generate_program",
    "is_fuzz_workload",
    "load_artifact",
    "minimize_program",
    "oracle_catalogue",
    "replay_violations",
    "run_differential",
    "run_sanitizer",
    "shrink_stats",
    "write_artifact",
]
