"""The invariant oracle: model-correctness laws over simulation results.

Three layers of checkers, mirroring how much context is available:

* **result checks** — laws any :class:`SimulationResult` must satisfy in
  isolation (conservation between the traffic matrix and the link
  counters, phase timeline tiling, counter sanity, exact serialisation
  round-trip);
* **execution checks** — laws that need the live executor (span coverage
  of the reported makespan, per-track span exclusivity, span/busy-time
  conservation, schedule-digest stability);
* **family checks** — cross-paradigm laws over one program simulated under
  several paradigms (infinite bandwidth lower-bounds every real config,
  GPS subscription tracking never *adds* traffic, GPS never moves more
  bytes than memcpy's broadcast).

Checkers are registered in a flat catalogue (``ORACLE_CHECKS``) like the
static analyzer's rules, so ``repro verify`` can report which law failed by
stable name and docs/VERIFY.md can enumerate them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..config import SystemConfig
from ..system.results import SimulationResult

#: Relative tolerance for float comparisons between independently
#: accumulated quantities (sums taken in different orders).
REL_EPS = 1e-9

#: Paradigms whose executors take page faults.
_FAULTING = {"um", "um_hints"}


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


CheckFn = Callable[..., Iterable[Violation]]

#: name -> (layer, check function); layers: result | execution | family.
ORACLE_CHECKS: "dict[str, tuple[str, CheckFn]]" = {}


def invariant(name: str, layer: str = "result"):
    """Decorator registering one oracle checker under a stable name."""

    def register(fn: CheckFn) -> CheckFn:
        if name in ORACLE_CHECKS:
            raise ValueError(f"duplicate oracle check {name!r}")
        ORACLE_CHECKS[name] = (layer, fn)
        return fn

    return register


def _close(a: float, b: float, scale: float = 1.0) -> bool:
    return abs(a - b) <= REL_EPS * max(1.0, abs(a), abs(b), abs(scale))


# -- result checks -------------------------------------------------------------


@invariant("total-time-sane")
def check_total_time(result: SimulationResult, config=None) -> Iterator[Violation]:
    """The makespan is a finite, non-negative number."""
    t = result.total_time
    if not isinstance(t, (int, float)) or not math.isfinite(t) or t < 0:
        yield Violation("total-time-sane", f"total_time is {t!r}")


@invariant("traffic-matrix-wellformed")
def check_traffic_matrix(result: SimulationResult, config=None) -> Iterator[Violation]:
    """The byte matrix is square, non-negative, and zero on the diagonal.

    The matrix is sized by the *system* (which may have more GPUs than the
    program uses), so its side must be square and at least the program's
    GPU count — and must match the config exactly when one is supplied.
    """
    rows = result.traffic.as_lists()
    n = len(rows)
    if n < result.num_gpus or any(len(row) != n for row in rows):
        yield Violation(
            "traffic-matrix-wellformed",
            f"traffic matrix side {n} is not square or is smaller than the "
            f"program's {result.num_gpus} GPUs",
        )
        return
    if config is not None and n != config.num_gpus:
        yield Violation(
            "traffic-matrix-wellformed",
            f"traffic matrix side {n} does not match the system's "
            f"{config.num_gpus} GPUs",
        )
    for src, row in enumerate(rows):
        for dst, value in enumerate(row):
            if value < 0:
                yield Violation(
                    "traffic-matrix-wellformed",
                    f"negative traffic {value} for {src}->{dst}",
                )
            if src == dst and value != 0:
                yield Violation(
                    "traffic-matrix-wellformed",
                    f"self-traffic {value} B on GPU {src}'s diagonal",
                )


@invariant("wire-byte-conservation")
def check_wire_conservation(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Bytes on the wire agree between the traffic matrix and link counters.

    Every transfer is double-entry bookkeeping: the executor records it in
    the traffic matrix *and* on the ``link.*`` counters. A divergence means
    some path adds bytes to one ledger only — the exact bug class a counter
    refactor can introduce silently.
    """
    counters = result.counters
    rows = result.traffic.as_lists()
    total = result.traffic.total_bytes()
    if counters.get("link.bytes", 0) != total:
        yield Violation(
            "wire-byte-conservation",
            f"link.bytes={counters.get('link.bytes', 0)} but traffic matrix "
            f"holds {total} B",
        )
    for gpu in range(len(rows)):
        egress = sum(rows[gpu])
        ingress = sum(row[gpu] for row in rows)
        c_egress = counters.get(f"link.egress{gpu}.bytes", 0)
        c_ingress = counters.get(f"link.ingress{gpu}.bytes", 0)
        if c_egress != egress:
            yield Violation(
                "wire-byte-conservation",
                f"link.egress{gpu}.bytes={c_egress} but traffic row sums to {egress}",
            )
        if c_ingress != ingress:
            yield Violation(
                "wire-byte-conservation",
                f"link.ingress{gpu}.bytes={c_ingress} but traffic column sums to {ingress}",
            )


@invariant("counters-finite-nonnegative")
def check_counters_sane(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Every hardware counter is a finite, non-negative number."""
    for name, value in result.counters.items():
        if not isinstance(value, (int, float)) or not math.isfinite(value) or value < 0:
            yield Violation(
                "counters-finite-nonnegative", f"counter {name} = {value!r}"
            )


@invariant("gpu-rollup-conservation")
def check_rollups(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Per-GPU scoped counters sum exactly to their system-wide roll-up."""
    sums: "dict[str, float]" = {}
    for name, value in result.counters.items():
        head, _, rest = name.partition(".")
        if rest and head.startswith("gpu") and head[3:].isdigit():
            sums[rest] = sums.get(rest, 0) + value
    for base, total in sorted(sums.items()):
        aggregate = result.counters.get(base)
        if aggregate is None:
            yield Violation(
                "gpu-rollup-conservation", f"scoped counter {base} has no roll-up"
            )
        elif not _close(aggregate, total):
            yield Violation(
                "gpu-rollup-conservation",
                f"{base}: roll-up {aggregate} != per-GPU sum {total}",
            )


@invariant("phase-timeline-tiles")
def check_phase_timeline(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Phase windows tile [0, total_time] contiguously and in order."""
    phases = result.phases
    if not phases:
        return
    cursor = 0.0
    for phase in phases:
        if not _close(phase.start, cursor, result.total_time):
            yield Violation(
                "phase-timeline-tiles",
                f"phase {phase.name!r} starts at {phase.start}, expected {cursor}",
            )
        if phase.end < phase.start:
            yield Violation(
                "phase-timeline-tiles",
                f"phase {phase.name!r} ends ({phase.end}) before it starts ({phase.start})",
            )
        cursor = phase.end
    if not _close(cursor, result.total_time):
        yield Violation(
            "phase-timeline-tiles",
            f"last phase ends at {cursor} but total_time is {result.total_time}",
        )


@invariant("phase-breakdown-sane")
def check_phase_breakdown(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Within each phase, component times fit inside the phase window."""
    for phase in result.phases:
        duration = phase.end - phase.start
        if phase.kernel_time < 0 or phase.exposed_transfer_time < 0:
            yield Violation(
                "phase-breakdown-sane",
                f"phase {phase.name!r} has negative components "
                f"(kernel {phase.kernel_time}, exposed {phase.exposed_transfer_time})",
            )
        if phase.kernel_time > duration * (1 + REL_EPS) + REL_EPS:
            yield Violation(
                "phase-breakdown-sane",
                f"phase {phase.name!r}: kernel_time {phase.kernel_time} exceeds "
                f"duration {duration}",
            )


@invariant("write-queue-accounting")
def check_write_queue(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Write-queue ledgers balance: every store is a hit or an insert."""
    for gpu, stats in enumerate(result.write_queue_stats):
        if stats.coalesced_hits + stats.inserts != stats.stores_seen:
            yield Violation(
                "write-queue-accounting",
                f"gpu{gpu}: hits {stats.coalesced_hits} + inserts {stats.inserts} "
                f"!= stores_seen {stats.stores_seen}",
            )
        if stats.bytes_out > stats.bytes_in:
            yield Violation(
                "write-queue-accounting",
                f"gpu{gpu}: bytes_out {stats.bytes_out} exceeds bytes_in {stats.bytes_in}",
            )
        if min(
            stats.stores_seen, stats.coalesced_hits, stats.inserts,
            stats.watermark_drains, stats.flush_drains, stats.atomics_bypassed,
            stats.bytes_in, stats.bytes_out, stats.atomic_bytes,
        ) < 0:
            yield Violation("write-queue-accounting", f"gpu{gpu}: negative counter")
        if stats.atomic_bytes > min(stats.bytes_in, stats.bytes_out):
            # Atomic bypass traffic is counted inside both ledgers, so it
            # can never exceed either; a violation means the carve-out that
            # feeds bandwidth_reduction is double-counting.
            yield Violation(
                "write-queue-accounting",
                f"gpu{gpu}: atomic_bytes {stats.atomic_bytes} exceeds "
                f"bytes_in {stats.bytes_in} or bytes_out {stats.bytes_out}",
            )


@invariant("gps-tlb-accounting")
def check_gps_tlb(result: SimulationResult, config=None) -> Iterator[Violation]:
    """GPS-TLB counters are consistent (evictions never exceed misses)."""
    for gpu, stats in enumerate(result.gps_tlb_stats):
        if min(stats.hits, stats.misses, stats.evictions) < 0:
            yield Violation("gps-tlb-accounting", f"gpu{gpu}: negative TLB counter")
        if stats.evictions > stats.misses:
            yield Violation(
                "gps-tlb-accounting",
                f"gpu{gpu}: evictions {stats.evictions} exceed misses {stats.misses}",
            )


@invariant("subscriber-histogram-sane")
def check_subscriber_histogram(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Histogram keys are subscriber counts within the system's GPU count."""
    limit = max(result.num_gpus, len(result.traffic.as_lists()))
    for count, pages in result.subscriber_histogram.items():
        if not 0 <= count <= limit:
            yield Violation(
                "subscriber-histogram-sane",
                f"subscriber count {count} outside [0, {limit}]",
            )
        if pages < 0:
            yield Violation(
                "subscriber-histogram-sane",
                f"negative page count {pages} for subscriber count {count}",
            )


@invariant("fault-accounting")
def check_faults(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Fault counters are non-negative and only fault paradigms take them."""
    if result.fault_count < 0 or result.pages_migrated < 0:
        yield Violation(
            "fault-accounting",
            f"negative fault accounting ({result.fault_count}, {result.pages_migrated})",
        )
    if result.paradigm not in _FAULTING and result.fault_count:
        yield Violation(
            "fault-accounting",
            f"paradigm {result.paradigm!r} reports {result.fault_count} faults",
        )


@invariant("single-gpu-no-traffic")
def check_single_gpu(result: SimulationResult, config=None) -> Iterator[Violation]:
    """A one-GPU run has no interconnect to move bytes over.

    Only meaningful when the *system* has one GPU too — a 1-GPU program on
    a larger system can still broadcast to permanently subscribed peers.
    """
    if (
        result.num_gpus == 1
        and len(result.traffic.as_lists()) == 1
        and result.interconnect_bytes != 0
    ):
        yield Violation(
            "single-gpu-no-traffic",
            f"1-GPU run moved {result.interconnect_bytes} B over the interconnect",
        )


@invariant("serialization-roundtrip")
def check_roundtrip(result: SimulationResult, config=None) -> Iterator[Violation]:
    """``to_dict`` survives JSON and ``from_dict`` byte-identically.

    This is the exact property the disk cache, the process pool, and the
    service all rely on; a result that fails it will diverge across
    execution paths even when the simulation itself is deterministic.
    """
    first = result.to_dict()
    wire = json.dumps(first, sort_keys=True)
    second = SimulationResult.from_dict(json.loads(wire)).to_dict()
    if json.dumps(second, sort_keys=True) != wire:
        yield Violation(
            "serialization-roundtrip", "to_dict -> JSON -> from_dict is not lossless"
        )


@invariant("schedule-digest-present")
def check_digest(result: SimulationResult, config=None) -> Iterator[Violation]:
    """Every executor-produced result carries its 64-hex schedule digest."""
    digest = result.extras.get("schedule_digest")
    if not isinstance(digest, str) or len(digest) != 64 or not all(
        c in "0123456789abcdef" for c in digest
    ):
        yield Violation(
            "schedule-digest-present", f"schedule_digest is {digest!r}"
        )


@invariant("infinite-bandwidth-free-wire")
def check_infinite_bandwidth(
    result: SimulationResult, config: "SystemConfig | None" = None
) -> Iterator[Violation]:
    """On an infinite link, no phase exposes communication time.

    Transfers cost zero on an infinite-bandwidth, zero-latency link, so the
    entire makespan must be kernel time plus barrier overhead — if exposed
    transfer time appears, the config's link was not honoured.
    """
    if config is None or not math.isinf(config.link.bandwidth) or config.link.latency:
        return
    for phase in result.phases:
        sync = 10e-6 if result.num_gpus > 1 else 0.0  # PHASE_SYNC_OVERHEAD
        if phase.exposed_transfer_time > sync * (1 + REL_EPS) + REL_EPS:
            yield Violation(
                "infinite-bandwidth-free-wire",
                f"phase {phase.name!r} exposes {phase.exposed_transfer_time}s of "
                "transfer on an infinite link",
            )


# -- execution checks ----------------------------------------------------------


@invariant("spans-cover-makespan", layer="execution")
def check_span_coverage(executor, result: SimulationResult) -> Iterator[Violation]:
    """Every span fits inside [0, total_time]; the makespan is reached."""
    spans = executor.collector.spans
    latest = 0.0
    for span in spans:
        if span.start < -REL_EPS or span.end < span.start:
            yield Violation(
                "spans-cover-makespan", f"span {span.name!r} has window "
                f"[{span.start}, {span.end}]"
            )
        if span.end > result.total_time * (1 + REL_EPS) + REL_EPS:
            yield Violation(
                "spans-cover-makespan",
                f"span {span.name!r} ends at {span.end}, after total_time "
                f"{result.total_time}",
            )
        latest = max(latest, span.end)
    if spans and result.total_time > 0 and latest < result.total_time * 0.5:
        yield Violation(
            "spans-cover-makespan",
            f"spans end at {latest} but total_time is {result.total_time}: "
            "over half the timeline has no scheduled work",
        )


@invariant("spans-exclusive-per-track", layer="execution")
def check_span_exclusivity(executor, result: SimulationResult) -> Iterator[Violation]:
    """Spans on one track (resource) never overlap: resources serialise."""
    for track, spans in executor.collector.by_track().items():
        ordered = sorted(spans, key=lambda s: (s.start, s.end))
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end - REL_EPS * max(1.0, prev.end):
                yield Violation(
                    "spans-exclusive-per-track",
                    f"track {track!r}: {prev.name!r} [{prev.start}, {prev.end}] "
                    f"overlaps {cur.name!r} [{cur.start}, {cur.end}]",
                )
                break


@invariant("span-busy-conservation", layer="execution")
def check_busy_conservation(executor, result: SimulationResult) -> Iterator[Violation]:
    """Per resource, span durations sum to the resource's busy time."""
    busy: "dict[str, float]" = {}
    for span in executor.collector.spans:
        busy[span.track] = busy.get(span.track, 0.0) + (span.end - span.start)
    for name, resource in sorted(executor.engine._resources.items()):
        recorded = busy.get(name, 0.0)
        if not _close(recorded, resource.busy_time, result.total_time):
            yield Violation(
                "span-busy-conservation",
                f"resource {name!r}: spans cover {recorded}s of busy time "
                f"but the resource accumulated {resource.busy_time}s",
            )


@invariant("schedule-digest-stable", layer="execution")
def check_digest_stability(executor, result: SimulationResult) -> Iterator[Violation]:
    """The digest in the result matches a recomputation from the engine."""
    digest = executor.schedule_digest()
    if result.extras.get("schedule_digest") != digest:
        yield Violation(
            "schedule-digest-stable",
            f"result carries digest {result.extras.get('schedule_digest')!r} but "
            f"the engine recomputes {digest!r}",
        )


# -- family checks -------------------------------------------------------------


@invariant("infinite-lower-bound", layer="family")
def check_infinite_lower_bound(
    results: "dict[str, SimulationResult]",
) -> Iterator[Violation]:
    """Infinite bandwidth lower-bounds every real configuration (section 6)."""
    infinite = results.get("infinite")
    if infinite is None:
        return
    for paradigm, result in sorted(results.items()):
        if result.total_time < infinite.total_time * (1 - REL_EPS) - REL_EPS:
            yield Violation(
                "infinite-lower-bound",
                f"{paradigm} finished in {result.total_time}s, faster than the "
                f"infinite-bandwidth bound {infinite.total_time}s",
            )


@invariant("subscription-never-adds-traffic", layer="family")
def check_subscription_traffic(
    results: "dict[str, SimulationResult]",
) -> Iterator[Violation]:
    """Subscription tracking only ever removes subscribers, hence traffic.

    ``gps_nosub`` is GPS with every GPU permanently subscribed to every
    page; automatic tracking unsubscribes GPUs, so real GPS traffic is
    bounded above by the no-subscription broadcast (paper Figure 11).
    """
    gps, nosub = results.get("gps"), results.get("gps_nosub")
    if gps is None or nosub is None or gps.num_gpus < 2:
        return
    if gps.interconnect_bytes > nosub.interconnect_bytes:
        yield Violation(
            "subscription-never-adds-traffic",
            f"gps moved {gps.interconnect_bytes} B but gps_nosub (all "
            f"subscribed) moved only {nosub.interconnect_bytes} B",
        )


@invariant("gps-bounded-by-memcpy", layer="family")
def check_gps_vs_memcpy(results: "dict[str, SimulationResult]") -> Iterator[Violation]:
    """GPS publishes store bytes; memcpy broadcasts whole dirty pages.

    Proactive fine-grained publication can never move more data than
    page-granular broadcast of the same dirty set (paper Figure 10 —
    except RDL, GPS and memcpy bound the traffic of the others).
    """
    gps, memcpy = results.get("gps"), results.get("memcpy")
    if gps is None or memcpy is None or gps.num_gpus < 2:
        return
    if gps.interconnect_bytes > memcpy.interconnect_bytes:
        yield Violation(
            "gps-bounded-by-memcpy",
            f"gps moved {gps.interconnect_bytes} B, more than memcpy's "
            f"page broadcast {memcpy.interconnect_bytes} B",
        )


@invariant("same-program-identity", layer="family")
def check_family_identity(results: "dict[str, SimulationResult]") -> Iterator[Violation]:
    """All family members simulated the same program on the same system."""
    names = {r.program_name for r in results.values()}
    gpus = {r.num_gpus for r in results.values()}
    if len(names) > 1 or len(gpus) > 1:
        yield Violation(
            "same-program-identity",
            f"family mixes programs {sorted(names)} / GPU counts {sorted(gpus)}",
        )
    for paradigm, result in results.items():
        if result.paradigm != paradigm:
            yield Violation(
                "same-program-identity",
                f"result filed under {paradigm!r} reports paradigm "
                f"{result.paradigm!r}",
            )


# -- entry points --------------------------------------------------------------


def _run_layer(layer: str, *args) -> "list[Violation]":
    violations: "list[Violation]" = []
    for name, (check_layer, fn) in ORACLE_CHECKS.items():
        if check_layer == layer:
            violations.extend(fn(*args))
    return violations


def check_result(
    result: SimulationResult, config: "Optional[SystemConfig]" = None
) -> "list[Violation]":
    """Run every result-layer invariant; returns all violations found."""
    return _run_layer("result", result, config)


def check_execution(executor, result: SimulationResult) -> "list[Violation]":
    """Run the execution-layer invariants against a live executor."""
    return _run_layer("execution", executor, result)


def check_family(results: "dict[str, SimulationResult]") -> "list[Violation]":
    """Run cross-paradigm laws over one program's paradigm family."""
    return _run_layer("family", results)


def oracle_catalogue() -> "list[tuple[str, str, str]]":
    """(name, layer, first docstring line) for every registered check."""
    catalogue = []
    for name, (layer, fn) in ORACLE_CHECKS.items():
        doc = (fn.__doc__ or "").strip().splitlines()
        catalogue.append((name, layer, doc[0] if doc else ""))
    return catalogue
