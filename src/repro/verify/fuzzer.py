"""Seeded trace-program fuzzer: well-formed, analyzer-clean random programs.

The generator is a *grammar over the idioms the real workloads use* — shard
sweeps, halo exchanges, full-buffer gathers, atomic scatters — composed
randomly but under the constraints that keep a program clean under
``repro.analysis --strict``:

* every buffer is fully initialised by a setup phase (no GPS003/GPS103);
* plain weak stores only ever target the storing GPU's own shard, so no two
  GPUs' write sets overlap within a phase (no GPS001);
* every steady iteration repeats the same access structure as iteration 0,
  so automatic subscription profiling covers every later read (no GPS006);
* scopes stay weak and no sync buffers are declared (no GPS004/GPS005).

Cross-GPU read/write overlap, atomic/plain mixing, zero-payload kernels and
load imbalance are all *generated on purpose* — they are info-severity
idioms the paper's applications exhibit, and exactly the shapes that have
broken result plumbing in the past.

Determinism is load-bearing: ``generate_program(seed, gpus, scale, iters)``
is a pure function (``random.Random`` seeded via :func:`stable_seed`), so a
process-pool worker or a service backend given only the workload name
``fuzz/<seed>`` rebuilds the byte-identical program the parent generated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import TraceError
from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, PatternSpec, stable_seed
from ..units import KiB
from ..workloads.base import Workload, WorkloadInfo, scaled_size, setup_phase, shard_bounds

#: Workload-name prefix the registry resolves to :class:`FuzzWorkload`.
FUZZ_PREFIX = "fuzz/"

#: Buffer base sizes at ``scale=1.0`` (multiples of the 64 KiB page).
_BASE_SIZES = (256 * KiB, 512 * KiB, 768 * KiB, 1024 * KiB, 1536 * KiB)

#: Partial-line transaction sizes the SM coalescer sees in practice.
_TXN_BYTES = (4, 8, 16, 32, 64, 128)

#: Phase shapes the grammar composes (see the module docstring).
_PHASE_KINDS = ("sweep", "halo", "gather", "scatter", "reduce")


@dataclass(frozen=True)
class FuzzSpec:
    """The resolved identity of one fuzzed program."""

    seed: int
    num_gpus: int
    scale: float
    iterations: int

    @property
    def workload_name(self) -> str:
        """The registry name that rebuilds this program's workload."""
        return f"{FUZZ_PREFIX}{self.seed}"


def _pattern(rng: random.Random, salt: int) -> PatternSpec:
    """One random-but-valid access pattern."""
    kind = rng.choice(
        (PatternKind.SEQUENTIAL, PatternKind.STRIDED, PatternKind.RANDOM, PatternKind.REUSE)
    )
    return PatternSpec(
        kind=kind,
        stride=rng.choice((1, 2, 4, 8)) if kind is PatternKind.STRIDED else 1,
        touch_fraction=rng.choice((1.0, 0.75, 0.5, 0.25)),
        revisit_prob=rng.choice((0.25, 0.5)) if kind is PatternKind.REUSE else 0.0,
        revisit_window=rng.choice((16, 64, 256)) if kind is PatternKind.REUSE else 64,
        bytes_per_txn=rng.choice(_TXN_BYTES),
        seed=salt,
    )


def _phase_plan(rng: random.Random, num_buffers: int) -> "list[dict]":
    """The per-iteration phase skeleton: kind + buffer roles + patterns.

    Generated once and replayed for every iteration (with only the phase
    name and iteration index varying), which is both what real iterative
    applications do and what keeps GPS profiling sound.
    """
    plan = []
    for slot in range(rng.choice((1, 1, 2, 2, 3))):
        kind = rng.choice(_PHASE_KINDS)
        plan.append(
            {
                "kind": kind,
                "slot": slot,
                # Which declared buffer plays which role in this phase.
                "read_buf": rng.randrange(num_buffers),
                "write_buf": rng.randrange(num_buffers),
                "read_pattern": _pattern(rng, stable_seed("read", slot) % 10_000),
                "write_pattern": _pattern(rng, stable_seed("write", slot) % 10_000),
                "repeat": rng.choice((1, 1, 1, 2)),
                # Rare deliberate degenerate shape: a kernel with no
                # accesses at all (payload-imbalance territory, GPS104).
                "zero_payload_gpu": rng.randrange(64),
                "atomic_txn": rng.choice((4, 8, 16, 32)),
                "halo_fraction": rng.choice((0.0625, 0.125, 0.25)),
            }
        )
    return plan


def _phase_kernels(
    entry: dict,
    names: "list[str]",
    sizes: "list[int]",
    num_gpus: int,
    intensity: float,
) -> "tuple[KernelSpec, ...]":
    """Materialise one planned phase into per-GPU kernels."""
    kind = entry["kind"]
    read_buf, write_buf = names[entry["read_buf"]], names[entry["write_buf"]]
    read_size, write_size = sizes[entry["read_buf"]], sizes[entry["write_buf"]]
    kernels = []
    for gpu in range(num_gpus):
        if num_gpus > 1 and entry["zero_payload_gpu"] == gpu:
            # Degenerate-but-legal shape: this GPU launches an empty kernel.
            kernels.append(
                KernelSpec(f"{kind}-idle", gpu, compute_ops=1.0, accesses=())
            )
            continue
        w_start, w_end = shard_bounds(write_size, num_gpus, gpu)
        r_start, r_end = shard_bounds(read_size, num_gpus, gpu)
        accesses: "list[AccessRange]" = []
        if kind == "sweep":
            accesses.append(
                AccessRange(read_buf, r_start, r_end - r_start, MemOp.READ,
                            entry["read_pattern"], repeat=entry["repeat"])
            )
        elif kind == "halo":
            accesses.append(
                AccessRange(read_buf, r_start, r_end - r_start, MemOp.READ,
                            entry["read_pattern"])
            )
            if num_gpus > 1:
                n_start, n_end = shard_bounds(read_size, num_gpus, (gpu + 1) % num_gpus)
                halo = max(128, int((n_end - n_start) * entry["halo_fraction"]) // 128 * 128)
                accesses.append(
                    AccessRange(read_buf, n_start, min(halo, n_end - n_start),
                                MemOp.READ, entry["read_pattern"])
                )
        elif kind == "gather":
            accesses.append(
                AccessRange(read_buf, 0, read_size, MemOp.READ,
                            entry["read_pattern"], repeat=entry["repeat"])
            )
        elif kind == "scatter":
            accesses.append(
                AccessRange(read_buf, r_start, r_end - r_start, MemOp.READ,
                            entry["read_pattern"])
            )
            scatter_pattern = PatternSpec(
                PatternKind.RANDOM,
                touch_fraction=0.5,
                bytes_per_txn=entry["atomic_txn"],
                seed=entry["write_pattern"].seed,
            )
            accesses.append(
                AccessRange(write_buf, 0, write_size, MemOp.ATOMIC, scatter_pattern)
            )
        elif kind == "reduce":
            accesses.append(
                AccessRange(write_buf, w_start, w_end - w_start, MemOp.READ,
                            entry["read_pattern"])
            )
        if kind != "scatter":
            # Plain weak stores stay inside the GPU's own shard: disjoint
            # write sets across GPUs, the GPS001-free invariant.
            accesses.append(
                AccessRange(write_buf, w_start, w_end - w_start, MemOp.WRITE,
                            entry["write_pattern"])
            )
        payload = sum(a.total_bytes() for a in accesses)
        kernels.append(
            KernelSpec(
                name=kind,
                gpu=gpu,
                compute_ops=intensity * payload,
                accesses=tuple(accesses),
            )
        )
    return tuple(kernels)


def generate_program(
    seed: int,
    num_gpus: int = 4,
    scale: float = 1.0,
    iterations: int = 2,
) -> TraceProgram:
    """Generate one well-formed, analyzer-clean random trace program.

    Pure function of its arguments: the same ``(seed, num_gpus, scale,
    iterations)`` produces a structurally identical program in any process.
    """
    if seed < 0:
        raise TraceError(f"fuzz seed must be non-negative, got {seed}")
    if iterations < 1:
        raise TraceError(f"fuzz programs need at least one iteration, got {iterations}")
    rng = random.Random(stable_seed("repro-fuzz", seed))
    num_buffers = rng.choice((1, 2, 2, 3))
    sizes = [scaled_size(rng.choice(_BASE_SIZES), scale) for _ in range(num_buffers)]
    names = [f"buf{i}" for i in range(num_buffers)]
    intensity = rng.choice((1.0, 4.0, 16.0))
    plan = _phase_plan(rng, num_buffers)

    buffers = tuple(BufferSpec(name, size) for name, size in zip(names, sizes))
    phases = [setup_phase(list(zip(names, sizes)), num_gpus, seed=seed % 10_000)]
    for iteration in range(iterations):
        for entry in plan:
            phases.append(
                Phase(
                    f"it{iteration}/{entry['kind']}{entry['slot']}",
                    _phase_kernels(entry, names, sizes, num_gpus, intensity),
                    iteration=iteration,
                )
            )
    return TraceProgram(
        name=f"fuzz-s{seed}-g{num_gpus}",
        num_gpus=num_gpus,
        buffers=buffers,
        phases=tuple(phases),
        metadata={
            "workload": f"{FUZZ_PREFIX}{seed}",
            "comm_pattern": "fuzz",
            "seed": seed,
            "scale": scale,
            "phase_kinds": [entry["kind"] for entry in plan],
        },
    )


class FuzzWorkload(Workload):
    """A fuzzed program family, addressable through the workload registry.

    Registering fuzz programs as first-class workloads is what makes the
    differential harness possible: the memoised runner, the process pool,
    and the service all identify simulations by ``(workload name, gpus,
    scale, iterations)``, and ``fuzz/<seed>`` reconstructs deterministically
    on whichever side of a process boundary it lands.
    """

    arithmetic_intensity = 4.0
    remote_mlp = 256

    def __init__(self, seed: int) -> None:
        if seed < 0:
            raise TraceError(f"fuzz seed must be non-negative, got {seed}")
        self.seed = seed
        self.info = WorkloadInfo(
            f"{FUZZ_PREFIX}{seed}",
            f"Fuzzed trace program (seed {seed})",
            "Fuzz",
        )

    @classmethod
    def from_name(cls, name: str) -> "FuzzWorkload":
        """Parse ``fuzz/<seed>`` into a workload instance."""
        if not name.startswith(FUZZ_PREFIX):
            raise TraceError(f"not a fuzz workload name: {name!r}")
        raw = name[len(FUZZ_PREFIX):]
        if not raw.isdigit():
            raise TraceError(
                f"malformed fuzz workload {name!r}: expected '{FUZZ_PREFIX}<seed>' "
                "with a non-negative integer seed"
            )
        return cls(int(raw))

    def build(self, num_gpus: int, scale: float = 1.0, iterations: int = 5) -> TraceProgram:
        """Generate the fuzzed program for one system size."""
        return generate_program(self.seed, num_gpus, scale=scale, iterations=iterations)


def is_fuzz_workload(name: str) -> bool:
    """Whether ``name`` addresses the fuzz family (well-formed or not)."""
    return name.startswith(FUZZ_PREFIX)
