"""Differential conformance: one program, five execution paths, one answer.

The repo has grown five ways to obtain a :class:`SimulationResult` for the
same ``(workload, paradigm, config)``:

1. **direct** — construct the paradigm executor and ``run()`` it;
2. **cache**  — the memoised runner, warm from a persistent disk record
   written by a previous process;
3. **store**  — the memoised runner again, but backed by the versioned
   result lakehouse (:mod:`repro.store`): a cold write commits a snapshot,
   a warm read deserialises through partition files, and the partition
   bytes themselves are compared via the store's canonical payload;
4. **pool**   — ``run_many``'s process-pool fan-out, crossing a fork and a
   pickle boundary;
5. **service** — the live asyncio service, crossing an HTTP and a JSON
   boundary on top.

Simulations are deterministic, so all five must agree *byte-for-byte* on
the canonical JSON of ``to_dict()``. A divergence is localised by the
schedule digest each result carries: digests differing means the scheduler
itself diverged (seeding, hash-order, float provenance); identical digests
with different payloads means the result assembly or a serialisation layer
is lossy.

On top of path identity, each case is checked against the invariant oracle
(:mod:`repro.verify.oracle`) and two metamorphic relations: doubling link
bandwidth never increases simulated time, and GPS with subscription
tracking never moves more bytes than GPS with every GPU subscribed.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import tempfile
import threading
from dataclasses import dataclass, field

from ..config import LinkConfig
from ..harness.runner import SimJob, clear_run_cache, resolve_link, run_many
from ..paradigms import PARADIGMS
from ..system.results import SimulationResult
from .fuzzer import FuzzSpec, generate_program
from .oracle import Violation, check_execution, check_family, check_result

#: Default paradigm set: the pair each family law needs, plus the bounds.
DEFAULT_PARADIGMS = ("gps", "gps_nosub", "memcpy", "infinite")

#: Execution paths the harness compares, in the order they run.
PATHS = ("direct", "cache", "store", "pool", "service")


def canonical_payload(result: SimulationResult) -> str:
    """The canonical JSON string all paths are compared on."""
    return json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))


def _payload_digest(payload: str) -> str:
    return json.loads(payload).get("extras", {}).get("schedule_digest", "?")


@contextlib.contextmanager
def _scoped_env(**values: "str | None"):
    """Set/unset environment variables, restoring the previous state."""
    saved = {name: os.environ.get(name) for name in values}
    try:
        for name, value in values.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


@dataclass
class CaseReport:
    """Everything the harness learned about one fuzzed program."""

    spec: FuzzSpec
    violations: "list[Violation]" = field(default_factory=list)
    #: paradigm -> path -> canonical payload (only divergent ones are kept
    #: in full by the artifact layer; the report holds them all).
    payloads: "dict[str, dict[str, str]]" = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class VerifyReport:
    """The outcome of one differential verification run."""

    cases: "list[CaseReport]" = field(default_factory=list)
    paths: "tuple[str, ...]" = PATHS

    @property
    def violations(self) -> "list[tuple[FuzzSpec, Violation]]":
        return [(c.spec, v) for c in self.cases for v in c.violations]

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def summary(self) -> dict:
        return {
            "cases": len(self.cases),
            "failed_cases": sum(0 if c.ok else 1 for c in self.cases),
            "violations": sum(len(c.violations) for c in self.cases),
            "paths": list(self.paths),
        }


class ServiceHandle:
    """A live :class:`SimulationService` on an ephemeral port, in-process.

    The service runs in a daemon thread with its own event loop — the same
    shape the service test suite uses — so the differential harness can
    exercise the real HTTP/JSON path without shelling out.
    """

    def __init__(self) -> None:
        import asyncio

        from ..service import ServiceSettings, SimulationService

        settings = ServiceSettings(
            host="127.0.0.1", port=0, batch_size=8, max_wait_s=0.02,
            max_retries=1, retry_backoff_s=0.01, max_workers=1,
        )
        self.service: "SimulationService | None" = None
        self._started = threading.Event()

        def _run() -> None:
            async def _main() -> None:
                self.service = SimulationService(settings)
                await self.service.start()
                self._started.set()
                await self.service.serve_forever()

            asyncio.run(_main())

        self._thread = threading.Thread(target=_run, daemon=True)
        self._thread.start()
        if not self._started.wait(15):
            raise RuntimeError("verify: in-process service failed to start")

    def client(self):
        from ..service import ServiceClient

        assert self.service is not None
        return ServiceClient(
            f"http://{self.service.host}:{self.service.port}", timeout=30.0
        )

    def stop(self) -> None:
        if self._thread.is_alive():
            try:
                self.client().shutdown(drain=False)
            except Exception:
                pass
            self._thread.join(30)


def _doubled(link: "str | LinkConfig") -> LinkConfig:
    resolved = resolve_link(link)
    return dataclasses.replace(
        resolved, name=f"{resolved.name}-x2", bandwidth=resolved.bandwidth * 2
    )


def _direct_case(
    spec: FuzzSpec, paradigms, link, report: CaseReport
) -> "dict[str, SimulationResult]":
    """Direct path: run the executors in-process, oracle every result."""
    program = generate_program(
        spec.seed, spec.num_gpus, scale=spec.scale, iterations=spec.iterations
    )
    family: "dict[str, SimulationResult]" = {}
    for paradigm in paradigms:
        job = SimJob(
            spec.workload_name, paradigm, spec.num_gpus, link,
            spec.scale, spec.iterations,
        )
        config = job.resolved_config()
        executor = PARADIGMS[paradigm](program, config)
        executor.collector.enable()
        result = executor.run()
        family[paradigm] = result
        report.payloads.setdefault(paradigm, {})["direct"] = canonical_payload(result)
        for violation in check_result(result, config) + check_execution(executor, result):
            report.violations.append(
                Violation(violation.check, f"{paradigm}: {violation.message}")
            )
    report.violations.extend(check_family(family))
    return family


def _metamorphic_case(spec: FuzzSpec, paradigms, link, report: CaseReport) -> None:
    """Doubling link bandwidth must never increase simulated time."""
    program = generate_program(
        spec.seed, spec.num_gpus, scale=spec.scale, iterations=spec.iterations
    )
    paradigm = "gps" if "gps" in paradigms else paradigms[0]
    for chosen in (link, _doubled(link)):
        job = SimJob(
            spec.workload_name, paradigm, spec.num_gpus, chosen,
            spec.scale, spec.iterations,
        )
        result = PARADIGMS[paradigm](program, job.resolved_config()).run()
        if chosen is link:
            baseline = result.total_time
        elif result.total_time > baseline * (1 + 1e-9):
            report.violations.append(
                Violation(
                    "metamorphic-bandwidth",
                    f"{paradigm}: doubling {resolve_link(link).name} bandwidth "
                    f"raised total_time {baseline} -> {result.total_time}",
                )
            )


def _compare_path(report: CaseReport, path: str, paradigm: str, payload: str) -> None:
    expected = report.payloads.get(paradigm, {}).get("direct")
    report.payloads.setdefault(paradigm, {})[path] = payload
    if expected is None or payload == expected:
        return
    want, got = _payload_digest(expected), _payload_digest(payload)
    locus = (
        "schedule digests differ: the scheduler diverged"
        if want != got
        else "schedule digests match: result assembly or serialisation diverged"
    )
    report.violations.append(
        Violation(
            f"differential-{path}",
            f"{paradigm}: {path} payload differs from direct ({locus}; "
            f"direct digest {want[:12]}, {path} digest {got[:12]})",
        )
    )


def _jobs_for(specs, paradigms, link) -> "list[tuple[FuzzSpec, str, SimJob]]":
    return [
        (
            spec,
            paradigm,
            SimJob(
                spec.workload_name, paradigm, spec.num_gpus, link,
                spec.scale, spec.iterations,
            ),
        )
        for spec in specs
        for paradigm in paradigms
    ]


def run_differential(
    seeds,
    num_gpus: int = 4,
    scale: float = 0.25,
    iterations: int = 2,
    paradigms=DEFAULT_PARADIGMS,
    link: str = "pcie6",
    use_service: bool = True,
    progress=None,
) -> VerifyReport:
    """Run the full differential conformance harness over fuzz ``seeds``.

    ``link`` must be a link *name* (the service path addresses links by
    name). Mutates process-global state (environment knobs, the runner's
    memo) in scoped blocks and restores it; not safe to run concurrently
    with other simulations in the same process.
    """
    paradigms = tuple(paradigms)
    unknown = [p for p in paradigms if p not in PARADIGMS]
    if unknown:
        raise ValueError(f"unknown paradigms {unknown}; known: {sorted(PARADIGMS)}")
    say = progress or (lambda message: None)
    specs = [FuzzSpec(seed, num_gpus, scale, iterations) for seed in seeds]
    report = VerifyReport(
        cases=[CaseReport(spec) for spec in specs],
        paths=PATHS if use_service else PATHS[:-1],
    )
    by_spec = {case.spec: case for case in report.cases}
    jobs = _jobs_for(specs, paradigms, link)

    say(f"direct: {len(jobs)} simulations + oracle over {len(specs)} programs")
    for case in report.cases:
        _direct_case(case.spec, paradigms, link, case)
        _metamorphic_case(case.spec, paradigms, link, case)

    # Cache path: populate a throwaway persistent cache, drop the memo so
    # the second pass must deserialise from disk, then compare.
    say("cache: cold write + warm read through a scratch disk cache")
    with tempfile.TemporaryDirectory(prefix="repro-verify-cache-") as scratch:
        with _scoped_env(REPRO_NO_CACHE=None, REPRO_CACHE_DIR=scratch):
            clear_run_cache()
            run_many([job for _, _, job in jobs], max_workers=1)
            clear_run_cache()
            for spec, paradigm, job in jobs:
                warm = run_many([job], max_workers=1)[0]
                _compare_path(by_spec[spec], "cache", paradigm, canonical_payload(warm))
            clear_run_cache()

    # Store path: the cold-write/warm-read shape again, but through the
    # lakehouse backend — the commit protocol, partition serialisation and
    # snapshot resolution all sit between write and read. The partition
    # bytes are additionally compared directly via the store's reader, so
    # a lossy round-trip is caught even if both runner passes agree.
    say("store: cold commit + warm read through a scratch result lakehouse")
    with tempfile.TemporaryDirectory(prefix="repro-verify-store-") as scratch:
        with _scoped_env(
            REPRO_NO_CACHE=None,
            REPRO_CACHE_DIR=None,
            REPRO_RESULT_BACKEND="store",
            REPRO_STORE_DIR=scratch,
        ):
            clear_run_cache()
            run_many([job for _, _, job in jobs], max_workers=1)
            clear_run_cache()
            for spec, paradigm, job in jobs:
                warm = run_many([job], max_workers=1)[0]
                _compare_path(by_spec[spec], "store", paradigm, canonical_payload(warm))
            clear_run_cache()
            from ..store import ResultStore

            reader = ResultStore.open(scratch, legacy=False).at()
            for spec, paradigm, job in jobs:
                stored = reader.canonical_payload(job.key())
                if stored is None:
                    by_spec[spec].violations.append(
                        Violation(
                            "differential-store",
                            f"{paradigm}: fingerprint {job.key()[:12]} missing "
                            "from the store after a cold run",
                        )
                    )
                else:
                    _compare_path(by_spec[spec], "store", paradigm, stored)

    # Pool path: no cache layers at all, so every job crosses the fork +
    # pickle boundary of a real worker process.
    say(f"pool: {len(jobs)} jobs across a process pool")
    with _scoped_env(REPRO_NO_CACHE="1", REPRO_MAX_WORKERS=None):
        clear_run_cache()
        pooled = run_many([job for _, _, job in jobs], max_workers=2)
        for (spec, paradigm, _), result in zip(jobs, pooled):
            _compare_path(by_spec[spec], "pool", paradigm, canonical_payload(result))
        clear_run_cache()

    if use_service:
        say("service: HTTP round-trip through a live in-process server")
        with _scoped_env(REPRO_NO_CACHE="1", REPRO_MAX_WORKERS="1"):
            clear_run_cache()
            handle = ServiceHandle()
            try:
                client = handle.client()
                submitted = [
                    (spec, paradigm, client.submit(
                        job.workload, paradigm=job.paradigm, gpus=job.num_gpus,
                        link=link, scale=job.scale, iterations=job.iterations,
                    ))
                    for spec, paradigm, job in jobs
                ]
                for spec, paradigm, ticket in submitted:
                    payload = client.wait(ticket["id"], timeout=120.0)
                    wire = json.dumps(
                        payload["result"], sort_keys=True, separators=(",", ":")
                    )
                    _compare_path(by_spec[spec], "service", paradigm, wire)
            finally:
                handle.stop()
                clear_run_cache()

    failed = sum(0 if case.ok else 1 for case in report.cases)
    say(f"verified {len(report.cases)} cases, {failed} failed")
    return report
