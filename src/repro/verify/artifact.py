"""Machine-readable failure-repro artifacts for ``repro verify``.

When the harness finds a violation it writes one JSON file per failing
case: the minimised trace program, the exact job coordinates (workload
name, paradigm set, link, config fingerprint, model version), and every
violation — enough to replay the failure in a debugger or a regression
test without re-running the fuzzer. The committed seed corpus under
``tests/verify/corpus/`` is made of exactly these files.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..config import config_fingerprint
from ..harness.runner import MODEL_FINGERPRINT, SimJob
from ..trace.io import program_from_dict, program_to_dict
from ..trace.program import TraceProgram
from .differential import CaseReport
from .fuzzer import generate_program
from .oracle import Violation

#: Artifact schema version; bump on incompatible layout changes.
ARTIFACT_VERSION = 1


def build_artifact(
    case: CaseReport,
    paradigms,
    link: str,
    program: "TraceProgram | None" = None,
    shrink: "dict | None" = None,
) -> dict:
    """Assemble the JSON payload for one failing case."""
    spec = case.spec
    if program is None:
        program = generate_program(
            spec.seed, spec.num_gpus, scale=spec.scale, iterations=spec.iterations
        )
    job = SimJob(
        spec.workload_name, paradigms[0] if paradigms else "gps",
        spec.num_gpus, link, spec.scale, spec.iterations,
    )
    return {
        "artifact_version": ARTIFACT_VERSION,
        "model": MODEL_FINGERPRINT,
        "kind": "verify-failure",
        "case": {
            "seed": spec.seed,
            "workload": spec.workload_name,
            "num_gpus": spec.num_gpus,
            "scale": spec.scale,
            "iterations": spec.iterations,
            "paradigms": list(paradigms),
            "link": link,
        },
        "config_fingerprint_sha256": job.key(),
        "config_fingerprint": config_fingerprint(job.resolved_config()),
        "violations": [
            {"check": v.check, "message": v.message} for v in case.violations
        ],
        "shrink": shrink or {},
        "program": program_to_dict(program),
    }


def artifact_path(directory: "str | Path", case: CaseReport) -> Path:
    spec = case.spec
    return Path(directory) / f"verify-s{spec.seed}-g{spec.num_gpus}.json"


def write_artifact(directory: "str | Path", payload: dict) -> Path:
    """Write one artifact; returns the path written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / (
        f"verify-s{payload['case']['seed']}-g{payload['case']['num_gpus']}.json"
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_artifact(path: "str | Path") -> dict:
    """Read one artifact back, validating the schema version."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise ValueError(
            f"{path}: artifact version {version!r}, expected {ARTIFACT_VERSION}"
        )
    return payload


def artifact_program(payload: dict) -> TraceProgram:
    """Rebuild the (minimised) trace program an artifact carries."""
    return program_from_dict(payload["program"])


def replay_violations(payload: dict) -> "list[Violation]":
    """The violations recorded in an artifact, as oracle objects."""
    return [
        Violation(item["check"], item["message"])
        for item in payload.get("violations", [])
    ]
