"""Greedy trace-program shrinker for failure-repro artifacts.

Given a program that trips an invariant and a predicate that re-checks the
failure, :func:`minimize_program` repeatedly removes structure — whole
phases, then kernels, then individual accesses — keeping each removal only
if the failure survives. The result is the smallest program this greedy
descent reaches (not a global minimum, which would need delta debugging's
exponential search), which is what a human wants to look at in an artifact.

The predicate must be *pure*: it receives a candidate program and returns
``True`` when the failure still reproduces. Predicates that raise are
treated as "failure reproduces" — a shrink that turns a wrong answer into
a crash is still interesting.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..trace.program import Phase, TraceProgram

#: Upper bound on predicate evaluations per minimisation, so a pathological
#: predicate cannot stall a verify run.
DEFAULT_BUDGET = 400


def _still_fails(predicate: "Callable[[TraceProgram], bool]", program: TraceProgram) -> bool:
    try:
        return bool(predicate(program))
    except Exception:
        return True


def _with_phases(program: TraceProgram, phases: "list[Phase]") -> Optional[TraceProgram]:
    if not phases:
        return None
    try:
        return dataclasses.replace(program, phases=tuple(phases))
    except Exception:
        return None


def _drop_phases(program, predicate, budget: "list[int]") -> TraceProgram:
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for index in range(len(program.phases)):
            if budget[0] <= 0:
                break
            candidate = _with_phases(
                program, [p for i, p in enumerate(program.phases) if i != index]
            )
            if candidate is None:
                continue
            budget[0] -= 1
            if _still_fails(predicate, candidate):
                program = candidate
                changed = True
                break
    return program


def _drop_kernels(program, predicate, budget: "list[int]") -> TraceProgram:
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for p_index, phase in enumerate(program.phases):
            for k_index in range(len(phase.kernels)):
                if budget[0] <= 0:
                    return program
                kernels = tuple(
                    k for i, k in enumerate(phase.kernels) if i != k_index
                )
                phases = list(program.phases)
                phases[p_index] = dataclasses.replace(phase, kernels=kernels)
                candidate = _with_phases(program, phases)
                if candidate is None:
                    continue
                budget[0] -= 1
                if _still_fails(predicate, candidate):
                    program = candidate
                    changed = True
                    break
            if changed:
                break
    return program


def _drop_accesses(program, predicate, budget: "list[int]") -> TraceProgram:
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for p_index, phase in enumerate(program.phases):
            for k_index, kernel in enumerate(phase.kernels):
                for a_index in range(len(kernel.accesses)):
                    if budget[0] <= 0:
                        return program
                    accesses = tuple(
                        a for i, a in enumerate(kernel.accesses) if i != a_index
                    )
                    kernels = list(phase.kernels)
                    kernels[k_index] = dataclasses.replace(kernel, accesses=accesses)
                    phases = list(program.phases)
                    phases[p_index] = dataclasses.replace(phase, kernels=tuple(kernels))
                    candidate = _with_phases(program, phases)
                    if candidate is None:
                        continue
                    budget[0] -= 1
                    if _still_fails(predicate, candidate):
                        program = candidate
                        changed = True
                        break
                if changed:
                    break
            if changed:
                break
    return program


def minimize_program(
    program: TraceProgram,
    predicate: "Callable[[TraceProgram], bool]",
    max_evals: int = DEFAULT_BUDGET,
) -> TraceProgram:
    """Greedily shrink ``program`` while ``predicate`` keeps returning True.

    The original program is returned unchanged if the predicate does not
    reproduce on it (nothing to minimise) or the evaluation budget is 0.
    """
    if max_evals <= 0 or not _still_fails(predicate, program):
        return program
    budget = [max_evals]
    program = _drop_phases(program, predicate, budget)
    program = _drop_kernels(program, predicate, budget)
    program = _drop_accesses(program, predicate, budget)
    return program


def shrink_stats(original: TraceProgram, minimized: TraceProgram) -> dict:
    """How much structure minimisation removed (for artifact metadata)."""

    def _counts(prog: TraceProgram) -> "tuple[int, int, int]":
        kernels = sum(len(p.kernels) for p in prog.phases)
        accesses = sum(len(k.accesses) for k in prog.iter_kernels())
        return len(prog.phases), kernels, accesses

    phases0, kernels0, accesses0 = _counts(original)
    phases1, kernels1, accesses1 = _counts(minimized)
    return {
        "phases": {"before": phases0, "after": phases1},
        "kernels": {"before": kernels0, "after": kernels1},
        "accesses": {"before": accesses0, "after": accesses1},
    }
