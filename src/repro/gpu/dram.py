"""DRAM efficiency model: achieved bandwidth depends on access pattern.

HBM2 delivers its peak only to well-behaved streams; random single-line
accesses pay row activation on most requests. The model maps the trace
pattern kinds onto achieved-bandwidth fractions calibrated against public
GPU STREAM/pointer-chase measurements.
"""

from __future__ import annotations

from ..config import GPUConfig
from ..trace.records import PatternKind

#: Fraction of peak DRAM bandwidth each pattern achieves.
_EFFICIENCY = {
    PatternKind.SEQUENTIAL: 0.92,
    PatternKind.STRIDED: 0.80,
    PatternKind.RANDOM: 0.42,
    PatternKind.REUSE: 0.78,
}


class DRAMModel:
    """Per-GPU DRAM: peak bandwidth modulated by pattern efficiency."""

    def __init__(self, config: GPUConfig) -> None:
        self.config = config

    def efficiency(self, kind: PatternKind) -> float:
        """Achieved fraction of peak for one pattern kind."""
        return _EFFICIENCY[kind]

    def achieved_bandwidth(self, kind: PatternKind) -> float:
        """Achieved DRAM bandwidth for one pattern kind, bytes/second."""
        return self.config.dram_bandwidth * self.efficiency(kind)

    def blended_bandwidth(self, bytes_by_kind: "dict[PatternKind, int]") -> float:
        """Harmonic blend over a byte mix: total_bytes / sum(bytes_i / bw_i).

        The harmonic mean is the physically right combination — each byte
        class occupies the DRAM for ``bytes / bw`` seconds.
        """
        total = sum(bytes_by_kind.values())
        if total == 0:
            return self.config.dram_bandwidth
        denom = sum(
            nbytes / self.achieved_bandwidth(kind)
            for kind, nbytes in bytes_by_kind.items()
            if nbytes > 0
        )
        return total / denom
