"""The intra-SM memory coalescer.

A warp's 32 lane accesses to consecutive addresses reach the memory system
as one transaction per 128 B line. In trace terms: *adjacent* identical
lines in a stream merge into a single transaction with summed payload
(capped at the line size). This stage runs before the GPS remote write
queue, which is why dense sequential writers (Jacobi) arrive at the queue
with no residual spatial locality and show a 0% queue hit rate (Figure 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..config import CACHE_BLOCK
from ..trace.expand import LineStream


@dataclass
class CoalescerStats:
    """Transaction accounting for the SM coalescer stage."""

    txns_in: int = 0
    txns_out: int = 0

    @property
    def merged(self) -> int:
        """Transactions absorbed into an adjacent one."""
        return self.txns_in - self.txns_out

    @property
    def merge_rate(self) -> float:
        """Fraction of incoming transactions absorbed; 0.0 on an empty stream."""
        if self.txns_in == 0:
            return 0.0
        return self.merged / self.txns_in

    def as_counters(self) -> dict:
        """Observability snapshot: ``metric: value`` for the counter registry."""
        return {"txns_in": self.txns_in, "txns_out": self.txns_out, "merged": self.merged}


def sm_coalesce(stream: LineStream, stats: Optional[CoalescerStats] = None) -> LineStream:
    """Collapse runs of identical adjacent lines into single transactions.

    ``stats``, when given, accumulates in/out transaction counts across
    calls (the program analysis keeps one per kernel).
    """
    if len(stream) == 0:
        return stream
    lines = stream.lines
    boundaries = np.empty(lines.shape[0], dtype=bool)
    boundaries[0] = True
    np.not_equal(lines[1:], lines[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    run_ids = np.cumsum(boundaries) - 1
    summed = np.zeros(starts.shape[0], dtype=np.int64)
    np.add.at(summed, run_ids, stream.bytes_per_txn)
    if stats is not None:
        stats.txns_in += int(lines.shape[0])
        stats.txns_out += int(starts.shape[0])
    return LineStream(
        lines[starts],
        np.minimum(summed, CACHE_BLOCK).astype(np.int32),
    )
