"""The intra-SM memory coalescer.

A warp's 32 lane accesses to consecutive addresses reach the memory system
as one transaction per 128 B line. In trace terms: *adjacent* identical
lines in a stream merge into a single transaction with summed payload
(capped at the line size). This stage runs before the GPS remote write
queue, which is why dense sequential writers (Jacobi) arrive at the queue
with no residual spatial locality and show a 0% queue hit rate (Figure 14).
"""

from __future__ import annotations

import numpy as np

from ..config import CACHE_BLOCK
from ..trace.expand import LineStream


def sm_coalesce(stream: LineStream) -> LineStream:
    """Collapse runs of identical adjacent lines into single transactions."""
    if len(stream) == 0:
        return stream
    lines = stream.lines
    boundaries = np.empty(lines.shape[0], dtype=bool)
    boundaries[0] = True
    np.not_equal(lines[1:], lines[:-1], out=boundaries[1:])
    starts = np.flatnonzero(boundaries)
    run_ids = np.cumsum(boundaries) - 1
    summed = np.zeros(starts.shape[0], dtype=np.int64)
    np.add.at(summed, run_ids, stream.bytes_per_txn)
    return LineStream(
        lines[starts],
        np.minimum(summed, CACHE_BLOCK).astype(np.int32),
    )
