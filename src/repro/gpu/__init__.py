"""GPU substrate: kernel roofline timing, DRAM efficiency, SM coalescer.

The timing model is deliberately analytic — the paper's NVAS replays SASS
instruction-by-instruction, but the quantities GPS's evaluation turns on are
kernel-granularity: how long a kernel occupies its GPU (compute vs local
bandwidth roofline) and how much remote traffic rides the links meanwhile.
"""

from .dram import DRAMModel
from .kernel_timing import KernelTiming, KernelTimingModel
from .sm_coalescer import sm_coalesce

__all__ = ["DRAMModel", "KernelTiming", "KernelTimingModel", "sm_coalesce"]
