"""Kernel roofline timing.

A kernel's GPU-occupancy time is the max of its compute time and its local
memory time (the classic roofline), plus any *exposed* remote-access term
the paradigm puts on the critical path. The L2 is modelled explicitly: the
caller supplies the kernel's L2 hit rate (from a real set-associative
simulation of its read stream) and local bytes split by pattern kind for
the DRAM efficiency blend.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GPUConfig, LinkConfig
from ..trace.records import PatternKind
from .dram import DRAMModel

#: Remote transactions a GPU keeps in flight per kernel; bounds how much
#: remote latency multithreading can hide (used by the RDL paradigm).
DEFAULT_REMOTE_MLP = 1024


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one kernel's modelled duration."""

    compute_time: float
    local_mem_time: float
    remote_bw_time: float
    remote_latency_time: float
    launch_overhead: float

    @property
    def base(self) -> float:
        """Roofline time without remote exposure."""
        return max(self.compute_time, self.local_mem_time)

    @property
    def total(self) -> float:
        """Full kernel duration as seen by the GPU's compute resource.

        Remote demand traffic extends the kernel beyond its roofline when
        it is the bottleneck (bandwidth term) and adds dependent-load stall
        time the warp scheduler could not hide (latency term).
        """
        return (
            max(self.base, self.remote_bw_time)
            + self.remote_latency_time
            + self.launch_overhead
        )


class KernelTimingModel:
    """Maps kernel aggregates onto durations for one GPU configuration."""

    def __init__(self, gpu: GPUConfig, ops_per_cycle_fraction: float = 0.55) -> None:
        self.gpu = gpu
        self.dram = DRAMModel(gpu)
        #: Achieved fraction of peak issue rate; real kernels never sustain
        #: one useful scalar op per core per cycle.
        self.ops_per_cycle_fraction = ops_per_cycle_fraction

    @property
    def achieved_throughput(self) -> float:
        """Sustained scalar ops/second."""
        return self.gpu.throughput_ops * self.ops_per_cycle_fraction

    def local_memory_time(
        self,
        bytes_by_kind: "dict[PatternKind, int]",
        l2_hit_rate: float,
    ) -> float:
        """Time to move the kernel's local bytes through L2 + DRAM.

        L2 hits stream at L2 bandwidth; misses at pattern-blended DRAM
        bandwidth. Bandwidths combine harmonically over the byte split.
        """
        total = sum(bytes_by_kind.values())
        if total == 0:
            return 0.0
        l2_hit_rate = min(max(l2_hit_rate, 0.0), 1.0)
        dram_bw = self.dram.blended_bandwidth(bytes_by_kind)
        hit_bytes = total * l2_hit_rate
        miss_bytes = total - hit_bytes
        return hit_bytes / self.gpu.l2_bandwidth + miss_bytes / dram_bw

    def time_kernel(
        self,
        compute_ops: float,
        local_bytes_by_kind: "dict[PatternKind, int]",
        l2_hit_rate: float,
        launch_overhead: float = 5e-6,
        remote_read_bytes: int = 0,
        remote_read_txns: int = 0,
        link: "LinkConfig | None" = None,
        latency_hiding: float = 0.0,
        remote_mlp: int = DEFAULT_REMOTE_MLP,
    ) -> KernelTiming:
        """Produce the full timing breakdown for one kernel.

        ``remote_*`` parameters describe demand accesses the paradigm left
        on the critical path (RDL loads, UM remote mappings); paradigms with
        no demand remote traffic (GPS, memcpy) leave them zero.
        """
        compute_time = compute_ops / self.achieved_throughput if compute_ops else 0.0
        local_time = self.local_memory_time(local_bytes_by_kind, l2_hit_rate)
        remote_bw_time = 0.0
        remote_latency_time = 0.0
        if remote_read_bytes > 0 and link is not None:
            remote_bw_time = remote_read_bytes / link.effective_bandwidth
            if remote_read_txns > 0:
                serial_latency = remote_read_txns * link.latency / max(1, remote_mlp)
                remote_latency_time = serial_latency * (1.0 - latency_hiding)
        return KernelTiming(
            compute_time=compute_time,
            local_mem_time=local_time,
            remote_bw_time=remote_bw_time,
            remote_latency_time=remote_latency_time,
            launch_overhead=launch_overhead,
        )
