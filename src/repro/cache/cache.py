"""Set-associative cache with line-address stream simulation.

The cache operates on *line addresses* (byte address divided by the block
size happens at the caller) so that workload trace expansion, which already
produces line-granular numpy streams, feeds it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Type

import numpy as np

from ..errors import ConfigError
from ..units import is_power_of_two
from .replacement import LRUPolicy, ReplacementPolicy


@dataclass
class CacheStats:
    """Aggregate hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total line accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction; 0.0 with no accesses."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Sum two stat blocks."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )


class Cache:
    """A set-associative cache indexed by line address.

    ``size_bytes`` and ``block_size`` fix the line count; the set index is
    ``line % num_sets``. Only tags are stored — this is a hit/miss model,
    not a data store.
    """

    def __init__(
        self,
        size_bytes: int,
        block_size: int,
        assoc: int,
        policy_factory: Callable[[int], ReplacementPolicy] = LRUPolicy,
    ) -> None:
        if size_bytes <= 0 or block_size <= 0 or assoc <= 0:
            raise ConfigError("cache geometry values must be positive")
        if not is_power_of_two(block_size):
            raise ConfigError(f"block size must be a power of two, got {block_size}")
        num_lines = size_bytes // block_size
        if num_lines == 0 or num_lines % assoc != 0:
            raise ConfigError(
                f"cache of {size_bytes} B / {block_size} B lines does not divide "
                f"into associativity {assoc}"
            )
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.assoc = assoc
        self.num_sets = num_lines // assoc
        self._sets = [policy_factory(assoc) for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, line: int) -> bool:
        """Access one line address; fill on miss. Returns True on a hit."""
        cache_set = self._sets[line % self.num_sets]
        if cache_set.touch(line):
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if cache_set.fill(line) is not None:
            self.stats.evictions += 1
        return False

    def simulate_stream(self, lines: Iterable[int]) -> CacheStats:
        """Run a whole access stream; returns the stats delta for the stream.

        Accepts any iterable of line addresses, including numpy arrays from
        :mod:`repro.trace.expand`.
        """
        before = CacheStats(self.stats.hits, self.stats.misses, self.stats.evictions)
        if isinstance(lines, np.ndarray):
            lines = lines.tolist()  # plain ints are ~2x faster in the hot loop
        sets = self._sets
        num_sets = self.num_sets
        hits = 0
        misses = 0
        evictions = 0
        for line in lines:
            cache_set = sets[line % num_sets]
            if cache_set.touch(line):
                hits += 1
            else:
                misses += 1
                if cache_set.fill(line) is not None:
                    evictions += 1
        self.stats.hits += hits
        self.stats.misses += misses
        self.stats.evictions += evictions
        return CacheStats(
            hits=self.stats.hits - before.hits,
            misses=self.stats.misses - before.misses,
            evictions=self.stats.evictions - before.evictions,
        )

    def invalidate(self, line: int) -> bool:
        """Drop one line if resident."""
        return self._sets[line % self.num_sets].invalidate(line)

    def flush(self) -> None:
        """Rebuild every set empty (e.g. between independent simulations)."""
        factory: Type[ReplacementPolicy] = type(self._sets[0])
        self._sets = [factory(self.assoc) for _ in range(self.num_sets)]

    def resident_lines(self) -> int:
        """Total lines currently resident across all sets."""
        return sum(len(s) for s in self._sets)
