"""Replacement policies for the set-associative cache model.

A policy manages one associativity set's stack of tags. LRU is the default
(and what GV100's L2 approximates); FIFO exists for ablations and to keep
the policy interface honest with a second implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Optional


class ReplacementPolicy(ABC):
    """Per-set tag store with a replacement decision.

    Implementations hold at most ``capacity`` tags and choose a victim when
    a fill would overflow the set.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity

    @abstractmethod
    def touch(self, tag: int) -> bool:
        """Record an access to ``tag``. Returns True if it was present (hit)."""

    @abstractmethod
    def fill(self, tag: int) -> Optional[int]:
        """Insert ``tag`` after a miss. Returns the evicted tag, if any."""

    @abstractmethod
    def invalidate(self, tag: int) -> bool:
        """Remove ``tag`` if present. Returns True if it was."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident tags."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement via an ordered dict."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._tags: "OrderedDict[int, None]" = OrderedDict()

    def touch(self, tag: int) -> bool:
        if tag in self._tags:
            self._tags.move_to_end(tag)
            return True
        return False

    def fill(self, tag: int) -> Optional[int]:
        victim = None
        if len(self._tags) >= self.capacity:
            victim, _ = self._tags.popitem(last=False)
        self._tags[tag] = None
        return victim

    def invalidate(self, tag: int) -> bool:
        if tag in self._tags:
            del self._tags[tag]
            return True
        return False

    def __len__(self) -> int:
        return len(self._tags)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement: hits do not refresh recency."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._tags: "OrderedDict[int, None]" = OrderedDict()

    def touch(self, tag: int) -> bool:
        return tag in self._tags

    def fill(self, tag: int) -> Optional[int]:
        victim = None
        if len(self._tags) >= self.capacity:
            victim, _ = self._tags.popitem(last=False)
        self._tags[tag] = None
        return victim

    def invalidate(self, tag: int) -> bool:
        if tag in self._tags:
            del self._tags[tag]
            return True
        return False

    def __len__(self) -> int:
        return len(self._tags)
