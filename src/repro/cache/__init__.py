"""Cache substrate: a set-associative cache model with pluggable replacement.

Used for the per-GPU L2 (6 MB on GV100). The L2 model matters for the
end-to-end results: the paper attributes EQWP's super-linear 4-GPU speedup to
the L2 hit rate rising from 55% to 68% as the per-GPU working set shrinks
(section 7.1) — an effect that only appears with a real capacity model.
"""

from .cache import Cache, CacheStats
from .replacement import FIFOPolicy, LRUPolicy, ReplacementPolicy

__all__ = ["Cache", "CacheStats", "ReplacementPolicy", "LRUPolicy", "FIFOPolicy"]
