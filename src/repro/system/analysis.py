"""Paradigm-independent program analysis with memoised trace expansion.

Iterative programs repeat the same kernels every iteration, so everything
expensive — trace expansion, L2 simulation, page-set extraction — is
computed once per *distinct kernel* and reused across iterations and
paradigms. This is the same trick the paper's own methodology leans on:
"the access patterns in each program segment match those of prior
segments" (section 3.2) is what makes GPS profiling work at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cache.cache import Cache
from ..config import CACHE_BLOCK, SystemConfig
from ..gpu.sm_coalescer import CoalescerStats, sm_coalesce
from ..memory.address_space import AddressSpace
from ..trace.expand import LineStream, expand_range
from ..trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from ..trace.records import AccessRange, MemOp, PatternKind, Scope


@dataclass
class AccessFootprint:
    """Cached expansion-derived facts about one access range."""

    access: AccessRange
    buffer_base: int
    #: Distinct absolute VPNs one sweep touches, sorted.
    pages: np.ndarray
    #: Payload bytes across all sweeps (what demand paradigms move).
    payload_bytes: int
    #: Line transactions across all sweeps.
    txns: int

    @property
    def kind(self) -> PatternKind:
        """Spatial pattern of the access."""
        return self.access.pattern.kind

    @property
    def is_atomic(self) -> bool:
        """Whether the access is a read-modify-write."""
        return self.access.op is MemOp.ATOMIC

    @property
    def is_sys_scoped(self) -> bool:
        """Whether the access carries sys scope."""
        return self.access.scope is Scope.SYS


@dataclass
class KernelFootprint:
    """Cached per-kernel aggregates every paradigm consumes."""

    kernel: KernelSpec
    reads: list
    stores: list
    #: Warm L2 hit rate of the kernel's local read stream.
    l2_hit_rate: float
    read_bytes_by_kind: dict
    store_bytes_by_kind: dict
    #: Union of pages the kernel reads / stores (sorted VPN arrays).
    read_pages: np.ndarray
    store_pages: np.ndarray

    @property
    def all_pages(self) -> np.ndarray:
        """Every page the kernel touches."""
        return np.union1d(self.read_pages, self.store_pages)

    @property
    def total_read_bytes(self) -> int:
        """Payload bytes loaded."""
        return sum(self.read_bytes_by_kind.values())

    @property
    def total_store_bytes(self) -> int:
        """Payload bytes stored."""
        return sum(self.store_bytes_by_kind.values())


class ProgramAnalysis:
    """Shared analysis state for one (program, system config) pair."""

    def __init__(self, program: TraceProgram, config: SystemConfig) -> None:
        self.program = program
        self.config = config
        self.page_size = config.page_size
        self._lines_per_page = self.page_size // CACHE_BLOCK
        # Deterministic VA layout identical to AddressSpace's bump allocator,
        # in buffer declaration order. GPSRuntime allocating the same buffers
        # in the same order lands on the same addresses.
        self._bases: dict[str, int] = {}
        cursor = AddressSpace.HEAP_BASE
        for buf in program.buffers:
            self._bases[buf.name] = cursor
            aligned = -(-buf.size // self.page_size) * self.page_size
            cursor += aligned
        self._buffer_by_page: dict[int, BufferSpec] = {}
        for buf in program.buffers:
            base = self._bases[buf.name]
            first = base // self.page_size
            last = (base + buf.size - 1) // self.page_size
            for vpn in range(first, last + 1):
                self._buffer_by_page[vpn] = buf
        shared = {b.name for b in program.shared_buffers()}
        self._shared_buffers = shared
        self._footprints: dict[KernelSpec, KernelFootprint] = {}
        self._streams: dict[tuple, LineStream] = {}
        self._store_streams: dict[KernelSpec, list] = {}
        self._coalescer_stats: dict[KernelSpec, CoalescerStats] = {}
        self._home_gpu_arr: "Optional[np.ndarray]" = None
        self._phase_min_readers: dict[int, tuple] = {}
        self._phase_max_writers: dict[int, tuple] = {}

    # -- layout ---------------------------------------------------------------

    def buffer_base(self, name: str) -> int:
        """Absolute VA base of a buffer."""
        return self._bases[name]

    def buffer_of_page(self, vpn: int) -> Optional[BufferSpec]:
        """The buffer covering a VPN, if any."""
        return self._buffer_by_page.get(vpn)

    def is_shared_buffer(self, name: str) -> bool:
        """Whether more than one GPU touches the buffer in this program."""
        return name in self._shared_buffers

    def shared_page_count(self) -> int:
        """Pages belonging to shared buffers."""
        return sum(
            1 for vpn, buf in self._buffer_by_page.items() if buf.name in self._shared_buffers
        )

    def heap_page_span(self) -> "tuple[int, int]":
        """``(base_vpn, page_count)`` covering every buffer page.

        The shared page-index space the vectorized paradigm executors use:
        a heap VPN maps to array index ``vpn - base_vpn``.
        """
        base = AddressSpace.HEAP_BASE // self.page_size
        end = max(self._buffer_by_page, default=base) + 1
        return base, end - base

    def home_gpu_array(self) -> np.ndarray:
        """Per-page buffer home GPU over :meth:`heap_page_span` (0 if none)."""
        if self._home_gpu_arr is None:
            base, count = self.heap_page_span()
            arr = np.zeros(count, dtype=np.int64)
            for buf in self.program.buffers:
                start = self._bases[buf.name]
                first = start // self.page_size
                last = (start + buf.size - 1) // self.page_size
                arr[first - base : last + 1 - base] = buf.home_gpu
            self._home_gpu_arr = arr
        return self._home_gpu_arr

    def phase_min_readers(self, phase: Phase) -> "tuple[np.ndarray, np.ndarray]":
        """``(vpns, gpus)``: sorted unique read VPNs and each one's lowest reader.

        Array form of ``min(phase_page_readers(phase)[vpn])`` — what the
        UM-hints contention rule asks of every remote page.
        """
        key = id(phase)
        if key not in self._phase_min_readers:
            self._phase_min_readers[key] = self._phase_extreme(
                phase, "read_pages", take_max=False
            )
        return self._phase_min_readers[key]

    def phase_max_writers(self, phase: Phase) -> "tuple[np.ndarray, np.ndarray]":
        """``(vpns, gpus)``: sorted unique store VPNs and each one's highest writer.

        Array form of ``phase_page_writers(phase)[vpn][-1]`` — RDL's
        post-phase last-writer update.
        """
        key = id(phase)
        if key not in self._phase_max_writers:
            self._phase_max_writers[key] = self._phase_extreme(
                phase, "store_pages", take_max=True
            )
        return self._phase_max_writers[key]

    def _phase_extreme(self, phase: Phase, attr: str, take_max: bool) -> tuple:
        arrays = []
        gpus = []
        for kernel in phase.kernels:
            pages = getattr(self.footprint(kernel), attr)
            if pages.size:
                arrays.append(pages)
                gpus.append(np.full(pages.shape, kernel.gpu, dtype=np.int64))
        if not arrays:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        vpns = np.concatenate(arrays)
        owners = np.concatenate(gpus)
        order = np.lexsort((owners, vpns))
        sv, so = vpns[order], owners[order]
        heads = np.empty(sv.shape, dtype=bool)
        heads[0] = True
        np.not_equal(sv[1:], sv[:-1], out=heads[1:])
        if take_max:
            # last element of each vpn group = max owner (sorted within group)
            pick = np.append(heads[1:], True)
        else:
            pick = heads
        return sv[heads], so[pick]

    # -- expansion (memoised) ----------------------------------------------------

    def stream(self, access: AccessRange) -> LineStream:
        """Expanded line stream for one access (all sweeps), memoised."""
        base = self._bases[access.buffer]
        key = (access, base)
        if key not in self._streams:
            self._streams[key] = expand_range(access, base)
        return self._streams[key]

    def store_streams(self, kernel: KernelSpec) -> list:
        """SM-coalesced store streams for one kernel.

        Returns ``[(AccessFootprint, LineStream, atomic: bool), ...]`` in
        program order — the exact input the GPS unit consumes.
        """
        if kernel not in self._store_streams:
            out = []
            stats = self._coalescer_stats.setdefault(kernel, CoalescerStats())
            footprint = self.footprint(kernel)
            for access_fp in footprint.stores:
                stream = sm_coalesce(self.stream(access_fp.access), stats)
                out.append((access_fp, stream, access_fp.is_atomic))
            self._store_streams[kernel] = out
        return self._store_streams[kernel]

    def coalescer_stats(self, kernel: KernelSpec) -> CoalescerStats:
        """SM-coalescer accounting for one kernel's store stream.

        Reflects *one* pass over the distinct kernel (the expansion is
        memoised, so iterations share it) — a per-replay rate, not a
        per-iteration total.
        """
        self.store_streams(kernel)
        return self._coalescer_stats[kernel]

    # -- footprints -------------------------------------------------------------

    def footprint(self, kernel: KernelSpec) -> KernelFootprint:
        """Compute (once) the cached aggregate view of a kernel."""
        if kernel in self._footprints:
            return self._footprints[kernel]
        reads = []
        stores = []
        read_bytes: dict[PatternKind, int] = {}
        store_bytes: dict[PatternKind, int] = {}
        read_page_sets = []
        store_page_sets = []
        for access in kernel.accesses:
            stream = self.stream(access)
            pages = np.unique(stream.lines // self._lines_per_page)
            fp = AccessFootprint(
                access=access,
                buffer_base=self._bases[access.buffer],
                pages=pages,
                payload_bytes=stream.total_bytes,
                txns=len(stream),
            )
            kind = access.pattern.kind
            if access.op is MemOp.READ:
                reads.append(fp)
                read_bytes[kind] = read_bytes.get(kind, 0) + fp.payload_bytes
                read_page_sets.append(pages)
            else:
                stores.append(fp)
                store_bytes[kind] = store_bytes.get(kind, 0) + fp.payload_bytes
                store_page_sets.append(pages)
        footprint = KernelFootprint(
            kernel=kernel,
            reads=reads,
            stores=stores,
            l2_hit_rate=self._warm_l2_hit_rate(reads),
            read_bytes_by_kind=read_bytes,
            store_bytes_by_kind=store_bytes,
            read_pages=_union(read_page_sets),
            store_pages=_union(store_page_sets),
        )
        self._footprints[kernel] = footprint
        return footprint

    def _warm_l2_hit_rate(self, reads: list) -> float:
        """Warm-cache L2 hit rate of the kernel's concatenated read stream.

        The stream runs through a fresh L2 twice; the second pass's hit rate
        is the steady-state value iterative kernels see. This is the
        mechanism behind EQWP's super-linear scaling: a quarter-size
        per-GPU working set fits where the full one did not.
        """
        if not reads:
            return 0.0
        gpu = self.config.gpu
        cache = Cache(gpu.l2_bytes, gpu.cache_block, gpu.l2_assoc)
        streams = [self.stream(fp.access).lines for fp in reads]
        all_lines = np.concatenate(streams) if len(streams) > 1 else streams[0]
        cache.simulate_stream(all_lines)  # cold pass: warm the cache
        warm = cache.simulate_stream(all_lines)
        return warm.hit_rate

    # -- phase-level dataflow ------------------------------------------------------

    def phase_page_writers(self, phase: Phase) -> dict:
        """vpn -> sorted list of GPUs storing to it in this phase."""
        writers: dict[int, list[int]] = {}
        for kernel in phase.kernels:
            footprint = self.footprint(kernel)
            for vpn in footprint.store_pages.tolist():
                writers.setdefault(vpn, []).append(kernel.gpu)
        return {vpn: sorted(set(gpus)) for vpn, gpus in writers.items()}

    def phase_page_readers(self, phase: Phase) -> dict:
        """vpn -> sorted list of GPUs loading from it in this phase."""
        readers: dict[int, list[int]] = {}
        for kernel in phase.kernels:
            footprint = self.footprint(kernel)
            for vpn in footprint.read_pages.tolist():
                readers.setdefault(vpn, []).append(kernel.gpu)
        return {vpn: sorted(set(gpus)) for vpn, gpus in readers.items()}

    def written_extent_bytes(self, kernel: KernelSpec, shared_only: bool = True) -> int:
        """Bytes of buffer extent the kernel writes (bulk-copy granularity).

        This is what a ``cudaMemcpy``-based port must move: the written
        *range*, not the written payload — bulk copies cannot skip clean
        bytes inside the range (why GPS beats memcpy on sparse writers).
        """
        total = 0
        for access in kernel.accesses:
            if not access.op.is_store:
                continue
            if shared_only and not self.is_shared_buffer(access.buffer):
                continue
            total += access.length
        return total


def _union(page_sets: list) -> np.ndarray:
    if not page_sets:
        return np.empty(0, dtype=np.int64)
    if len(page_sets) == 1:
        return page_sets[0]
    return np.unique(np.concatenate(page_sets))


# -- analysis sharing across paradigm executors ---------------------------------

_ANALYSIS_CACHE: dict = {}


def get_analysis(program: TraceProgram, config: SystemConfig) -> ProgramAnalysis:
    """Shared :class:`ProgramAnalysis`, memoised across paradigm executors.

    Running six paradigms over the same program repeats the same trace
    expansion and L2 simulation; the analysis is paradigm-independent, so
    it is cached. The key covers everything expansion depends on: the
    program's identity (name, GPU count, buffer layout, phase count, scale
    metadata) and the cache/page geometry of the system.
    """
    key = (
        program.name,
        program.num_gpus,
        tuple((b.name, b.size) for b in program.buffers),
        len(program.phases),
        program.metadata.get("scale"),
        config.page_size,
        config.gpu.l2_bytes,
        config.gpu.l2_assoc,
        config.gpu.cache_block,
    )
    if key not in _ANALYSIS_CACHE:
        _ANALYSIS_CACHE[key] = ProgramAnalysis(program, config)
    return _ANALYSIS_CACHE[key]


def clear_analysis_cache() -> None:
    """Drop all memoised analyses (tests that tweak global state use this)."""
    _ANALYSIS_CACHE.clear()
