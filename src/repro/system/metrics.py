"""Derived metrics over simulation results.

The raw :class:`~repro.system.results.SimulationResult` carries time and
bytes; these helpers compute the quantities architects actually discuss:
communication-to-computation ratio, achieved link utilisation, per-GPU
traffic balance, and effective interconnect bandwidth demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from .results import SimulationResult


@dataclass(frozen=True)
class CommunicationMetrics:
    """Communication-centric view of one run."""

    total_time: float
    interconnect_bytes: int
    #: Mean bytes/second the busiest egress port sustained over the run.
    peak_egress_demand: float
    #: Fraction of one link's bandwidth the busiest port's average demand
    #: represents (>1.0 means the run was interconnect-bound somewhere).
    peak_link_utilisation: float
    #: max/min egress bytes across GPUs (1.0 = perfectly balanced).
    egress_imbalance: float
    #: Exposed communication time as a fraction of total (from phases).
    exposed_comm_fraction: float


def communication_metrics(
    result: SimulationResult, config: SystemConfig
) -> CommunicationMetrics:
    """Compute the communication profile of one finished run.

    A run with zero total time (an empty trace program is legitimate — e.g.
    a zero-iteration sweep point) yields zeroed metrics rather than raising:
    there was no communication, and every rate over a zero-length window is
    reported as zero demand with perfect balance.
    """
    if result.total_time <= 0:
        return CommunicationMetrics(
            total_time=result.total_time,
            interconnect_bytes=result.interconnect_bytes,
            peak_egress_demand=0.0,
            peak_link_utilisation=0.0,
            egress_imbalance=1.0,
            exposed_comm_fraction=0.0,
        )
    egress = [result.traffic.egress_bytes(g) for g in range(result.num_gpus)]
    busiest = max(egress) if egress else 0
    demand = busiest / result.total_time
    bandwidth = config.link.effective_bandwidth
    utilisation = demand / bandwidth if bandwidth > 0 else 0.0
    positive = [e for e in egress if e > 0]
    imbalance = (max(positive) / min(positive)) if len(positive) > 1 else 1.0
    exposed = sum(p.exposed_transfer_time for p in result.phases)
    return CommunicationMetrics(
        total_time=result.total_time,
        interconnect_bytes=result.interconnect_bytes,
        peak_egress_demand=demand,
        peak_link_utilisation=utilisation,
        egress_imbalance=imbalance,
        exposed_comm_fraction=min(1.0, exposed / result.total_time),
    )


@dataclass(frozen=True)
class ScalingMetrics:
    """Strong-scaling quality of a multi-GPU run vs its baseline."""

    speedup: float
    efficiency: float
    #: Speedup as a fraction of the infinite-bandwidth speedup (the paper's
    #: "opportunity captured").
    opportunity_captured: float


def scaling_metrics(
    single: SimulationResult,
    multi: SimulationResult,
    infinite: SimulationResult,
) -> ScalingMetrics:
    """Compute speedup/efficiency/opportunity from three runs."""
    if multi.total_time <= 0 or infinite.total_time <= 0:
        raise ValueError("runs must have positive time")
    speedup = single.total_time / multi.total_time
    ceiling = single.total_time / infinite.total_time
    return ScalingMetrics(
        speedup=speedup,
        efficiency=speedup / multi.num_gpus,
        opportunity_captured=speedup / ceiling if ceiling > 0 else 0.0,
    )


def traffic_by_distance(result: SimulationResult) -> dict:
    """Bytes binned by GPU-index distance |src - dst|.

    Halo-exchange workloads concentrate at distance 1; all-to-all spreads
    across distances — a quick fingerprint of the communication pattern.
    """
    bins: dict[int, int] = {}
    matrix = result.traffic.as_array()
    n = result.num_gpus
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            distance = abs(src - dst)
            bins[distance] = bins.get(distance, 0) + int(matrix[src, dst])
    return dict(sorted(bins.items()))
