"""Top-level simulation entry points."""

from __future__ import annotations

from ..config import SystemConfig, default_system
from ..system.results import SimulationResult
from ..trace.program import TraceProgram


def simulate(program: TraceProgram, paradigm: str, config: SystemConfig) -> SimulationResult:
    """Run one trace program under one paradigm on one system."""
    from ..paradigms.registry import make_executor  # local import: avoids a cycle

    executor = make_executor(paradigm, program, config)
    return executor.run()


def speedup_over_single_gpu(
    build_program,
    paradigm: str,
    config: SystemConfig,
    single_gpu_config: "SystemConfig | None" = None,
) -> tuple:
    """Strong-scaling speedup: single-GPU time / multi-GPU time.

    ``build_program`` is a callable ``(num_gpus) -> TraceProgram`` (a
    workload's ``build``). The single-GPU baseline runs the same problem on
    one GPU with no communication — the "well-optimized single GPU
    implementation" of section 7.1. Returns
    ``(speedup, multi_result, single_result)``.
    """
    if single_gpu_config is None:
        single_gpu_config = default_system(num_gpus=1, link=config.link)
    single_program = build_program(1)
    multi_program = build_program(config.num_gpus)
    single = simulate(single_program, "memcpy", single_gpu_config)
    multi = simulate(multi_program, paradigm, config)
    if multi.total_time <= 0:
        raise ZeroDivisionError("multi-GPU run produced zero time")
    return single.total_time / multi.total_time, multi, single
