"""Deprecated trace-program linter shim.

Superseded by :mod:`repro.analysis`, the memory-model-aware static
analyzer. The five historical checks live on there with stable codes and
structured locations (and one bug fixed: the payload-balance rule no
longer skips phases containing a zero-payload kernel):

==================  =======  =========================
old code            new code new rule name
==================  =======  =========================
``unused-buffer``   GPS101   ``unused-buffer``
``idle-gpus``       GPS102   ``idle-gpus``
``no-setup-phase``  GPS103   ``no-setup-phase``
``store-race``      GPS001   ``weak-write-write-race``
``payload-…``       GPS104   ``payload-imbalance``
==================  =======  =========================

:func:`lint_program` now delegates to
:func:`repro.analysis.analyze_program` and returns the analyzer's
:class:`repro.analysis.Diagnostic` objects (severity compares equal to the
old plain strings). New code should import from :mod:`repro.analysis`
directly; this module will be removed in a future release.
"""

from __future__ import annotations

import warnings

from ..analysis import Diagnostic, Severity, analyze_program
from ..trace.program import TraceProgram

__all__ = ["Diagnostic", "Severity", "lint_program"]


def lint_program(program: TraceProgram) -> list[Diagnostic]:
    """Deprecated alias for :func:`repro.analysis.analyze_program`."""
    warnings.warn(
        "repro.system.validate.lint_program is deprecated; use "
        "repro.analysis.analyze_program",
        DeprecationWarning,
        stacklevel=2,
    )
    return analyze_program(program)
