"""Trace-program linter: diagnostics beyond hard validation.

``TraceProgram`` construction rejects *inconsistent* programs (bounds,
duplicate names, unknown buffers). This linter flags *suspicious* ones —
things that run fine but usually mean the trace author made a mistake:

* buffers that are never accessed;
* GPUs that sit idle in some phases (load imbalance);
* iterative programs without a setup phase (first-touch/last-writer state
  will default to buffer homes);
* kernels whose store ranges overlap within one phase on different GPUs
  (a data race unless the accesses are atomics);
* phases with wildly imbalanced per-GPU payloads.

Used by the CLI's trace tooling and available as a library call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trace.program import TraceProgram
from ..trace.records import MemOp


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding."""

    severity: str  # "warning" | "info"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def lint_program(program: TraceProgram) -> list:
    """Run all checks; returns diagnostics (empty = clean)."""
    out: list[Diagnostic] = []
    out.extend(_check_unused_buffers(program))
    out.extend(_check_idle_gpus(program))
    out.extend(_check_setup_phase(program))
    out.extend(_check_store_races(program))
    out.extend(_check_payload_balance(program))
    return out


def _check_unused_buffers(program: TraceProgram) -> list:
    used = {a.buffer for k in program.iter_kernels() for a in k.accesses}
    return [
        Diagnostic("warning", "unused-buffer", f"buffer {b.name!r} is never accessed")
        for b in program.buffers
        if b.name not in used
    ]


def _check_idle_gpus(program: TraceProgram) -> list:
    out = []
    for phase in program.phases:
        missing = sorted(set(range(program.num_gpus)) - set(phase.gpus))
        if missing:
            out.append(
                Diagnostic(
                    "info",
                    "idle-gpus",
                    f"phase {phase.name!r} leaves GPUs {missing} idle",
                )
            )
    return out


def _check_setup_phase(program: TraceProgram) -> list:
    if program.iterations >= 1 and not program.phases_in_iteration(-1):
        return [
            Diagnostic(
                "warning",
                "no-setup-phase",
                "iterative program has no setup phase; first-touch and "
                "last-writer state will default to buffer homes",
            )
        ]
    return []


def _check_store_races(program: TraceProgram) -> list:
    out = []
    for phase in program.phases:
        ranges = []  # (gpu, buffer, start, end, atomic)
        for kernel in phase.kernels:
            for access in kernel.stores():
                ranges.append(
                    (kernel.gpu, access.buffer, access.offset, access.end,
                     access.op is MemOp.ATOMIC)
                )
        for i, (gpu_a, buf_a, start_a, end_a, atomic_a) in enumerate(ranges):
            for gpu_b, buf_b, start_b, end_b, atomic_b in ranges[i + 1 :]:
                if gpu_a == gpu_b or buf_a != buf_b:
                    continue
                if start_a < end_b and start_b < end_a and not (atomic_a and atomic_b):
                    out.append(
                        Diagnostic(
                            "warning",
                            "store-race",
                            f"phase {phase.name!r}: GPUs {gpu_a} and {gpu_b} both "
                            f"store non-atomically to {buf_a!r} "
                            f"[{max(start_a, start_b)}, {min(end_a, end_b)})",
                        )
                    )
    return out


def _check_payload_balance(program: TraceProgram, threshold: float = 4.0) -> list:
    out = []
    for phase in program.phases:
        if len(phase.kernels) < 2:
            continue
        payloads = [
            sum(a.total_bytes() for a in kernel.accesses) for kernel in phase.kernels
        ]
        low = min(payloads)
        high = max(payloads)
        if low > 0 and high / low > threshold:
            out.append(
                Diagnostic(
                    "info",
                    "payload-imbalance",
                    f"phase {phase.name!r}: per-GPU payload varies "
                    f"{high / low:.1f}x ({low} .. {high} bytes)",
                )
            )
    return out
