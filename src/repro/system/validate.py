"""Removed: the trace-program linter moved to :mod:`repro.analysis`.

The deprecated ``lint_program`` shim that lived here for two releases is
gone. The historical checks survive in the memory-model sanitizer with
stable codes (``unused-buffer`` -> GPS101, ``idle-gpus`` -> GPS102,
``no-setup-phase`` -> GPS103, ``store-race`` -> GPS001,
``payload-imbalance`` -> GPS104); use::

    from repro.analysis import analyze_program

which also provides witnesses, auto-fixes (:func:`repro.analysis.
fix_program`), and the paradigm-portability matrix.
"""

raise ImportError(
    "repro.system.validate was removed; use repro.analysis "
    "(analyze_program replaces lint_program — the old checks live on as "
    "rules GPS101/GPS102/GPS103/GPS001/GPS104)"
)
