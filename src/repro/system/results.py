"""Result containers produced by paradigm executors.

Results round-trip through plain dicts (:meth:`SimulationResult.to_dict` /
:meth:`SimulationResult.from_dict`) so the persistent runner cache can store
them as JSON and hand back an equivalent object in a later process.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..interconnect.traffic import TrafficMatrix


@dataclass
class PhaseBreakdown:
    """Timing contributions of one phase (post-DES, max over GPUs)."""

    name: str
    start: float
    end: float
    kernel_time: float
    exposed_transfer_time: float

    @property
    def duration(self) -> float:
        """Wall time of the phase including exposed communication."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PhaseBreakdown":
        """Inverse of :meth:`to_dict`."""
        return cls(**payload)


@dataclass
class SimulationResult:
    """Everything one simulation run produces.

    ``total_time`` is the end-to-end makespan; ``traffic`` is the
    interconnect byte matrix (the Figure 10 metric); the remaining fields
    carry paradigm-specific detail for the sensitivity studies.
    """

    program_name: str
    paradigm: str
    num_gpus: int
    total_time: float
    traffic: TrafficMatrix
    phases: list = field(default_factory=list)
    #: Per-GPU write-queue stats (GPS runs only).
    write_queue_stats: list = field(default_factory=list)
    #: Per-GPU GPS-TLB stats (GPS runs only).
    gps_tlb_stats: list = field(default_factory=list)
    #: Figure 9 histogram {subscriber_count: pages} (GPS runs only).
    subscriber_histogram: dict = field(default_factory=dict)
    #: UM runs: page faults taken and pages migrated.
    fault_count: int = 0
    pages_migrated: int = 0
    #: Flat ``component.metric`` hardware-counter snapshot (see repro.obs).
    counters: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def interconnect_bytes(self) -> int:
        """Total bytes that crossed the interconnect."""
        return self.traffic.total_bytes()

    def to_dict(self) -> dict:
        """JSON-safe representation of the full result (lossless round-trip).

        Floats survive exactly: JSON stores Python's shortest-roundtrip
        repr, so ``from_dict(json.loads(json.dumps(to_dict())))`` compares
        equal field-for-field — the property the disk cache relies on for
        byte-identical warm reruns.
        """
        return {
            "program_name": self.program_name,
            "paradigm": self.paradigm,
            "num_gpus": self.num_gpus,
            "total_time": self.total_time,
            "traffic": self.traffic.as_lists(),
            "phases": [p.to_dict() for p in self.phases],
            "write_queue_stats": [dataclasses.asdict(s) for s in self.write_queue_stats],
            "gps_tlb_stats": [dataclasses.asdict(s) for s in self.gps_tlb_stats],
            "subscriber_histogram": {str(k): v for k, v in self.subscriber_histogram.items()},
            "fault_count": self.fault_count,
            "pages_migrated": self.pages_migrated,
            "counters": self.counters,
            "extras": self.extras,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        from ..core.write_queue import WriteQueueStats  # local: avoids a cycle
        from ..memory.tlb import TLBStats

        return cls(
            program_name=payload["program_name"],
            paradigm=payload["paradigm"],
            num_gpus=payload["num_gpus"],
            total_time=payload["total_time"],
            traffic=TrafficMatrix.from_lists(payload["traffic"]),
            phases=[PhaseBreakdown.from_dict(p) for p in payload["phases"]],
            write_queue_stats=[WriteQueueStats(**s) for s in payload["write_queue_stats"]],
            gps_tlb_stats=[TLBStats(**s) for s in payload["gps_tlb_stats"]],
            subscriber_histogram={int(k): v for k, v in payload["subscriber_histogram"].items()},
            fault_count=payload["fault_count"],
            pages_migrated=payload["pages_migrated"],
            counters=payload.get("counters", {}),
            extras=payload["extras"],
        )

    def summary(self) -> dict:
        """Flat dict for reports and benchmark extra_info."""
        return {
            "program": self.program_name,
            "paradigm": self.paradigm,
            "num_gpus": self.num_gpus,
            "total_time_s": self.total_time,
            "interconnect_bytes": self.interconnect_bytes,
            "fault_count": self.fault_count,
            "pages_migrated": self.pages_migrated,
        }
