"""Result containers produced by paradigm executors."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..interconnect.traffic import TrafficMatrix


@dataclass
class PhaseBreakdown:
    """Timing contributions of one phase (post-DES, max over GPUs)."""

    name: str
    start: float
    end: float
    kernel_time: float
    exposed_transfer_time: float

    @property
    def duration(self) -> float:
        """Wall time of the phase including exposed communication."""
        return self.end - self.start


@dataclass
class SimulationResult:
    """Everything one simulation run produces.

    ``total_time`` is the end-to-end makespan; ``traffic`` is the
    interconnect byte matrix (the Figure 10 metric); the remaining fields
    carry paradigm-specific detail for the sensitivity studies.
    """

    program_name: str
    paradigm: str
    num_gpus: int
    total_time: float
    traffic: TrafficMatrix
    phases: list = field(default_factory=list)
    #: Per-GPU write-queue stats (GPS runs only).
    write_queue_stats: list = field(default_factory=list)
    #: Per-GPU GPS-TLB stats (GPS runs only).
    gps_tlb_stats: list = field(default_factory=list)
    #: Figure 9 histogram {subscriber_count: pages} (GPS runs only).
    subscriber_histogram: dict = field(default_factory=dict)
    #: UM runs: page faults taken and pages migrated.
    fault_count: int = 0
    pages_migrated: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def interconnect_bytes(self) -> int:
        """Total bytes that crossed the interconnect."""
        return self.traffic.total_bytes()

    def summary(self) -> dict:
        """Flat dict for reports and benchmark extra_info."""
        return {
            "program": self.program_name,
            "paradigm": self.paradigm,
            "num_gpus": self.num_gpus,
            "total_time_s": self.total_time,
            "interconnect_bytes": self.interconnect_bytes,
            "fault_count": self.fault_count,
            "pages_migrated": self.pages_migrated,
        }
