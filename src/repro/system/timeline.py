"""Execution timelines: turn a finished DES run into a per-resource Gantt.

After an executor runs, its engine's :class:`~repro.obs.TraceCollector`
holds one structured span per scheduled resource-bound task. This module
projects that trace into per-resource timelines and renders a monospace
Gantt chart — the quickest way to *see* whether a paradigm overlapped its
communication (GPS) or serialised it (memcpy), and where a port saturated.
The spans are the source of truth; when tracing is disabled
(``REPRO_NO_TRACE=1``) the same entries are reconstructed from the engine's
scheduled task list, so the two views can never diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..paradigms.base import ParadigmExecutor
from ..sim.engine import Engine
from ..units import fmt_time


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduled task on one resource."""

    resource: str
    name: str
    start: float
    end: float
    category: str = "task"

    @property
    def duration(self) -> float:
        return self.end - self.start


def extract_timeline(engine: Engine) -> list:
    """All resource-bound tasks of a finished engine, sorted by start.

    Raises :class:`SimulationError` if the engine has not run (e.g. it was
    rebuilt or its resources were reset): an empty Gantt from a never-run
    engine reads as "nothing happened", which silently hides the bug.
    """
    if not engine.has_run:
        raise SimulationError(
            "cannot extract a timeline from an engine that has not run "
            "(did something reset it?)"
        )
    if engine.collector.enabled:
        entries = [
            TimelineEntry(span.track, span.name, span.start, span.end, span.category)
            for span in engine.collector
            if span.duration > 0
        ]
    else:
        entries = [
            TimelineEntry(task.resource.name, task.name, task.start, task.end, task.category)
            for task in engine.tasks()
            if task.resource is not None and task.duration > 0
        ]
    entries.sort(key=lambda e: (e.resource, e.start))
    return entries


def resource_utilisation(engine: Engine) -> dict:
    """Busy fraction per resource over the makespan."""
    makespan = engine.makespan()
    if makespan <= 0:
        return {}
    busy: dict[str, float] = {}
    for entry in extract_timeline(engine):
        busy[entry.resource] = busy.get(entry.resource, 0.0) + entry.duration
    return {name: time / makespan for name, time in sorted(busy.items())}


def render_gantt(
    engine: Engine,
    width: int = 80,
    start: float = 0.0,
    end: "float | None" = None,
) -> str:
    """One row per resource; ``#`` cells mark busy time in ``[start, end]``.

    Overlap structure is the point: under GPS the egress rows fill *under*
    the GPU rows; under memcpy they fill strictly after.
    """
    entries = extract_timeline(engine)
    if not entries:
        return "(empty timeline)"
    window_end = end if end is not None else engine.makespan()
    span = max(window_end - start, 1e-12)
    rows: dict[str, list] = {}
    for entry in entries:
        cells = rows.setdefault(entry.resource, [" "] * width)
        lo = max(entry.start, start)
        hi = min(entry.end, window_end)
        if hi <= lo:
            continue
        first = int((lo - start) / span * (width - 1))
        last = int((hi - start) / span * (width - 1))
        for i in range(first, last + 1):
            cells[i] = "#"
    label_width = max(len(name) for name in rows)
    lines = [
        f"window [{fmt_time(start)} .. {fmt_time(window_end)}], "
        f"one cell = {fmt_time(span / width)}"
    ]
    for name in sorted(rows):
        lines.append(f"{name:>{label_width}} |{''.join(rows[name])}|")
    return "\n".join(lines)


def run_with_timeline(executor: ParadigmExecutor) -> tuple:
    """Run an executor and return ``(result, gantt_text, utilisation)``.

    Convenience wrapper: ``make_executor(...)`` then this, instead of
    ``simulate`` (which discards the engine).
    """
    result = executor.run()
    return result, render_gantt(executor.engine), resource_utilisation(executor.engine)
