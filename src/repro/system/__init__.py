"""System assembly: program analysis, paradigm execution, results.

The entry point is :func:`repro.system.executor.simulate`, which runs one
trace program under one memory-management paradigm on one system
configuration and returns a :class:`repro.system.results.SimulationResult`.
"""

from .analysis import KernelFootprint, ProgramAnalysis
from .executor import simulate, speedup_over_single_gpu
from .results import SimulationResult

__all__ = [
    "KernelFootprint",
    "ProgramAnalysis",
    "simulate",
    "speedup_over_single_gpu",
    "SimulationResult",
]
