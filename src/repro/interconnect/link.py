"""A directed link between two endpoints with bandwidth, latency, and counters."""

from __future__ import annotations

import math

from ..config import LinkConfig


class Link:
    """One direction of an inter-GPU connection.

    Wraps the static :class:`~repro.config.LinkConfig` with runtime byte
    accounting. Transfer-time arithmetic lives here so every paradigm charges
    communication identically: ``latency + bytes / effective_bandwidth``.
    """

    def __init__(self, src: int, dst: int, config: LinkConfig) -> None:
        self.src = src
        self.dst = dst
        self.config = config
        self.bytes_transferred = 0
        self.transfer_count = 0

    @property
    def bandwidth(self) -> float:
        """Payload bandwidth in bytes/second."""
        return self.config.effective_bandwidth

    @property
    def latency(self) -> float:
        """One-way latency in seconds."""
        return self.config.latency

    def transfer_time(self, num_bytes: int) -> float:
        """Wall time to move ``num_bytes`` as one message."""
        if num_bytes <= 0:
            return 0.0
        if math.isinf(self.bandwidth):
            return self.latency
        return self.latency + num_bytes / self.bandwidth

    def record(self, num_bytes: int) -> None:
        """Account for a completed transfer."""
        if num_bytes < 0:
            raise ValueError(f"negative transfer of {num_bytes} bytes")
        self.bytes_transferred += num_bytes
        self.transfer_count += 1

    def reset(self) -> None:
        """Zero the counters (between experiments)."""
        self.bytes_transferred = 0
        self.transfer_count = 0

    def counters(self) -> dict:
        """Observability snapshot: ``metric: value`` for the counter registry."""
        return {"bytes": self.bytes_transferred, "transfers": self.transfer_count}

    def __repr__(self) -> str:
        return (
            f"Link({self.src}->{self.dst}, {self.config.name}, "
            f"{self.bytes_transferred} B in {self.transfer_count} transfers)"
        )
