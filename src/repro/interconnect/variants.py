"""Topology variants beyond the crossbar: switch trees and rings.

The evaluation's default :class:`~repro.interconnect.topology.CrossbarTopology`
models per-port limits with full bisection (NVSwitch-like). Real systems
also come as:

* **switch trees** (PCIe): several GPUs share an upstream link, so the
  fabric has an *aggregate* bandwidth cap below the sum of the ports;
* **rings** (DGX-1-style NVLink meshes reduced to their worst path):
  a transfer consumes bandwidth on every hop between source and
  destination, so distance matters.

These variants answer "how much does GPS's subscription trimming matter on
a worse fabric" — the traffic GPS saves is multiplied by hop count on a
ring and contends in the root of a tree.
"""

from __future__ import annotations

from ..config import LinkConfig
from ..errors import ConfigError
from .link import Link
from .topology import CrossbarTopology, Topology


class SwitchTopology(CrossbarTopology):
    """PCIe-style switch tree: per-port limits plus a fabric aggregate cap.

    ``oversubscription`` is the ratio of total port bandwidth to fabric
    core bandwidth (2.0 means the root carries half the sum of the leaves
    — a typical two-level PCIe tree).
    """

    def __init__(
        self,
        num_gpus: int,
        link_config: LinkConfig,
        oversubscription: float = 2.0,
    ) -> None:
        super().__init__(num_gpus, link_config)
        if oversubscription < 1.0:
            raise ConfigError("oversubscription must be >= 1.0")
        self.oversubscription = oversubscription
        core_bandwidth = num_gpus * link_config.effective_bandwidth / oversubscription
        self._core = Link(
            -1,
            -1,
            LinkConfig(
                name=f"{link_config.name} core",
                bandwidth=core_bandwidth,
                latency=link_config.latency,
            ),
        )

    @property
    def core_link(self) -> Link:
        """The shared fabric core every inter-GPU byte crosses."""
        return self._core

    def transfer_time(self, src: int, dst: int, num_bytes: int) -> float:
        """Point-to-point time: the slower of the port and its core share."""
        if src == dst or num_bytes <= 0:
            return 0.0
        port_time = super().transfer_time(src, dst, num_bytes)
        core_time = self._core.transfer_time(num_bytes)
        return max(port_time, core_time)

    def record_transfer(self, src: int, dst: int, num_bytes: int) -> None:
        super().record_transfer(src, dst, num_bytes)
        if src != dst:
            self._core.record(num_bytes)

    def core_utilisation(self, wall_time: float) -> float:
        """Mean fraction of core bandwidth used over ``wall_time``."""
        if wall_time <= 0:
            return 0.0
        return self._core.bytes_transferred / wall_time / self._core.bandwidth

    def reset(self) -> None:
        super().reset()
        self._core.reset()


class RingTopology(Topology):
    """Bidirectional ring: transfers traverse min-hop paths.

    Each adjacent GPU pair is joined by one directed link per direction. A
    transfer from ``src`` to ``dst`` takes the shorter ring direction and
    occupies every directed link along it — so effective bandwidth between
    distant GPUs divides by hop count, and latency accumulates per hop.
    The per-GPU "port" view (egress/ingress) maps to the GPU's clockwise
    links, which is what the DES serialises on.
    """

    def __init__(self, num_gpus: int, link_config: LinkConfig) -> None:
        super().__init__(num_gpus, link_config)
        if num_gpus < 2:
            raise ConfigError("a ring needs at least two GPUs")
        #: Clockwise directed links: cw[i] carries i -> i+1.
        self._cw = [Link(g, (g + 1) % num_gpus, link_config) for g in range(num_gpus)]
        #: Counter-clockwise directed links: ccw[i] carries i -> i-1.
        self._ccw = [Link(g, (g - 1) % num_gpus, link_config) for g in range(num_gpus)]

    def egress_link(self, gpu: int) -> Link:
        return self._cw[gpu]

    def ingress_link(self, gpu: int) -> Link:
        return self._cw[(gpu - 1) % self.num_gpus]

    def hops(self, src: int, dst: int) -> int:
        """Min-hop distance along the ring."""
        if src == dst:
            return 0
        clockwise = (dst - src) % self.num_gpus
        return min(clockwise, self.num_gpus - clockwise)

    def path(self, src: int, dst: int) -> list:
        """Directed links of the min-hop path (clockwise wins ties)."""
        if src == dst:
            return []
        clockwise = (dst - src) % self.num_gpus
        links = []
        node = src
        if clockwise <= self.num_gpus - clockwise:
            for _ in range(clockwise):
                links.append(self._cw[node])
                node = (node + 1) % self.num_gpus
        else:
            for _ in range(self.num_gpus - clockwise):
                links.append(self._ccw[node])
                node = (node - 1) % self.num_gpus
        return links

    def path_latency(self, src: int, dst: int) -> float:
        """Latency accumulates per hop."""
        return self.hops(src, dst) * self.link_config.latency

    def transfer_time(self, src: int, dst: int, num_bytes: int) -> float:
        """Serialisation on every hop plus per-hop latency."""
        hops = self.hops(src, dst)
        if hops == 0 or num_bytes <= 0:
            return 0.0
        serialisation = hops * num_bytes / self.link_config.effective_bandwidth
        return self.path_latency(src, dst) + serialisation

    def record_transfer(self, src: int, dst: int, num_bytes: int) -> None:
        """Charge every directed link on the min-hop path."""
        for link in self.path(src, dst):
            link.record(num_bytes)

    def reset(self) -> None:
        for link in self._cw + self._ccw:
            link.reset()
