"""Inter-GPU traffic accounting as a source x destination byte matrix.

Figure 10 of the paper compares "total data moved over the interconnect"
across paradigms; this matrix is what every paradigm writes into so the
comparison is apples-to-apples.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError


class TrafficMatrix:
    """A ``num_gpus x num_gpus`` matrix of bytes sent from row to column.

    The diagonal stays zero — local accesses never touch the interconnect.
    Host (CPU) staging is modelled as GPU-to-GPU traffic because all the
    evaluated paradigms use peer DMA or peer stores.
    """

    def __init__(self, num_gpus: int) -> None:
        if num_gpus < 1:
            raise ConfigError("traffic matrix needs at least one GPU")
        self.num_gpus = num_gpus
        self._bytes = np.zeros((num_gpus, num_gpus), dtype=np.int64)

    def add(self, src: int, dst: int, num_bytes: int) -> None:
        """Record ``num_bytes`` moving from ``src`` to ``dst``."""
        if src == dst:
            raise ConfigError(f"GPU {src}: local traffic does not cross the interconnect")
        if num_bytes < 0:
            raise ConfigError(f"negative traffic {num_bytes}")
        self._bytes[src, dst] += num_bytes

    def add_broadcast(self, src: int, dsts: "list[int] | set[int]", num_bytes: int) -> None:
        """Record one payload replicated to several destinations."""
        for dst in dsts:
            if dst != src:
                self.add(src, dst, num_bytes)

    def total_bytes(self) -> int:
        """All bytes that crossed the interconnect."""
        return int(self._bytes.sum())

    def egress_bytes(self, gpu: int) -> int:
        """Bytes sent by one GPU."""
        return int(self._bytes[gpu, :].sum())

    def ingress_bytes(self, gpu: int) -> int:
        """Bytes received by one GPU."""
        return int(self._bytes[:, gpu].sum())

    def pair_bytes(self, src: int, dst: int) -> int:
        """Bytes on one directed pair."""
        return int(self._bytes[src, dst])

    def as_array(self) -> np.ndarray:
        """A copy of the underlying matrix."""
        return self._bytes.copy()

    def as_lists(self) -> list:
        """The matrix as nested plain-int lists (JSON-safe)."""
        return self._bytes.tolist()

    @classmethod
    def from_lists(cls, rows: list) -> "TrafficMatrix":
        """Rebuild a matrix from :meth:`as_lists` output."""
        matrix = cls(len(rows))
        matrix._bytes = np.asarray(rows, dtype=np.int64)
        if matrix._bytes.shape != (matrix.num_gpus, matrix.num_gpus):
            raise ConfigError("traffic matrix rows must form a square matrix")
        return matrix

    def merge(self, other: "TrafficMatrix") -> None:
        """Accumulate another matrix into this one."""
        if other.num_gpus != self.num_gpus:
            raise ConfigError("cannot merge traffic matrices of different sizes")
        self._bytes += other._bytes

    def reset(self) -> None:
        """Zero all counters."""
        self._bytes[:] = 0
