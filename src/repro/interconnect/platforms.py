"""Historical GPU platform bandwidths, reproducing Figure 3 of the paper.

Figure 3 plots local (HBM/GDDR) versus remote (interconnect) bandwidth for
five generations of NVIDIA multi-GPU platforms and observes that a roughly
3x gap persists even as both improve. The values below are the public
figures for each platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import GB_S


@dataclass(frozen=True)
class Platform:
    """One hardware generation's local and remote bandwidth."""

    name: str
    gpu: str
    interconnect: str
    local_bandwidth: float  # bytes/s, per GPU
    remote_bandwidth: float  # bytes/s, per GPU aggregate

    @property
    def gap(self) -> float:
        """Local-to-remote bandwidth ratio."""
        return self.local_bandwidth / self.remote_bandwidth


#: The five platforms of Figure 3, oldest first.
PLATFORMS: tuple[Platform, ...] = (
    Platform("Discrete", "Kepler", "PCIe 3.0", 288 * GB_S, 16 * GB_S),
    Platform("DGX-1", "Pascal", "NVLink 1", 732 * GB_S, 80 * GB_S),
    Platform("DGX-1V", "Volta", "NVLink 2", 900 * GB_S, 150 * GB_S),
    Platform("DGX-2", "Volta", "NVLink 2 + NVSwitch", 900 * GB_S, 300 * GB_S),
    Platform("DGX-A100", "Ampere", "NVLink 3 + NVSwitch", 1555 * GB_S, 600 * GB_S),
)


def bandwidth_gap_summary() -> list[dict]:
    """Rows for the Figure 3 reproduction: name, local, remote, gap."""
    return [
        {
            "platform": p.name,
            "gpu": p.gpu,
            "interconnect": p.interconnect,
            "local_gb_s": p.local_bandwidth / GB_S,
            "remote_gb_s": p.remote_bandwidth / GB_S,
            "gap": p.gap,
        }
        for p in PLATFORMS
    ]
