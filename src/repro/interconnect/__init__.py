"""Interconnect substrate: links, topologies, traffic accounting, platforms.

Models the inter-GPU fabric the paper sweeps (PCIe 3.0 through projected
PCIe 6.0, NVLink generations, and an infinite-bandwidth ideal). The key
quantity every paradigm competes over is per-GPU egress/ingress bandwidth;
the topology decides how point-to-point transfers and GPS broadcasts share
it.
"""

from .link import Link
from .platforms import PLATFORMS, Platform
from .topology import CrossbarTopology, Topology
from .traffic import TrafficMatrix
from .variants import RingTopology, SwitchTopology

__all__ = [
    "Link",
    "Platform",
    "PLATFORMS",
    "Topology",
    "CrossbarTopology",
    "RingTopology",
    "SwitchTopology",
    "TrafficMatrix",
]
