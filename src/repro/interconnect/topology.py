"""Interconnect topologies: how GPU pairs share fabric bandwidth.

The evaluation systems attach every GPU to a shared fabric (PCIe switch
hierarchy or NVSwitch) through one port. The binding constraint on every
paradigm is per-GPU *port* bandwidth: a GPU broadcasting to N-1 subscribers
pushes each replica through its own egress port, and a GPU being flooded by
peers is bounded by its ingress port. :class:`CrossbarTopology` models
exactly that — full bisection inside the fabric, finite per-port bandwidth
at the edges — which matches both PCIe switch trees (upper-bounded) and
NVSwitch (accurately).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..config import LinkConfig
from ..errors import ConfigError
from .link import Link


class Topology(ABC):
    """Abstract fabric: produces links and answers path-time queries."""

    def __init__(self, num_gpus: int, link_config: LinkConfig) -> None:
        if num_gpus < 1:
            raise ConfigError("topology needs at least one GPU")
        self.num_gpus = num_gpus
        self.link_config = link_config

    @abstractmethod
    def egress_link(self, gpu: int) -> Link:
        """The egress port of ``gpu`` into the fabric."""

    @abstractmethod
    def ingress_link(self, gpu: int) -> Link:
        """The ingress port of ``gpu`` out of the fabric."""

    def path_latency(self, src: int, dst: int) -> float:
        """One-way latency from ``src`` to ``dst``."""
        if src == dst:
            return 0.0
        return self.link_config.latency

    def transfer_time(self, src: int, dst: int, num_bytes: int) -> float:
        """Uncontended wall time for one point-to-point message."""
        if src == dst or num_bytes <= 0:
            return 0.0
        return self.egress_link(src).transfer_time(num_bytes)

    def record_transfer(self, src: int, dst: int, num_bytes: int) -> None:
        """Account a completed transfer on both ports."""
        if src == dst:
            return
        self.egress_link(src).record(num_bytes)
        self.ingress_link(dst).record(num_bytes)

    def reset(self) -> None:
        """Zero all port counters."""
        for gpu in range(self.num_gpus):
            self.egress_link(gpu).reset()
            self.ingress_link(gpu).reset()


class CrossbarTopology(Topology):
    """Full-bisection fabric with per-GPU port bandwidth limits.

    Each GPU has one egress and one ingress :class:`Link` at the configured
    link bandwidth. Any pair can talk concurrently; contention arises only
    at ports, which the discrete-event engine models by serialising jobs on
    each port's bandwidth resource.
    """

    def __init__(self, num_gpus: int, link_config: LinkConfig) -> None:
        super().__init__(num_gpus, link_config)
        self._egress = [Link(g, -1, link_config) for g in range(num_gpus)]
        self._ingress = [Link(-1, g, link_config) for g in range(num_gpus)]

    def egress_link(self, gpu: int) -> Link:
        return self._egress[gpu]

    def ingress_link(self, gpu: int) -> Link:
        return self._ingress[gpu]

    def broadcast_time(self, src: int, dsts: "list[int]", num_bytes: int) -> float:
        """Uncontended time to push one payload to each destination.

        Replicas share the source's egress port, so time scales with the
        number of *remote* destinations — the cost GPS's subscription
        tracking exists to cut (paper section 3.2).
        """
        remote = [d for d in dsts if d != src]
        if not remote or num_bytes <= 0:
            return 0.0
        return self._egress[src].transfer_time(num_bytes * len(remote))
