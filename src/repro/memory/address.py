"""Address arithmetic: virtual ranges, page numbers, and page walks.

Addresses are plain ``int`` bytes within a 49-bit virtual address space
(paper Table 1). Helpers here centralise the page arithmetic so page-size
sensitivity studies (section 7.4) only change one parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import TraceError
from ..units import is_power_of_two

#: Mask helper kept for documentation value: offsets within a 64 KiB page.
PAGE_OFFSET_MASK = 0xFFFF


def page_number(address: int, page_size: int) -> int:
    """Virtual or physical page number containing ``address``."""
    return address // page_size


def page_offset(address: int, page_size: int) -> int:
    """Byte offset of ``address`` within its page."""
    return address % page_size


def page_range(start: int, length: int, page_size: int) -> range:
    """Page numbers touched by the byte range ``[start, start+length)``."""
    if length <= 0:
        return range(0)
    first = page_number(start, page_size)
    last = page_number(start + length - 1, page_size)
    return range(first, last + 1)


@dataclass(frozen=True)
class VirtualRange:
    """A contiguous virtual byte range ``[start, start + length)``."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length < 0:
            raise TraceError(f"negative virtual range ({self.start}, {self.length})")

    @property
    def end(self) -> int:
        """One past the last byte of the range."""
        return self.start + self.length

    def pages(self, page_size: int) -> range:
        """Page numbers this range touches."""
        return page_range(self.start, self.length, page_size)

    def contains(self, address: int) -> bool:
        """Whether ``address`` lies in the range."""
        return self.start <= address < self.end

    def overlaps(self, other: "VirtualRange") -> bool:
        """Whether two ranges share at least one byte."""
        return self.start < other.end and other.start < self.end

    def aligned(self, alignment: int) -> "VirtualRange":
        """The smallest ``alignment``-aligned range covering this one."""
        if not is_power_of_two(alignment):
            raise TraceError(f"alignment must be a power of two, got {alignment}")
        start = self.start & ~(alignment - 1)
        end = (self.end + alignment - 1) & ~(alignment - 1)
        return VirtualRange(start, end - start)

    def blocks(self, block_size: int) -> Iterator[int]:
        """Yield the block numbers (e.g. 128 B cache lines) this range touches."""
        for block in page_range(self.start, self.length, block_size):
            yield block

    def split_evenly(self, parts: int) -> list["VirtualRange"]:
        """Split into ``parts`` contiguous near-equal sub-ranges.

        Used by workload generators to shard a buffer across GPUs the same
        way the original CUDA applications partition their domains.
        """
        if parts <= 0:
            raise TraceError("cannot split a range into zero parts")
        base = self.length // parts
        remainder = self.length % parts
        out = []
        cursor = self.start
        for i in range(parts):
            size = base + (1 if i < remainder else 0)
            out.append(VirtualRange(cursor, size))
            cursor += size
        return out
