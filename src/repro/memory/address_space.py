"""The shared multi-GPU virtual address space and its allocations.

All GPUs in a system share one virtual address space (as under CUDA unified
virtual addressing). Allocations come in three flavours matching the
allocation APIs the paper contrasts:

* ``PINNED`` — ``cudaMalloc``-style, resident on one GPU, peers access it
  remotely (the paradigm decides whether that ever happens);
* ``MANAGED`` — ``cudaMallocManaged``-style Unified Memory, migrated on
  fault or hint;
* ``GPS`` — ``cudaMallocGPS``-style, replicated on all subscribers
  (paper section 3.1).

The address space is a bump allocator over the 49-bit VA range; allocations
are page-aligned so that page-granular mechanisms (subscription, migration)
never split an allocation mid-page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..errors import AllocationError
from .address import VirtualRange


class AllocKind(enum.Enum):
    """Which allocation API produced a region."""

    PINNED = "pinned"
    MANAGED = "managed"
    GPS = "gps"


@dataclass
class Allocation:
    """One named allocation in the shared VA space."""

    name: str
    vrange: VirtualRange
    kind: AllocKind
    #: GPU whose memory initially backs the region (home node).
    home_gpu: int = 0
    #: For GPS allocations: True when the programmer manages subscriptions
    #: explicitly (the optional ``manual`` flag of ``cudaMallocGPS``).
    manual_subscription: bool = False
    metadata: dict = field(default_factory=dict)

    @property
    def start(self) -> int:
        """First virtual byte of the region."""
        return self.vrange.start

    @property
    def size(self) -> int:
        """Region length in bytes."""
        return self.vrange.length

    @property
    def end(self) -> int:
        """One past the last virtual byte."""
        return self.vrange.end

    def pages(self, page_size: int) -> range:
        """Page numbers the region covers."""
        return self.vrange.pages(page_size)


class AddressSpace:
    """Bump allocator over the shared virtual address space.

    The base is offset away from zero so that address arithmetic bugs that
    produce small integers fault loudly rather than aliasing allocation 0.
    """

    #: Start allocating at 256 MiB, mimicking a typical UVA heap base.
    HEAP_BASE = 256 * 1024 * 1024

    def __init__(self, page_size: int, va_bits: int = 49) -> None:
        self.page_size = page_size
        self.va_limit = 1 << va_bits
        self._cursor = self.HEAP_BASE
        self._allocations: dict[str, Allocation] = {}

    def allocate(
        self,
        name: str,
        size: int,
        kind: AllocKind,
        home_gpu: int = 0,
        manual_subscription: bool = False,
    ) -> Allocation:
        """Reserve ``size`` bytes (page-aligned up) under a unique name."""
        if size <= 0:
            raise AllocationError(f"allocation {name!r} must have positive size, got {size}")
        if name in self._allocations:
            raise AllocationError(f"allocation name {name!r} already in use")
        aligned = -(-size // self.page_size) * self.page_size
        if self._cursor + aligned > self.va_limit:
            raise AllocationError("virtual address space exhausted")
        alloc = Allocation(
            name=name,
            vrange=VirtualRange(self._cursor, size),
            kind=kind,
            home_gpu=home_gpu,
            manual_subscription=manual_subscription,
        )
        self._cursor += aligned
        self._allocations[name] = alloc
        return alloc

    def free(self, name: str) -> Allocation:
        """Release an allocation by name (VA is not recycled; names are)."""
        try:
            return self._allocations.pop(name)
        except KeyError:
            raise AllocationError(f"free of unknown allocation {name!r}") from None

    def get(self, name: str) -> Allocation:
        """Fetch an allocation by name."""
        try:
            return self._allocations[name]
        except KeyError:
            raise AllocationError(f"unknown allocation {name!r}") from None

    def find_containing(self, address: int) -> Optional[Allocation]:
        """The allocation containing ``address``, or None."""
        for alloc in self._allocations.values():
            if alloc.vrange.contains(address):
                return alloc
        return None

    def allocations(self) -> list[Allocation]:
        """All live allocations, in allocation order."""
        return list(self._allocations.values())

    def gps_allocations(self) -> list[Allocation]:
        """Live allocations made through the GPS allocator."""
        return [a for a in self._allocations.values() if a.kind is AllocKind.GPS]

    @property
    def bytes_reserved(self) -> int:
        """Total VA bytes handed out (page-aligned)."""
        return self._cursor - self.HEAP_BASE
