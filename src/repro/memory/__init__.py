"""Virtual-memory substrate: addresses, page tables, TLBs, allocators.

This package models the conventional GPU virtual memory system that GPS
extends (paper section 5): a shared multi-GPU virtual address space, per-GPU
physical memories with bump-pointer page allocators, a hierarchical page
table with a GPS bit per PTE, and set-associative TLBs.
"""

from .address import PAGE_OFFSET_MASK, VirtualRange, page_number, page_offset, page_range
from .allocator import PhysicalMemory
from .page_table import PageTable, PTE
from .address_space import AddressSpace, Allocation
from .tlb import TLB, TLBStats

__all__ = [
    "PAGE_OFFSET_MASK",
    "VirtualRange",
    "page_number",
    "page_offset",
    "page_range",
    "PhysicalMemory",
    "PageTable",
    "PTE",
    "AddressSpace",
    "Allocation",
    "TLB",
    "TLBStats",
]
