"""Per-GPU physical memory with a page-granular allocator.

Each GPU owns a :class:`PhysicalMemory` representing its local DRAM. GPS
replication consumes physical pages on every subscribing GPU, so the
allocator also tracks a free list to support unsubscription freeing the
replica (paper section 4: "GPS ... frees the corresponding physical memory").
"""

from __future__ import annotations

from ..errors import AllocationError


class PhysicalMemory:
    """Physical page frames of one GPU's local DRAM.

    Frames are identified by physical page number (PPN). Allocation is
    bump-pointer with a free list, which is enough fidelity for a functional
    simulator: what matters is capacity accounting and unique frame identity.
    """

    def __init__(self, gpu_id: int, capacity_bytes: int, page_size: int) -> None:
        if capacity_bytes < page_size:
            raise AllocationError(
                f"GPU {gpu_id}: capacity {capacity_bytes} smaller than one page"
            )
        self.gpu_id = gpu_id
        self.page_size = page_size
        self.total_frames = capacity_bytes // page_size
        self._next_frame = 0
        self._free_frames: list[int] = []
        self._allocated: set[int] = set()

    @property
    def frames_in_use(self) -> int:
        """Number of currently allocated frames."""
        return len(self._allocated)

    @property
    def bytes_in_use(self) -> int:
        """Bytes of DRAM currently allocated."""
        return self.frames_in_use * self.page_size

    @property
    def frames_free(self) -> int:
        """Number of frames still available."""
        return self.total_frames - self.frames_in_use

    def allocate_frame(self) -> int:
        """Allocate one frame, preferring recycled frames; return its PPN."""
        if self._free_frames:
            frame = self._free_frames.pop()
        elif self._next_frame < self.total_frames:
            frame = self._next_frame
            self._next_frame += 1
        else:
            raise AllocationError(
                f"GPU {self.gpu_id} out of memory "
                f"({self.total_frames} frames of {self.page_size} B in use)"
            )
        self._allocated.add(frame)
        return frame

    def allocate_frames(self, count: int) -> list[int]:
        """Allocate ``count`` frames atomically: all or none.

        Identical frame sequence to ``count`` :meth:`allocate_frame` calls
        (recycled frames in reverse free order, then fresh bump-pointer
        frames) without the per-frame Python call.
        """
        if count > self.frames_free:
            raise AllocationError(
                f"GPU {self.gpu_id}: requested {count} frames, only {self.frames_free} free"
            )
        frames: list[int] = []
        if self._free_frames:
            take = min(count, len(self._free_frames))
            frames = self._free_frames[-take:][::-1]
            del self._free_frames[-take:]
        remaining = count - len(frames)
        if remaining:
            frames.extend(range(self._next_frame, self._next_frame + remaining))
            self._next_frame += remaining
        self._allocated.update(frames)
        return frames

    def free_frame(self, frame: int) -> None:
        """Return a frame to the free list."""
        if frame not in self._allocated:
            raise AllocationError(f"GPU {self.gpu_id}: double free of frame {frame}")
        self._allocated.remove(frame)
        self._free_frames.append(frame)

    def free_frames(self, frames) -> None:
        """Return a batch of frames to the free list, in iteration order."""
        allocated = self._allocated
        free_list = self._free_frames
        for frame in frames:
            if frame not in allocated:
                raise AllocationError(f"GPU {self.gpu_id}: double free of frame {frame}")
            allocated.remove(frame)
            free_list.append(frame)

    def is_allocated(self, frame: int) -> bool:
        """Whether the frame is currently allocated."""
        return frame in self._allocated
