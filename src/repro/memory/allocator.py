"""Per-GPU physical memory with a page-granular allocator.

Each GPU owns a :class:`PhysicalMemory` representing its local DRAM. GPS
replication consumes physical pages on every subscribing GPU, so the
allocator also tracks a free list to support unsubscription freeing the
replica (paper section 4: "GPS ... frees the corresponding physical memory").
"""

from __future__ import annotations

from ..errors import AllocationError


class PhysicalMemory:
    """Physical page frames of one GPU's local DRAM.

    Frames are identified by physical page number (PPN). Allocation is
    bump-pointer with a free list, which is enough fidelity for a functional
    simulator: what matters is capacity accounting and unique frame identity.
    """

    def __init__(self, gpu_id: int, capacity_bytes: int, page_size: int) -> None:
        if capacity_bytes < page_size:
            raise AllocationError(
                f"GPU {gpu_id}: capacity {capacity_bytes} smaller than one page"
            )
        self.gpu_id = gpu_id
        self.page_size = page_size
        self.total_frames = capacity_bytes // page_size
        self._next_frame = 0
        self._free_frames: list[int] = []
        self._allocated: set[int] = set()

    @property
    def frames_in_use(self) -> int:
        """Number of currently allocated frames."""
        return len(self._allocated)

    @property
    def bytes_in_use(self) -> int:
        """Bytes of DRAM currently allocated."""
        return self.frames_in_use * self.page_size

    @property
    def frames_free(self) -> int:
        """Number of frames still available."""
        return self.total_frames - self.frames_in_use

    def allocate_frame(self) -> int:
        """Allocate one frame, preferring recycled frames; return its PPN."""
        if self._free_frames:
            frame = self._free_frames.pop()
        elif self._next_frame < self.total_frames:
            frame = self._next_frame
            self._next_frame += 1
        else:
            raise AllocationError(
                f"GPU {self.gpu_id} out of memory "
                f"({self.total_frames} frames of {self.page_size} B in use)"
            )
        self._allocated.add(frame)
        return frame

    def allocate_frames(self, count: int) -> list[int]:
        """Allocate ``count`` frames atomically: all or none."""
        if count > self.frames_free:
            raise AllocationError(
                f"GPU {self.gpu_id}: requested {count} frames, only {self.frames_free} free"
            )
        return [self.allocate_frame() for _ in range(count)]

    def free_frame(self, frame: int) -> None:
        """Return a frame to the free list."""
        if frame not in self._allocated:
            raise AllocationError(f"GPU {self.gpu_id}: double free of frame {frame}")
        self._allocated.remove(frame)
        self._free_frames.append(frame)

    def is_allocated(self, frame: int) -> bool:
        """Whether the frame is currently allocated."""
        return frame in self._allocated
