"""The conventional GPU page table, extended with the GPS bit.

Paper section 5.2: GPS re-purposes one unused PTE bit (the *GPS bit*) to mark
pages whose stores must be forwarded to the GPS unit. Everything else about
the conventional page table is unchanged. Each GPU has its own page table
over the shared virtual address space; a VPN maps to a (gpu, frame) physical
location, which may be local or remote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import TranslationError


@dataclass
class PTE:
    """One page table entry: physical location plus permission/GPS flags.

    ``resident_gpu`` identifies which GPU's DRAM holds the frame — in a
    multi-GPU shared VA space a mapping may point at a peer's memory
    (that is exactly what a peer-to-peer access is).
    """

    vpn: int
    resident_gpu: int
    frame: int
    gps: bool = False
    readable: bool = True
    writable: bool = True
    #: Set by UM's read-mostly duplication; cleared on collapse.
    read_duplicated: bool = False
    metadata: dict = field(default_factory=dict)


class PageTable:
    """Per-GPU page table: VPN -> :class:`PTE`.

    A real GV100 walks a 5-level radix tree; functionally a dict is
    equivalent and the walk cost is charged by the TLB model, so the radix
    structure is not materialised. The interface mirrors what the GPS driver
    needs: map/unmap, GPS-bit updates, and bulk queries.
    """

    def __init__(self, gpu_id: int, page_size: int) -> None:
        self.gpu_id = gpu_id
        self.page_size = page_size
        self._entries: dict[int, PTE] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def map(
        self,
        vpn: int,
        resident_gpu: int,
        frame: int,
        gps: bool = False,
        writable: bool = True,
    ) -> PTE:
        """Install (or replace) the mapping for ``vpn``."""
        entry = PTE(vpn=vpn, resident_gpu=resident_gpu, frame=frame, gps=gps, writable=writable)
        self._entries[vpn] = entry
        return entry

    def map_many(
        self,
        vpns,
        resident_gpu: int,
        frames,
        gps: bool = False,
        writable: bool = True,
    ) -> None:
        """Bulk :meth:`map` over parallel ``vpns``/``frames`` sequences."""
        entries = self._entries
        for vpn, frame in zip(vpns, frames):
            vpn = int(vpn)
            entries[vpn] = PTE(
                vpn=vpn, resident_gpu=resident_gpu, frame=int(frame),
                gps=gps, writable=writable,
            )

    def unmap_many(self, vpns) -> None:
        """Bulk :meth:`unmap`; raises on the first unmapped VPN."""
        entries = self._entries
        for vpn in vpns:
            if entries.pop(int(vpn), None) is None:
                raise TranslationError(
                    f"GPU {self.gpu_id}: unmap of unmapped VPN {int(vpn):#x}"
                )

    def unmap(self, vpn: int) -> PTE:
        """Remove and return the mapping for ``vpn``."""
        try:
            return self._entries.pop(vpn)
        except KeyError:
            raise TranslationError(f"GPU {self.gpu_id}: unmap of unmapped VPN {vpn:#x}") from None

    def lookup(self, vpn: int) -> PTE:
        """Translate ``vpn``; raises :class:`TranslationError` on a miss."""
        try:
            return self._entries[vpn]
        except KeyError:
            raise TranslationError(f"GPU {self.gpu_id}: no mapping for VPN {vpn:#x}") from None

    def try_lookup(self, vpn: int) -> Optional[PTE]:
        """Translate ``vpn``, returning None instead of raising on a miss."""
        return self._entries.get(vpn)

    def set_gps_bit(self, vpn: int, value: bool) -> None:
        """Set or clear the GPS bit; used on promotion/demotion of pages."""
        self.lookup(vpn).gps = value

    def is_local(self, vpn: int) -> bool:
        """Whether the mapping points at this GPU's own DRAM."""
        return self.lookup(vpn).resident_gpu == self.gpu_id

    def entries(self) -> Iterator[PTE]:
        """Iterate over all installed entries (driver-side bulk operations)."""
        return iter(self._entries.values())

    def gps_pages(self) -> list[int]:
        """All VPNs currently marked as GPS pages."""
        return [vpn for vpn, pte in self._entries.items() if pte.gps]
