"""Set-associative TLB model with LRU replacement.

Used in three places:

* the conventional last-level GPU TLB, whose *misses* feed the GPS access
  tracking unit (paper section 5.2, path T1 in Figure 7);
* the GPS-TLB inside the GPS address translation unit (32 entries, 8-way in
  the paper's final configuration);
* the page-size sensitivity study, where TLB pressure is what penalises
  4 KiB pages (section 7.4).

The model tracks hits and misses only; translation *content* lives in the
page tables, so the TLB stores bare tags.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass
class TLBStats:
    """Hit/miss counters for one TLB."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when no lookups happened."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def merge(self, other: "TLBStats") -> "TLBStats":
        """Combine two stat blocks (e.g. across kernels)."""
        return TLBStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def as_counters(self) -> dict:
        """Observability snapshot: ``metric: value`` for the counter registry."""
        return {"hits": self.hits, "misses": self.misses, "evictions": self.evictions}


@dataclass
class _TLBSet:
    """One associativity set: an LRU-ordered tag store."""

    capacity: int
    tags: "OrderedDict[int, None]" = field(default_factory=OrderedDict)


class TLB:
    """A set-associative, LRU TLB over page numbers.

    ``entries`` must be divisible by ``assoc``; the set index is the VPN
    modulo the number of sets, matching a physically indexed tag array.
    """

    def __init__(self, entries: int, assoc: int) -> None:
        if entries <= 0 or assoc <= 0:
            raise ConfigError("TLB entries and associativity must be positive")
        if entries % assoc != 0:
            raise ConfigError(f"{entries} entries not divisible by associativity {assoc}")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self._sets = [_TLBSet(assoc) for _ in range(self.num_sets)]
        self.stats = TLBStats()

    def access(self, vpn: int) -> bool:
        """Look up ``vpn``; install it on a miss. Returns True on a hit."""
        tlb_set = self._sets[vpn % self.num_sets]
        if vpn in tlb_set.tags:
            tlb_set.tags.move_to_end(vpn)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(tlb_set.tags) >= tlb_set.capacity:
            tlb_set.tags.popitem(last=False)
            self.stats.evictions += 1
        tlb_set.tags[vpn] = None
        return False

    def access_run(self, vpn: int, count: int) -> bool:
        """Look up a run of ``count`` back-to-back accesses to one VPN.

        The first access behaves exactly like :meth:`access`; the remaining
        ``count - 1`` are guaranteed hits on the just-touched (now MRU) tag,
        so they only bump the hit counter. This is the batched-translation
        fast path: drained write-queue entries arrive in insertion order
        with long same-page runs (one 64 KiB page spans 512 lines).
        """
        hit = self.access(vpn)
        if count > 1:
            self.stats.hits += count - 1
        return hit

    def access_batch(self, vpns) -> int:
        """Look up a sequence of VPNs in order; returns the number of misses.

        Counter- and state-identical to calling :meth:`access` per VPN — the
        loop is just stripped of per-call overhead (locals bound once, stats
        folded in at the end) for the batched replay path.
        """
        sets = self._sets
        num_sets = self.num_sets
        assoc = self.assoc
        hits = misses = evictions = 0
        for vpn in vpns:
            tags = sets[vpn % num_sets].tags
            if vpn in tags:
                tags.move_to_end(vpn)
                hits += 1
            else:
                misses += 1
                if len(tags) >= assoc:
                    tags.popitem(last=False)
                    evictions += 1
                tags[vpn] = None
        stats = self.stats
        stats.hits += hits
        stats.misses += misses
        stats.evictions += evictions
        return misses

    def invalidate(self, vpn: int) -> bool:
        """Drop ``vpn`` if cached (TLB shootdown). Returns True if present."""
        tlb_set = self._sets[vpn % self.num_sets]
        if vpn in tlb_set.tags:
            del tlb_set.tags[vpn]
            return True
        return False

    def invalidate_many(self, vpns) -> int:
        """Shoot down a batch of VPNs; returns how many were resident."""
        return sum(1 for vpn in vpns if self.invalidate(int(vpn)))

    def flush(self) -> None:
        """Invalidate every entry (full shootdown)."""
        for tlb_set in self._sets:
            tlb_set.tags.clear()

    def resident(self, vpn: int) -> bool:
        """Whether ``vpn`` is currently cached, without touching LRU/stats."""
        return vpn in self._sets[vpn % self.num_sets].tags
