"""Task-graph discrete-event scheduler.

The model: a :class:`Task` has a fixed duration, an optional exclusive
:class:`Resource`, and dependencies. Scheduling is event-driven list
scheduling — tasks become *ready* when all dependencies have finished, and a
ready task occupies its resource at the earliest instant the resource is
free, in ready-time order (FIFO per resource, deterministic tie-break by
insertion order).

Serialising a resource is how finite bandwidth is modelled: two 1 ms
transfers on one egress port take 2 ms end-to-end, the same aggregate as
fair sharing, without simulating byte-level interleaving.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Iterable, Optional

from ..errors import SimulationError
from ..obs.collector import TraceCollector
from ..obs.span import Span


class Resource:
    """An exclusive, serialising resource (a GPU, a link port, a DMA engine)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.available_at = 0.0
        self.busy_time = 0.0

    def reset(self) -> None:
        """Clear occupancy between engine runs."""
        self.available_at = 0.0
        self.busy_time = 0.0

    def __repr__(self) -> str:
        return f"Resource({self.name!r}, available_at={self.available_at:.6g})"


class Task:
    """A node in the task graph.

    ``start`` and ``end`` are populated by :meth:`Engine.run`; reading them
    before the run raises. ``category`` and ``attrs`` are structured trace
    metadata carried into the :class:`~repro.obs.span.Span` the engine emits
    for the task after scheduling.
    """

    __slots__ = (
        "name",
        "duration",
        "resource",
        "deps",
        "seq",
        "category",
        "attrs",
        "_start",
        "_end",
    )

    def __init__(
        self,
        name: str,
        duration: float,
        resource: Optional[Resource],
        deps: tuple["Task", ...],
        seq: int,
        category: str = "task",
        attrs: Optional[dict] = None,
    ) -> None:
        if duration < 0:
            raise SimulationError(f"task {name!r} has negative duration {duration}")
        self.name = name
        self.duration = duration
        self.resource = resource
        self.deps = deps
        self.seq = seq
        self.category = category
        self.attrs = attrs
        self._start: Optional[float] = None
        self._end: Optional[float] = None

    @property
    def start(self) -> float:
        """Scheduled start time (after :meth:`Engine.run`)."""
        if self._start is None:
            raise SimulationError(f"task {self.name!r} has not been scheduled")
        return self._start

    @property
    def end(self) -> float:
        """Scheduled completion time (after :meth:`Engine.run`)."""
        if self._end is None:
            raise SimulationError(f"task {self.name!r} has not been scheduled")
        return self._end

    def __repr__(self) -> str:
        window = ""
        if self._start is not None:
            window = f", [{self._start:.6g}, {self._end:.6g}]"
        return f"Task({self.name!r}, dur={self.duration:.6g}{window})"


class Engine:
    """Builds and schedules one task graph.

    Typical use::

        engine = Engine()
        gpu0 = engine.resource("gpu0")
        k = engine.task("kernel", 1e-3, resource=gpu0)
        t = engine.task("push", 4e-4, resource=port0, deps=[k])
        makespan = engine.run()
    """

    def __init__(self, collector: Optional[TraceCollector] = None) -> None:
        self._tasks: list[Task] = []
        self._resources: dict[str, Resource] = {}
        self._ran = False
        #: Per-run span trace; the engine appends one span per scheduled
        #: resource-bound task when :meth:`run` completes.
        self.collector = collector if collector is not None else TraceCollector()

    @property
    def has_run(self) -> bool:
        """Whether :meth:`run` has completed (timeline extraction requires it)."""
        return self._ran

    def resource(self, name: str) -> Resource:
        """Get or create the named resource."""
        if name not in self._resources:
            self._resources[name] = Resource(name)
        return self._resources[name]

    def task(
        self,
        name: str,
        duration: float,
        resource: Optional[Resource] = None,
        deps: Iterable[Task] = (),
        category: str = "task",
        attrs: Optional[dict] = None,
    ) -> Task:
        """Add a task to the graph. Dependencies must already be added.

        ``category`` and ``attrs`` annotate the span this task becomes in
        the trace (e.g. ``category="transfer", attrs={"bytes": n}``).
        """
        if self._ran:
            raise SimulationError("cannot add tasks after the engine has run")
        task = Task(
            name, duration, resource, tuple(deps), seq=len(self._tasks),
            category=category, attrs=attrs,
        )
        self._tasks.append(task)
        return task

    def barrier(self, name: str, deps: Iterable[Task]) -> Task:
        """A zero-duration task joining several dependencies."""
        return self.task(name, 0.0, resource=None, deps=deps, category="barrier")

    @property
    def num_tasks(self) -> int:
        """Tasks added so far."""
        return len(self._tasks)

    def tasks(self) -> list:
        """All tasks in insertion order (scheduled after :meth:`run`)."""
        return list(self._tasks)

    def run(self) -> float:
        """Schedule every task; returns the makespan (0.0 for an empty graph).

        Raises :class:`SimulationError` on a dependency cycle (unreachable
        when using the builder API, which only allows already-added deps,
        but checked anyway).
        """
        if self._ran:
            raise SimulationError("engine has already run")
        self._ran = True

        pending = {task.seq: len(task.deps) for task in self._tasks}
        dependents: dict[int, list[Task]] = {task.seq: [] for task in self._tasks}
        for task in self._tasks:
            for dep in task.deps:
                dependents[dep.seq].append(task)

        # Heap of (ready_time, seq) for tasks whose deps are all done.
        ready: list[tuple[float, int]] = []
        for task in self._tasks:
            if pending[task.seq] == 0:
                heapq.heappush(ready, (0.0, task.seq))

        scheduled = 0
        makespan = 0.0
        by_seq = {task.seq: task for task in self._tasks}
        while ready:
            ready_time, seq = heapq.heappop(ready)
            task = by_seq[seq]
            start = ready_time
            if task.resource is not None:
                start = max(start, task.resource.available_at)
            end = start + task.duration
            task._start = start
            task._end = end
            if task.resource is not None:
                task.resource.available_at = end
                task.resource.busy_time += task.duration
            makespan = max(makespan, end)
            scheduled += 1
            for dependent in dependents[seq]:
                pending[dependent.seq] -= 1
                if pending[dependent.seq] == 0:
                    dep_ready = max(d.end for d in dependent.deps)
                    heapq.heappush(ready, (dep_ready, dependent.seq))

        if scheduled != len(self._tasks):
            raise SimulationError(
                f"dependency cycle: only {scheduled} of {len(self._tasks)} tasks schedulable"
            )
        if self.collector.enabled:
            for task in self._tasks:
                if task.resource is not None:
                    self.collector.record(
                        Span(
                            name=task.name,
                            category=task.category,
                            track=task.resource.name,
                            start=task._start,  # type: ignore[arg-type]
                            end=task._end,  # type: ignore[arg-type]
                            attrs=task.attrs or {},
                        )
                    )
        return makespan

    def makespan(self) -> float:
        """Largest task end time after :meth:`run`."""
        if not self._ran:
            raise SimulationError("engine has not run yet")
        if not self._tasks:
            return 0.0
        return max(task.end for task in self._tasks)

    def schedule_digest(self) -> str:
        """Canonical SHA-256 over the complete schedule (after :meth:`run`).

        Hashes every task's name, resource, and scheduled window using the
        shortest-roundtrip float repr, in insertion order. Two runs of the
        same task graph — in this process, another process, or another
        machine — must produce identical digests; the verify subsystem's
        differential harness compares these to localise a divergence to the
        scheduler rather than the result assembly.
        """
        if not self._ran:
            raise SimulationError("engine has not run yet")
        digest = hashlib.sha256()
        for task in self._tasks:
            resource = task.resource.name if task.resource is not None else "-"
            digest.update(
                f"{task.name}|{resource}|{task._start!r}|{task._end!r}\n".encode("utf-8")
            )
        return digest.hexdigest()
