"""Discrete-event timing engine.

Paradigm executors translate a trace program into a task graph — kernels on
GPU compute resources, transfers on link port resources, faults on fault
handlers — and this engine schedules it: a task starts when its dependencies
finish and its resource is free; resources serialise. The program makespan
is the simulated execution time.
"""

from .engine import Engine, Resource, Task

__all__ = ["Engine", "Resource", "Task"]
