"""GPS: a Global Publish-Subscribe model for multi-GPU memory management.

Trace-driven reproduction of Muthukrishnan, Lustig, Nellans, and Wenisch,
MICRO 2021. The public API:

* :func:`repro.simulate` — run one workload trace under one paradigm;
* :func:`repro.speedup_over_single_gpu` — the paper's strong-scaling metric;
* :data:`repro.WORKLOADS` / :func:`repro.get_workload` — the Table 2 suite;
* :data:`repro.PARADIGMS` — UM, UM+hints, RDL, memcpy, GPS, infinite-BW;
* :class:`repro.GPSRuntime` — the ``cudaMallocGPS``-style driver API;
* :func:`repro.default_system` and the config dataclasses — system models;
* :mod:`repro.obs` — span tracing, hardware counters, and Perfetto export
  (``python -m repro trace <workload>`` from the CLI);
* :mod:`repro.verify` — invariant oracle, trace-program fuzzer, and the
  differential conformance harness (``python -m repro verify``).

Quick start::

    import repro

    program = repro.get_workload("jacobi").build(num_gpus=4, scale=0.25)
    result = repro.simulate(program, "gps", repro.default_system(4))
    print(result.total_time, result.interconnect_bytes)
"""

from .config import (
    CACHE_BLOCK,
    GPSConfig,
    GPUConfig,
    LinkConfig,
    LINKS_BY_NAME,
    PAGE_2M,
    PAGE_4K,
    PAGE_64K,
    PCIE3,
    PCIE4,
    PCIE5,
    PCIE6,
    INFINITE_LINK,
    NVLINK2,
    NVLINK3,
    SystemConfig,
    UMConfig,
    default_system,
)
from .analysis import Diagnostic, Severity, analyze_program, check_program
from .core.runtime import GPSRuntime, MemAdvise
from .errors import AnalysisError, ReproError
from .obs import (
    CounterRegistry,
    Span,
    TraceCollector,
    chrome_trace,
    self_time_profile,
    write_chrome_trace,
)
from .paradigms.registry import FIGURE8_ORDER, LABELS, PARADIGMS, make_executor
from .system.executor import simulate, speedup_over_single_gpu
from .system.results import SimulationResult
from .workloads.registry import WORKLOADS, get_workload, workload_names

__version__ = "1.3.0"

__all__ = [
    "CACHE_BLOCK",
    "GPSConfig",
    "GPUConfig",
    "LinkConfig",
    "LINKS_BY_NAME",
    "PAGE_2M",
    "PAGE_4K",
    "PAGE_64K",
    "PCIE3",
    "PCIE4",
    "PCIE5",
    "PCIE6",
    "INFINITE_LINK",
    "NVLINK2",
    "NVLINK3",
    "SystemConfig",
    "UMConfig",
    "default_system",
    "GPSRuntime",
    "MemAdvise",
    "ReproError",
    "FIGURE8_ORDER",
    "LABELS",
    "PARADIGMS",
    "make_executor",
    "simulate",
    "speedup_over_single_gpu",
    "SimulationResult",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "AnalysisError",
    "Diagnostic",
    "Severity",
    "analyze_program",
    "check_program",
    "CounterRegistry",
    "Span",
    "TraceCollector",
    "chrome_trace",
    "self_time_profile",
    "write_chrome_trace",
    "__version__",
]
