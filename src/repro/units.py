"""Size, time, and bandwidth units.

Conventions used throughout the library:

* sizes are **bytes** held in ``int``,
* times are **seconds** held in ``float``,
* bandwidths are **bytes per second** held in ``float``,
* frequencies are **hertz** held in ``float``.

The constants here make configuration literals readable
(``16 * GiB`` instead of ``17179869184``) and the helpers format values for
reports.
"""

from __future__ import annotations

# -- sizes (binary prefixes; memory structures are power-of-two sized) -------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

# -- bandwidths (decimal prefixes; link specs are quoted in GB/s) ------------
KB_S = 1e3
MB_S = 1e6
GB_S = 1e9
TB_S = 1e12

# -- times --------------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

# -- frequencies --------------------------------------------------------------
MHZ = 1e6
GHZ = 1e9


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(65536) == '64.0 KiB'``."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_bandwidth(bps: float) -> str:
    """Format a bandwidth in decimal units, e.g. ``fmt_bandwidth(16e9) == '16.0 GB/s'``."""
    value = float(bps)
    for suffix in ("B/s", "KB/s", "MB/s", "GB/s", "TB/s"):
        if abs(value) < 1000.0 or suffix == "TB/s":
            return f"{value:.1f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Format a duration with an adaptive unit, e.g. ``fmt_time(3.2e-5) == '32.00 us'``."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= MS:
        return f"{seconds / MS:.2f} ms"
    if magnitude >= US:
        return f"{seconds / US:.2f} us"
    return f"{seconds / NS:.1f} ns"


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    return -(-a // b)
