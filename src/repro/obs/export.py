"""Exporters: Chrome-trace/Perfetto JSON, flat metrics, run manifests.

The trace format is the Chrome trace-event JSON object form (a dict with a
``traceEvents`` list of complete ``"X"`` events plus ``"M"`` metadata
events), which https://ui.perfetto.dev and ``chrome://tracing`` both load
directly. One simulator resource (``gpu0``, ``egress2``, ...) maps to one
thread track; timestamps are simulated seconds scaled to microseconds.

:func:`validate_chrome_trace` is the schema check CI runs against every
exported trace — it enforces the structural invariants the simulator
guarantees (typed fields, and per-track spans that are monotonic and
non-overlapping, because engine resources serialise).
"""

from __future__ import annotations

import csv
import io
import json
import re
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from .span import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..config import SystemConfig
    from ..system.results import SimulationResult

#: Simulated seconds -> trace microseconds.
_US = 1e6

#: Track ordering in the trace UI: compute first, then the port pairs.
_TRACK_ORDER = {"gpu": 0, "egress": 1, "ingress": 2}

_TRACK_NAME = re.compile(r"^([a-z_]+?)(\d+)$")


def _track_sort_key(track: str) -> tuple:
    match = _TRACK_NAME.match(track)
    if match is None:
        return (len(_TRACK_ORDER), track, 0)
    prefix, index = match.group(1), int(match.group(2))
    return (_TRACK_ORDER.get(prefix, len(_TRACK_ORDER)), prefix, index)


def chrome_trace(spans: Iterable[Span], manifest: "dict | None" = None) -> dict:
    """Build a Chrome trace-event JSON object from a span list.

    Every resource becomes one thread (tid) of process 0, named and ordered
    via metadata events; every span becomes one complete ``"X"`` event with
    its attributes under ``args``. ``manifest`` (see :func:`run_manifest`)
    lands under ``otherData`` for provenance.
    """
    spans = sorted(spans, key=lambda s: (_track_sort_key(s.track), s.start, s.end))
    tracks = []
    for span in spans:
        if span.track not in tracks:
            tracks.append(span.track)
    tids = {track: tid for tid, track in enumerate(tracks)}
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulator"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": tid, "args": {"name": track}}
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 0,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for span in spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category,
                "pid": 0,
                "tid": tids[span.track],
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "args": dict(span.attrs),
            }
        )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if manifest is not None:
        payload["otherData"] = manifest
    return payload


def write_chrome_trace(
    path: "str | Path", spans: Iterable[Span], manifest: "dict | None" = None
) -> dict:
    """Serialise :func:`chrome_trace` to ``path``; returns the payload."""
    payload = chrome_trace(spans, manifest)
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return payload


def validate_chrome_trace(payload: object) -> "list[str]":
    """Schema-check one trace payload; returns a list of problems (empty = ok).

    Checks the object form, the typed fields of every event, and — per
    track — that complete events are start-monotonic and non-overlapping
    (the invariant serialising resources guarantee). CI runs this against
    the trace the ``repro trace`` CLI emits, so exporter drift fails fast.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top-level payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    by_thread: dict[tuple, list] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"event {i}: unsupported phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"event {i}: name is not a string")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"event {i}: {key} is not an integer")
        if phase == "M":
            continue
        if not isinstance(event.get("cat"), str):
            problems.append(f"event {i}: cat is not a string")
        ok = True
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"event {i}: {key} is not a non-negative number")
                ok = False
        if ok:
            by_thread.setdefault((event["pid"], event["tid"]), []).append((event["ts"], event["dur"], i))
    for (pid, tid), rows in by_thread.items():
        cursor = None
        for ts, dur, i in rows:
            if cursor is not None and ts < cursor - 1e-6:
                problems.append(
                    f"event {i}: overlaps the previous span on pid={pid} tid={tid} "
                    f"(starts {ts} before {cursor})"
                )
            cursor = max(cursor, ts + dur) if cursor is not None else ts + dur
    return problems


def run_manifest(
    result: "SimulationResult",
    config: "SystemConfig",
    wall_clock: "float | None" = None,
) -> dict:
    """Provenance block written next to every exported trace.

    Carries the complete canonical config fingerprint and the model version
    string (the same pair that keys the persistent result cache), so a trace
    file is always attributable to one exact simulator configuration.
    """
    from ..config import config_fingerprint  # local: keeps obs import-light
    from ..harness.runner.fingerprint import MODEL_FINGERPRINT

    manifest = {
        "program": result.program_name,
        "paradigm": result.paradigm,
        "num_gpus": result.num_gpus,
        "total_time_s": result.total_time,
        "config_fingerprint": config_fingerprint(config),
        "model": MODEL_FINGERPRINT,
        "created_unix": time.time(),
    }
    if wall_clock is not None:
        manifest["wall_clock_s"] = wall_clock
    return manifest


def metrics_json(result: "SimulationResult") -> dict:
    """Flat metrics view of one run: summary fields plus every counter."""
    return {
        "program": result.program_name,
        "paradigm": result.paradigm,
        "num_gpus": result.num_gpus,
        "total_time_s": result.total_time,
        "interconnect_bytes": result.interconnect_bytes,
        "counters": dict(sorted(result.counters.items())),
    }


def metrics_csv(result: "SimulationResult") -> str:
    """Counters as two-column CSV (``counter,value``), sorted by name."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["counter", "value"])
    for name, value in sorted(result.counters.items()):
        writer.writerow([name, value])
    return buffer.getvalue()
