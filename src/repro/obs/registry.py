"""The hierarchical counter/gauge registry.

Naming convention: dot-separated ``component.metric`` (``gps_tlb.misses``,
``write_queue.bytes_out``, ``link.egress0.bytes``). Per-GPU instances live
under a ``gpuN`` scope (``gpu0.gps_tlb.misses``); the snapshot
(:meth:`CounterRegistry.as_dict`) *rolls up* those scopes into system-wide
totals automatically, so every per-GPU metric also appears aggregated under
its bare ``component.metric`` name.

Hardware models publish in one of two ways:

* imperative — the executor calls ``registry.add("dram.read_bytes", n)`` on
  a hot path (a plain dict increment; cheap enough to stay always-on);
* providers — a model registers a callable returning its counter dict
  (``scope.provide("gps_tlb", unit.tlb.counters)``); providers are resolved
  once, at snapshot time, so models keep owning their own stats objects.
"""

from __future__ import annotations

import bisect
import re
from typing import Callable, Sequence, Union

Number = Union[int, float]

_GPU_SCOPE = re.compile(r"^gpu\d+\.")


class Counter:
    """A named, monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        """Increment by ``amount`` (default 1)."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


#: Default histogram bucket bounds: latencies in seconds from 1 ms to 1 min.
DEFAULT_BUCKETS = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0)


def _fmt_bound(bound: Number) -> str:
    """Compact bucket-bound label (``0.005`` -> ``"0.005"``, ``5.0`` -> ``"5"``)."""
    return format(bound, "g")


class Histogram:
    """A fixed-bucket histogram with cumulative (Prometheus ``le``) counts.

    Observations land in the first bucket whose upper bound is >= the value;
    everything above the last bound lands in the implicit ``inf`` bucket.
    The snapshot flattens to plain counters (``count``, ``sum``,
    ``le_<bound>`` per bucket) so a histogram costs nothing new in the
    registry's export formats.
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "count", "sum")

    def __init__(self, name: str, bounds: "Sequence[Number]" = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be non-empty and strictly increasing")
        self.name = name
        self.bounds: "tuple[Number, ...]" = tuple(bounds)
        self._bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum: Number = 0

    def observe(self, value: Number) -> None:
        """Record one observation."""
        self._bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def snapshot(self) -> "dict[str, Number]":
        """Cumulative bucket counts plus ``count``/``sum``, flat and JSON-safe."""
        flat: "dict[str, Number]" = {"count": self.count, "sum": self.sum}
        running = 0
        for bound, bucket in zip(self.bounds, self._bucket_counts):
            running += bucket
            flat[f"le_{_fmt_bound(bound)}"] = running
        flat["le_inf"] = self.count
        return flat

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class CounterRegistry:
    """Flat store of counters, gauges, and lazy providers with scope roll-up.

    All names share one namespace; :meth:`scope` returns a view that
    prefixes names (``registry.scope("gpu0").add("gps_tlb.misses", 1)``
    lands on ``gpu0.gps_tlb.misses``). On snapshot, any name under a
    ``gpuN.`` scope also contributes to an aggregate entry with the scope
    stripped, unless that aggregate name was registered explicitly.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Number] = {}
        self._histograms: dict[str, Histogram] = {}
        self._providers: list[tuple[str, Callable[[], "dict[str, Number]"]]] = []

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def add(self, name: str, amount: Number = 1) -> None:
        """Increment the named counter, creating it on first use."""
        self.counter(name).add(amount)

    def gauge(self, name: str, value: Number) -> None:
        """Set a point-in-time value (last write wins)."""
        self._gauges[name] = value

    def histogram(self, name: str, bounds: "Sequence[Number] | None" = None) -> Histogram:
        """Get or create the named histogram.

        ``bounds`` applies on first creation only; the snapshot merges the
        histogram's flattened buckets under ``<name>.``.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, DEFAULT_BUCKETS if bounds is None else bounds
            )
        return histogram

    def provide(self, prefix: str, fn: Callable[[], "dict[str, Number]"]) -> None:
        """Register a lazy provider; its dict is merged under ``prefix.``."""
        self._providers.append((prefix, fn))

    def scope(self, prefix: str) -> "ScopedRegistry":
        """A view of this registry with every name prefixed by ``prefix.``."""
        return ScopedRegistry(self, prefix)

    def as_dict(self) -> "dict[str, Number]":
        """Snapshot: counters, gauges, resolved providers, plus roll-ups.

        Sorted by name. Collisions resolve last-writer-wins in the order
        counters -> gauges -> providers; roll-ups never overwrite an
        explicitly registered aggregate.
        """
        flat: dict[str, Number] = {}
        for name, counter in self._counters.items():
            flat[name] = counter.value
        flat.update(self._gauges)
        for name, histogram in self._histograms.items():
            for key, value in histogram.snapshot().items():
                flat[f"{name}.{key}"] = value
        for prefix, fn in self._providers:
            for key, value in fn().items():
                flat[f"{prefix}.{key}"] = value
        rollups: dict[str, Number] = {}
        for name, value in flat.items():
            if _GPU_SCOPE.match(name):
                base = name.split(".", 1)[1]
                if base not in flat:
                    rollups[base] = rollups.get(base, 0) + value
        flat.update(rollups)
        return dict(sorted(flat.items()))


class ScopedRegistry:
    """A prefixing view over a :class:`CounterRegistry` (shares its store)."""

    def __init__(self, parent: CounterRegistry, prefix: str) -> None:
        self._parent = parent
        self._prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def counter(self, name: str) -> Counter:
        """Get or create ``<prefix>.<name>`` in the parent registry."""
        return self._parent.counter(self._name(name))

    def add(self, name: str, amount: Number = 1) -> None:
        """Increment ``<prefix>.<name>``."""
        self._parent.add(self._name(name), amount)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``<prefix>.<name>``."""
        self._parent.gauge(self._name(name), value)

    def histogram(self, name: str, bounds: "Sequence[Number] | None" = None) -> Histogram:
        """Get or create histogram ``<prefix>.<name>``."""
        return self._parent.histogram(self._name(name), bounds)

    def provide(self, prefix: str, fn: Callable[[], "dict[str, Number]"]) -> None:
        """Register a provider under ``<prefix>.<sub-prefix>.``."""
        self._parent.provide(self._name(prefix), fn)

    def scope(self, prefix: str) -> "ScopedRegistry":
        """A deeper scope."""
        return ScopedRegistry(self._parent, self._name(prefix))
