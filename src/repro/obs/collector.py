"""The per-run trace collector.

One :class:`TraceCollector` lives on each DES engine; the engine appends a
:class:`~repro.obs.span.Span` per scheduled resource-bound task when it
runs. ``REPRO_NO_TRACE=1`` disables span materialisation globally (the
fan-out runner sets it in worker processes so fleet runs stay cheap);
consumers that require a trace — the ``repro trace``/``repro profile`` CLI —
re-enable it on their own collector with :meth:`TraceCollector.enable`.
"""

from __future__ import annotations

import os
from typing import Iterator

from .span import Span


def tracing_enabled() -> bool:
    """Whether span materialisation is on (the ``REPRO_NO_TRACE`` knob).

    Unset, empty, or ``"0"`` means tracing is enabled; anything else
    disables it. Counters are unaffected — they are cheap enough to stay on
    unconditionally.
    """
    flag = os.environ.get("REPRO_NO_TRACE", "")
    return flag in ("", "0")


class TraceCollector:
    """Accumulates the spans of one simulation run.

    ``enabled`` defaults to the environment (:func:`tracing_enabled`); a
    disabled collector drops every record, so instrumentation call sites
    never need their own guard.
    """

    def __init__(self, enabled: "bool | None" = None) -> None:
        self.enabled = tracing_enabled() if enabled is None else enabled
        self._spans: list[Span] = []

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def spans(self) -> list[Span]:
        """All recorded spans, in emission order."""
        return list(self._spans)

    def enable(self) -> None:
        """Force span materialisation on, overriding ``REPRO_NO_TRACE``."""
        self.enabled = True

    def record(self, span: Span) -> None:
        """Append one span (dropped when the collector is disabled)."""
        if self.enabled:
            self._spans.append(span)

    def emit(
        self,
        name: str,
        category: str,
        track: str,
        start: float,
        end: float,
        attrs: "dict | None" = None,
    ) -> None:
        """Construct and record one span in place."""
        if self.enabled:
            self._spans.append(Span(name, category, track, start, end, attrs or {}))

    def clear(self) -> None:
        """Drop every recorded span."""
        self._spans.clear()

    def by_track(self) -> "dict[str, list[Span]]":
        """Spans grouped by resource track, each list sorted by start time."""
        tracks: dict[str, list[Span]] = {}
        for span in self._spans:
            tracks.setdefault(span.track, []).append(span)
        for spans in tracks.values():
            spans.sort(key=lambda s: (s.start, s.end))
        return dict(sorted(tracks.items()))
