"""The per-run trace collector.

One :class:`TraceCollector` lives on each DES engine; the engine appends a
:class:`~repro.obs.span.Span` per scheduled resource-bound task when it
runs. ``REPRO_NO_TRACE=1`` disables span materialisation globally (the
fan-out runner sets it in worker processes so fleet runs stay cheap);
consumers that require a trace — the ``repro trace``/``repro profile`` CLI
and the service's traced batches — re-enable it on their own collector with
:meth:`TraceCollector.enable`.

Span storage is a **bounded ring**: at most ``REPRO_TRACE_MAX_SPANS``
spans (default 1,000,000) are retained, oldest-first eviction. A long-lived
service process that traces every run therefore has a hard per-run memory
ceiling; the number of spans dropped is reported by
:attr:`TraceCollector.evicted` and surfaced as the service counter
``service.trace.evicted_spans``.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Iterator

from .span import Span

#: Default ring capacity when ``REPRO_TRACE_MAX_SPANS`` is unset.
DEFAULT_MAX_SPANS = 1_000_000


def tracing_enabled() -> bool:
    """Whether span materialisation is on (the ``REPRO_NO_TRACE`` knob).

    Unset, empty, or ``"0"`` means tracing is enabled; anything else
    disables it. Counters are unaffected — they are cheap enough to stay on
    unconditionally.
    """
    flag = os.environ.get("REPRO_NO_TRACE", "")
    return flag in ("", "0")


def max_spans() -> int:
    """Ring capacity from ``REPRO_TRACE_MAX_SPANS`` (min 1)."""
    raw = os.environ.get("REPRO_TRACE_MAX_SPANS", "")
    try:
        value = int(raw) if raw else DEFAULT_MAX_SPANS
    except ValueError:
        value = DEFAULT_MAX_SPANS
    return max(1, value)


class TraceCollector:
    """Accumulates the spans of one simulation run in a bounded ring.

    ``enabled`` defaults to the environment (:func:`tracing_enabled`); a
    disabled collector drops every record, so instrumentation call sites
    never need their own guard. ``capacity`` defaults to the
    ``REPRO_TRACE_MAX_SPANS`` environment knob; once full, recording a new
    span evicts the oldest one and bumps :attr:`evicted`.
    """

    def __init__(
        self, enabled: "bool | None" = None, capacity: "int | None" = None
    ) -> None:
        self.enabled = tracing_enabled() if enabled is None else enabled
        self.capacity = max_spans() if capacity is None else max(1, capacity)
        self._spans: "deque[Span]" = deque(maxlen=self.capacity)
        #: Spans dropped by the ring since the last :meth:`clear`.
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def spans(self) -> list[Span]:
        """All retained spans, in emission order (oldest may be evicted)."""
        return list(self._spans)

    def enable(self) -> None:
        """Force span materialisation on, overriding ``REPRO_NO_TRACE``."""
        self.enabled = True

    def record(self, span: Span) -> None:
        """Append one span (dropped when the collector is disabled)."""
        if self.enabled:
            if len(self._spans) == self.capacity:
                self.evicted += 1
            self._spans.append(span)

    def emit(
        self,
        name: str,
        category: str,
        track: str,
        start: float,
        end: float,
        attrs: "dict | None" = None,
    ) -> None:
        """Construct and record one span in place."""
        if self.enabled:
            self.record(Span(name, category, track, start, end, attrs or {}))

    def clear(self) -> None:
        """Drop every recorded span and reset the eviction count."""
        self._spans.clear()
        self.evicted = 0

    def by_track(self) -> "dict[str, list[Span]]":
        """Spans grouped by resource track, each list sorted by start time."""
        tracks: dict[str, list[Span]] = {}
        for span in self._spans:
            tracks.setdefault(span.track, []).append(span)
        for spans in tracks.values():
            spans.sort(key=lambda s: (s.start, s.end))
        return dict(sorted(tracks.items()))
