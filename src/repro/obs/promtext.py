"""Prometheus text-exposition rendering of a :class:`CounterRegistry`.

``GET /metrics?format=prometheus`` on the service serves this. The format
is the Prometheus text exposition 0.0.4 grammar: ``# TYPE`` lines, one
sample per line, histograms expanded to cumulative ``_bucket{le="..."}``
series **including the mandatory ``+Inf`` bucket** plus ``_sum`` and
``_count`` — earlier revisions of the JSON-flattened export dropped those,
which real scrapers reject.

Dot-separated registry names (``service.jobs.completed``) become underscore
metric names (``service_jobs_completed``); any character outside
``[a-zA-Z0-9_:]`` is folded to ``_`` and a leading digit gets a ``_``
prefix. Output is sorted by metric name, so two renders of the same
registry state are byte-identical (golden-file friendly).

:func:`promtext_problems` is a small grammar checker used by the golden
test and CI smoke: it verifies line shape, TYPE declarations, histogram
bucket monotonicity, and the ``+Inf``/``_sum``/``_count`` contract.
"""

from __future__ import annotations

import math
import re

from .registry import CounterRegistry, Histogram, Number, _fmt_bound

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>[^}]*)\})?'
    r" (?P<value>[^ ]+)$"
)


def sanitize_metric_name(name: str) -> str:
    """Fold a dotted registry name into a legal Prometheus metric name."""
    flat = _BAD_CHARS.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _fmt_value(value: Number) -> str:
    """Render a sample value (integers without the trailing ``.0``)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_histogram(name: str, histogram: Histogram, lines: "list[str]") -> None:
    lines.append(f"# TYPE {name} histogram")
    running = 0
    for bound, bucket in zip(histogram.bounds, histogram._bucket_counts):
        running += bucket
        lines.append(f'{name}_bucket{{le="{_fmt_bound(bound)}"}} {running}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
    lines.append(f"{name}_sum {_fmt_value(histogram.sum)}")
    lines.append(f"{name}_count {histogram.count}")


def prometheus_text(registry: CounterRegistry) -> str:
    """Render the registry in Prometheus text exposition format 0.0.4.

    Counters render as ``counter``; gauges, providers, and gpuN roll-ups as
    ``gauge`` (providers may regress between scrapes, so counter semantics
    cannot be promised for them); histograms as full ``histogram`` families.
    Histogram component keys are excluded from the flat section — they only
    appear as proper ``_bucket``/``_sum``/``_count`` series.
    """
    families: "dict[str, tuple[str, Histogram | Number]]" = {}
    for name, histogram in registry._histograms.items():
        families[sanitize_metric_name(name)] = ("histogram", histogram)
    histogram_prefixes = tuple(f"{name}." for name in registry._histograms)
    counter_names = {sanitize_metric_name(name) for name in registry._counters}
    for name, value in registry.as_dict().items():
        if name.startswith(histogram_prefixes):
            continue
        flat = sanitize_metric_name(name)
        if flat in families:
            continue
        kind = "counter" if flat in counter_names else "gauge"
        families[flat] = (kind, value)
    lines: "list[str]" = []
    for name in sorted(families):
        kind, payload = families[name]
        if kind == "histogram":
            assert isinstance(payload, Histogram)
            _render_histogram(name, payload, lines)
        else:
            lines.append(f"# TYPE {name} {kind}")
            assert not isinstance(payload, Histogram)
            lines.append(f"{name} {_fmt_value(payload)}")
    return "\n".join(lines) + "\n"


def _parse_value(raw: str) -> "float | None":
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def promtext_problems(text: str) -> "list[str]":
    """Grammar problems in a text-exposition payload (empty when clean).

    Checks: every non-comment line parses as ``name[{labels}] value``;
    every sample's family has a ``# TYPE`` line; histogram families have
    monotonic ``le`` buckets ending in ``+Inf`` whose count equals
    ``_count``, plus exactly one ``_sum`` and ``_count``; payload ends with
    a newline.
    """
    problems: "list[str]" = []
    if text and not text.endswith("\n"):
        problems.append("payload must end with a newline")
    types: "dict[str, str]" = {}
    histograms: "dict[str, dict]" = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                problems.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            if parts[2] in types:
                problems.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            if parts[3] == "histogram":
                histograms[parts[2]] = {"buckets": [], "sum": 0, "count": 0}
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        value = _parse_value(match.group("value"))
        if value is None:
            problems.append(f"line {lineno}: bad sample value: {line!r}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in histograms:
                family = name[: -len(suffix)]
                break
        if family not in types:
            problems.append(f"line {lineno}: sample {name} has no TYPE line")
            continue
        if family in histograms:
            hist = histograms[family]
            if name.endswith("_bucket"):
                labels = match.group("labels") or ""
                le = None
                for part in labels.split(","):
                    key, _, raw = part.partition("=")
                    if key.strip() == "le":
                        le = _parse_value(raw.strip().strip('"'))
                if le is None:
                    problems.append(f"line {lineno}: bucket without le label: {line!r}")
                else:
                    hist["buckets"].append((le, value))
            elif name.endswith("_sum"):
                hist["sum"] += 1
            elif name.endswith("_count"):
                hist["count"] += 1
                hist["count_value"] = value
    for family, hist in histograms.items():
        buckets = hist["buckets"]
        if not buckets or buckets[-1][0] != math.inf:
            problems.append(f"histogram {family}: missing +Inf bucket")
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        if bounds != sorted(bounds):
            problems.append(f"histogram {family}: le bounds not increasing")
        if counts != sorted(counts):
            problems.append(f"histogram {family}: bucket counts not cumulative")
        if hist["sum"] != 1:
            problems.append(f"histogram {family}: expected exactly one _sum sample")
        if hist["count"] != 1:
            problems.append(f"histogram {family}: expected exactly one _count sample")
        elif buckets and buckets[-1][0] == math.inf and buckets[-1][1] != hist.get(
            "count_value"
        ):
            problems.append(f"histogram {family}: +Inf bucket != _count")
    for name in types:
        if not _NAME_OK.match(name):
            problems.append(f"illegal metric name: {name}")
    return problems
