"""Distributed tracing for the service path: W3C contexts, span store, export.

The single-run :class:`~repro.obs.collector.TraceCollector` stops at the
boundary of one simulation; this module is the layer that stitches a
*request's* journey through the service — client submit → HTTP → queue wait
→ scheduler batch → pool worker → engine spans — into one trace.

Three pieces:

* **trace context** — W3C-style ``traceparent`` headers
  (``00-<32-hex trace id>-<16-hex span id>-01``) minted by
  ``ServiceClient.submit`` and propagated through the HTTP layer into
  :class:`repro.service.queue.Job`;
* **:class:`TraceStore`** — the server-side span store: bounded per-process
  ring of traces, wall-clock :class:`DistSpan` records (request, queue.wait,
  execute, run), cross-trace *links* for coalesced submitters, and
  re-parenting of the worker-side engine span tree under the request's
  ``run`` span;
* **export** — Chrome-trace/Perfetto JSON of one trace's closure (own spans
  plus linked execution trees), with the wall-clock service spans on one
  process and the simulated-clock engine spans on another.

Re-parenting rules (also in ``docs/OBSERVABILITY.md``):

1. the server's ``request`` span is a child of the client's root span id
   (taken from ``traceparent``); the client root itself is synthesised at
   export time as ``client.submit``, covering its children;
2. one *execution* span (``execute``) exists per job group, on the trace of
   the group's **primary** (first) submitter; coalesced submitters carry a
   ``coalesced`` span in their own trace whose ``links`` reference the
   shared execution span;
3. each dispatch attempt opens a ``run`` span under ``execute``; the
   engine's :class:`~repro.obs.span.Span` list from the pool worker is
   re-parented under the successful attempt's ``run`` span, with
   deterministic span ids (``sha256(parent_id/index)``) and simulated-clock
   timestamps anchored at the ``run`` span's start.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from collections import OrderedDict
from dataclasses import dataclass, field

#: Exporter scale: seconds -> trace microseconds.
_US = 1e6

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace>[0-9a-f]{32})-(?P<span>[0-9a-f]{16})"
    r"-(?P<flags>[0-9a-f]{2})$"
)

#: Span kinds (loosely OpenTelemetry's): who recorded the span.
KIND_CLIENT = "client"
KIND_SERVER = "server"
KIND_INTERNAL = "internal"
KIND_ENGINE = "engine"


def _random_hex(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class IdGenerator:
    """Source of trace/span ids; swappable for deterministic tests."""

    def trace_id(self) -> str:
        return _random_hex(16)

    def span_id(self) -> str:
        return _random_hex(8)


class SequentialIds(IdGenerator):
    """Deterministic counter-based ids (tests and golden files)."""

    def __init__(self, seed: int = 0) -> None:
        self._n = seed

    def trace_id(self) -> str:
        self._n += 1
        return f"{self._n:032x}"

    def span_id(self) -> str:
        self._n += 1
        return f"{self._n:016x}"


_IDS: IdGenerator = IdGenerator()


def set_id_generator(generator: "IdGenerator | None") -> None:
    """Install an id source (``None`` restores the random default)."""
    global _IDS
    _IDS = generator if generator is not None else IdGenerator()


def mint_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return _IDS.trace_id()


def mint_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return _IDS.span_id()


def derived_span_id(parent_id: str, index: int) -> str:
    """Deterministic child span id — re-parented engine spans use these.

    Two exports of the same execution tree (e.g. from two coalesced
    submitters following their links) must produce identical ids, so the id
    is a pure function of the parent span and the span's position.
    """
    digest = hashlib.sha256(f"{parent_id}/{index}".encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass(frozen=True)
class TraceContext:
    """One W3C-style trace context (``traceparent`` header triple)."""

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context (new trace id + root span id)."""
        return cls(mint_trace_id(), mint_span_id())

    def child(self) -> "TraceContext":
        """Same trace, fresh span id."""
        return TraceContext(self.trace_id, mint_span_id(), self.sampled)

    def to_traceparent(self) -> str:
        """Render the ``traceparent`` header value."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"


def parse_traceparent(header: "str | None") -> "TraceContext | None":
    """Parse a ``traceparent`` header; ``None`` on anything malformed.

    All-zero trace or span ids are invalid per the W3C spec and rejected.
    """
    if not header:
        return None
    match = _TRACEPARENT.match(header.strip().lower())
    if match is None:
        return None
    trace_id, span_id = match.group("trace"), match.group("span")
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    sampled = bool(int(match.group("flags"), 16) & 0x01)
    return TraceContext(trace_id, span_id, sampled)


@dataclass
class DistSpan:
    """One wall-clock span of the distributed service trace.

    ``end`` is ``None`` while the span is open. ``links`` carries
    cross-trace references (``{"trace_id": ..., "span_id": ...}``) — a
    coalesced submitter links to the shared execution span. ``track`` names
    the export lane (``server``, ``job``, ``attempt``, engine resource
    names) so sibling spans that overlap in time land on different Perfetto
    threads.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: "str | None"
    start: float
    end: "float | None" = None
    kind: str = KIND_INTERNAL
    track: str = "job"
    attrs: dict = field(default_factory=dict)
    links: list = field(default_factory=list)

    @property
    def duration(self) -> "float | None":
        """Span length in seconds, ``None`` while open."""
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        """JSON-safe representation (the ``GET /traces/{id}`` row format)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "kind": self.kind,
            "track": self.track,
            "attrs": dict(self.attrs),
            "links": [dict(link) for link in self.links],
        }


class TraceStore:
    """Bounded per-process store of distributed traces.

    At most ``max_traces`` traces are retained (oldest-first eviction — a
    long-lived service cannot grow trace memory without limit); evictions
    are counted on :attr:`evicted_traces`. All access happens on the
    server's event loop, so no locking.
    """

    def __init__(self, max_traces: int = 256, clock=time.time) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be at least 1")
        self.max_traces = max_traces
        self.evicted_traces = 0
        self._clock = clock
        self._traces: "OrderedDict[str, list[DistSpan]]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._traces)

    @property
    def span_count(self) -> int:
        """Total spans retained across every trace."""
        return sum(len(spans) for spans in self._traces.values())

    def _bucket(self, trace_id: str) -> "list[DistSpan]":
        spans = self._traces.get(trace_id)
        if spans is None:
            while len(self._traces) >= self.max_traces:
                self._traces.popitem(last=False)
                self.evicted_traces += 1
            spans = self._traces[trace_id] = []
        return spans

    def start_span(
        self,
        trace_id: str,
        name: str,
        parent_id: "str | None" = None,
        *,
        kind: str = KIND_INTERNAL,
        track: str = "job",
        span_id: "str | None" = None,
        attrs: "dict | None" = None,
        links: "list | None" = None,
        t: "float | None" = None,
    ) -> DistSpan:
        """Open (and store) one span; close it later with :meth:`end_span`."""
        span = DistSpan(
            name=name,
            trace_id=trace_id,
            span_id=span_id if span_id is not None else mint_span_id(),
            parent_id=parent_id,
            start=self._clock() if t is None else t,
            kind=kind,
            track=track,
            attrs=dict(attrs or {}),
            links=list(links or []),
        )
        self._bucket(trace_id).append(span)
        return span

    def end_span(self, span: "DistSpan | None", t: "float | None" = None) -> None:
        """Close an open span (idempotent; ``None`` is a no-op)."""
        if span is not None and span.end is None:
            span.end = self._clock() if t is None else t

    def add_span(self, trace_id: str, name: str, **kwargs) -> DistSpan:
        """Store an already-closed point-in-time span (start == end)."""
        span = self.start_span(trace_id, name, **kwargs)
        span.end = span.start
        return span

    def get(self, trace_id: str) -> "list[DistSpan]":
        """This trace's own spans (no link traversal); empty when unknown."""
        return list(self._traces.get(trace_id, ()))

    def subtree(self, trace_id: str, root_span_id: str) -> "list[DistSpan]":
        """Spans of one trace descending from (and including) one span."""
        spans = self._traces.get(trace_id, [])
        children: "dict[str, list[DistSpan]]" = {}
        by_id: "dict[str, DistSpan]" = {}
        for span in spans:
            by_id[span.span_id] = span
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        out: "list[DistSpan]" = []
        stack = [root_span_id]
        while stack:
            span_id = stack.pop()
            span = by_id.get(span_id)
            if span is not None:
                out.append(span)
            stack.extend(child.span_id for child in children.get(span_id, ()))
        out.sort(key=lambda s: (s.start, s.span_id))
        return out

    def closure(self, trace_id: str) -> "list[DistSpan]":
        """Own spans plus every linked execution subtree (one hop).

        This is what ``GET /traces/{id}`` returns: a coalesced submitter's
        trace pulls in the shared execution tree it links to, so every
        client sees client submit → ... → engine spans under one download.
        """
        own = self.get(trace_id)
        out = list(own)
        seen = {(s.trace_id, s.span_id) for s in own}
        for span in own:
            for link in span.links:
                linked_trace = link.get("trace_id")
                linked_span = link.get("span_id")
                if not linked_trace or not linked_span:
                    continue
                for linked in self.subtree(linked_trace, linked_span):
                    key = (linked.trace_id, linked.span_id)
                    if key not in seen:
                        seen.add(key)
                        out.append(linked)
        return out

    def attach_engine_tree(
        self,
        trace_id: str,
        parent_span_id: str,
        engine_spans: "list[dict]",
        anchor: float,
    ) -> int:
        """Re-parent one run's engine span list under a ``run`` span.

        ``engine_spans`` is a list of :meth:`repro.obs.span.Span.to_dict`
        payloads shipped back from the pool worker. Each becomes a
        :class:`DistSpan` of kind ``engine`` with a **deterministic** span
        id (:func:`derived_span_id`), parented on ``parent_span_id``, and
        wall-clock timestamps rebased so the simulated clock starts at
        ``anchor`` (the run span's start). The simulated window is kept in
        ``attrs`` (``sim_start``/``sim_end``). Returns the span count.
        """
        bucket = self._bucket(trace_id)
        for index, payload in enumerate(engine_spans):
            attrs = dict(payload.get("attrs", {}))
            attrs["sim_start"] = payload["start"]
            attrs["sim_end"] = payload["end"]
            attrs["category"] = payload["category"]
            bucket.append(
                DistSpan(
                    name=payload["name"],
                    trace_id=trace_id,
                    span_id=derived_span_id(parent_span_id, index),
                    parent_id=parent_span_id,
                    start=anchor + payload["start"],
                    end=anchor + payload["end"],
                    kind=KIND_ENGINE,
                    track=payload["track"],
                    attrs=attrs,
                )
            )
        return len(engine_spans)


def synthesize_roots(spans: "list[DistSpan]") -> "list[DistSpan]":
    """Add ``client.submit`` roots for parent ids no stored span owns.

    The client's root span lives client-side (the server only ever sees its
    id in ``traceparent``), so exports synthesise it: one span per orphan
    parent id, covering its children's window.
    """
    known = {span.span_id for span in spans}
    orphans: "dict[tuple[str, str], list[DistSpan]]" = {}
    for span in spans:
        if span.parent_id is not None and span.parent_id not in known:
            orphans.setdefault((span.trace_id, span.parent_id), []).append(span)
    synthesized = []
    for (trace_id, parent_id), children in sorted(orphans.items()):
        start = min(child.start for child in children)
        ends = [child.end for child in children if child.end is not None]
        synthesized.append(
            DistSpan(
                name="client.submit",
                trace_id=trace_id,
                span_id=parent_id,
                parent_id=None,
                start=start,
                end=max(ends) if ends else None,
                kind=KIND_CLIENT,
                track="client",
                attrs={"synthesized": True},
            )
        )
    return spans + synthesized


def distributed_chrome_trace(
    trace_id: str, spans: "list[DistSpan]", rebase: "float | None" = None
) -> dict:
    """Chrome-trace/Perfetto JSON for one distributed trace closure.

    Process 0 (``service (wall clock)``) carries the service-side spans,
    one thread per ``(trace, track)`` lane; process 1
    (``engine (simulated time)``) carries re-parented engine spans, one
    thread per engine resource track. Timestamps are rebased to the
    earliest span (or ``rebase``) so the trace starts at zero — exporting
    the same span set twice yields byte-identical JSON.

    Open spans export with their current extent (duration 0 minimum);
    ``args`` carry the span/parent ids so the tree is reconstructible in
    the UI.
    """
    spans = synthesize_roots(sorted(spans, key=lambda s: (s.start, s.trace_id, s.span_id)))
    spans.sort(key=lambda s: (s.start, s.trace_id, s.span_id))
    if not spans:
        return {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {"trace_id": trace_id}}
    base = min(span.start for span in spans) if rebase is None else rebase

    def lane(span: DistSpan) -> "tuple[int, str]":
        if span.kind == KIND_ENGINE:
            return 1, span.track
        prefix = "" if span.trace_id == trace_id else f"{span.trace_id[:8]}/"
        return 0, f"{prefix}{span.track}"

    lanes: "list[tuple[int, str]]" = []
    for span in spans:
        key = lane(span)
        if key not in lanes:
            lanes.append(key)
    lanes.sort()
    tids = {key: tid for tid, key in enumerate(lanes)}
    events: "list[dict]" = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "service (wall clock)"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "engine (simulated time)"},
        },
    ]
    for (pid, name), tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append(
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": tid, "args": {"name": name}}
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for span in spans:
        pid, _ = key = lane(span)
        end = span.end if span.end is not None else span.start
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "kind": span.kind,
        }
        args.update(span.attrs)
        if span.links:
            args["links"] = [dict(link) for link in span.links]
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "pid": pid,
                "tid": tids[key],
                "ts": max(0.0, (span.start - base) * _US),
                "dur": max(0.0, (end - span.start) * _US),
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id},
    }


def dump_chrome_trace(payload: dict) -> str:
    """Canonical serialisation of a chrome-trace payload (byte-stable)."""
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"
