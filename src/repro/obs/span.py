"""Structured spans: the unit record of the tracing layer.

A span is one scheduled occupancy of one serialising resource — a kernel on
a GPU, a publish on an egress port, a migration on an ingress port. The DES
engine materialises spans after scheduling (start/end come from the
schedule, not wall clock), so a trace is an exact, replayable picture of
where simulated time went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Well-known span categories emitted by the paradigm executors. Free-form
#: strings are allowed; these are the ones the exporters colour-key on.
CATEGORY_KERNEL = "kernel"
CATEGORY_TRANSFER = "transfer"
CATEGORY_BARRIER = "barrier"
CATEGORY_TASK = "task"


@dataclass(frozen=True)
class Span:
    """One scheduled interval on one resource track.

    ``track`` is the resource name (``gpu0``, ``egress2``, ...); ``attrs``
    carries structured metadata the emitter attached (payload bytes,
    source/destination GPU, phase name). Spans on one track never overlap —
    the engine's resources serialise by construction.
    """

    name: str
    category: str
    track: str
    start: float
    end: float
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start

    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            category=payload["category"],
            track=payload["track"],
            start=payload["start"],
            end=payload["end"],
            attrs=payload.get("attrs", {}),
        )
