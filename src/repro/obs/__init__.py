"""repro.obs — the observability layer of the simulator.

Three instruments, threaded through every run (see ``docs/OBSERVABILITY.md``):

* **span tracing** — the DES engine materialises every scheduled,
  resource-bound task as a structured :class:`Span` (name, category, track,
  start/end, attributes) in a per-run :class:`TraceCollector`; the collector
  is the source of truth for :mod:`repro.system.timeline` and the Perfetto
  exporter. ``REPRO_NO_TRACE=1`` switches span materialisation off.
* a **hierarchical counter registry** — hardware models publish named
  counters (``component.metric``, e.g. ``gps_tlb.misses``) into a
  :class:`CounterRegistry`; per-GPU scopes (``gpu0.gps_tlb.misses``) roll up
  into system-wide totals, and the snapshot lands in
  ``SimulationResult.counters`` where it survives the disk cache round-trip.
* **exporters** — Chrome-trace / Perfetto JSON (:func:`chrome_trace`,
  loadable at https://ui.perfetto.dev), flat metrics JSON/CSV, a run
  manifest for provenance, and a top-N self-time profile
  (:func:`self_time_profile`).
"""

from .collector import TraceCollector, max_spans, tracing_enabled
from .distributed import (
    DistSpan,
    SequentialIds,
    TraceContext,
    TraceStore,
    derived_span_id,
    distributed_chrome_trace,
    dump_chrome_trace,
    parse_traceparent,
    set_id_generator,
)
from .export import (
    chrome_trace,
    metrics_csv,
    metrics_json,
    run_manifest,
    validate_chrome_trace,
    write_chrome_trace,
)
from .profile import ProfileRow, format_profile, self_time_profile
from .promtext import prometheus_text, promtext_problems
from .registry import Counter, CounterRegistry, Histogram
from .span import Span

__all__ = [
    "Counter",
    "CounterRegistry",
    "DistSpan",
    "Histogram",
    "ProfileRow",
    "SequentialIds",
    "Span",
    "TraceCollector",
    "TraceContext",
    "TraceStore",
    "chrome_trace",
    "derived_span_id",
    "distributed_chrome_trace",
    "dump_chrome_trace",
    "format_profile",
    "max_spans",
    "metrics_csv",
    "metrics_json",
    "parse_traceparent",
    "prometheus_text",
    "promtext_problems",
    "run_manifest",
    "self_time_profile",
    "set_id_generator",
    "tracing_enabled",
    "validate_chrome_trace",
    "write_chrome_trace",
]
