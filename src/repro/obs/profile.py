"""Top-N self-time profiles over a span trace.

Spans in this simulator do not nest (each is one exclusive resource
occupancy), so self time equals duration; the interesting aggregation is
*by operation*: all instances of one kernel or one transfer stream, across
GPUs, ports, and iterations, folded into one row. Instance suffixes
(``@gpu3``, ``:eg0->1``) are stripped so the row key is the logical
operation, the thing a perf investigation actually ranks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from ..units import fmt_time
from .span import Span

#: Instance suffixes folded away by :func:`normalise_span_name`.
_INSTANCE_SUFFIXES = re.compile(r"(@gpu\d+|:(?:eg|in)\d+->\d+|\d*-(?:eg|in)\d+)$")


def normalise_span_name(name: str) -> str:
    """Fold one span name to its logical operation.

    ``iter3/jacobi@gpu2`` -> ``iter3/jacobi``; ``iter3/gps-pub:eg0->1`` ->
    ``iter3/gps-pub``; names without an instance suffix pass through.
    """
    return _INSTANCE_SUFFIXES.sub("", name)


@dataclass(frozen=True)
class ProfileRow:
    """One aggregated operation in a self-time profile."""

    name: str
    category: str
    count: int
    total_time: float
    #: Fraction of all span time this operation accounts for.
    share: float


def self_time_profile(spans: Iterable[Span], top: "int | None" = None) -> "list[ProfileRow]":
    """Aggregate spans by (normalised name, category), ranked by total time.

    ``top`` truncates the ranking; ties break deterministically by name.
    """
    totals: dict[tuple, list] = {}
    for span in spans:
        key = (normalise_span_name(span.name), span.category)
        row = totals.setdefault(key, [0, 0.0])
        row[0] += 1
        row[1] += span.duration
    grand_total = sum(row[1] for row in totals.values())
    ranked = sorted(totals.items(), key=lambda item: (-item[1][1], item[0]))
    if top is not None:
        ranked = ranked[:top]
    return [
        ProfileRow(
            name=name,
            category=category,
            count=count,
            total_time=total,
            share=(total / grand_total) if grand_total > 0 else 0.0,
        )
        for (name, category), (count, total) in ranked
    ]


def format_profile(rows: "list[ProfileRow]", title: str = "self-time profile") -> str:
    """Monospace table for the CLI: rank, time, share, count, operation."""
    if not rows:
        return f"{title}: (no spans recorded)"
    lines = [title, f"{'#':>3}  {'total':>10}  {'share':>6}  {'count':>6}  operation [category]"]
    for rank, row in enumerate(rows, start=1):
        lines.append(
            f"{rank:>3}  {fmt_time(row.total_time):>10}  {100 * row.share:>5.1f}%  "
            f"{row.count:>6}  {row.name} [{row.category}]"
        )
    return "\n".join(lines)
