"""Trace representation and synthetic expansion.

The paper drives NVAS with SASS-level traces captured by NVBit on real
hardware. This package is the substitute: workloads are described as
*trace programs* — phases of concurrent kernels, each kernel a bag of
:class:`AccessRange` descriptors — and :mod:`repro.trace.expand` lowers an
access range into a cacheline-granular numpy event stream with the spatial
and temporal structure the descriptor specifies. Hardware-structure models
(write queue, TLBs, L2) consume those streams directly.
"""

from .records import AccessRange, MemOp, PatternKind, PatternSpec, Scope
from .program import BufferSpec, KernelSpec, Phase, TraceProgram
from .expand import LineStream, expand_range, expanded_bytes, touched_lines, touched_pages

__all__ = [
    "AccessRange",
    "MemOp",
    "PatternKind",
    "PatternSpec",
    "Scope",
    "BufferSpec",
    "KernelSpec",
    "Phase",
    "TraceProgram",
    "LineStream",
    "expand_range",
    "expanded_bytes",
    "touched_lines",
    "touched_pages",
]
