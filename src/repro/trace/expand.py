"""Lower access ranges to cacheline-granular event streams.

An expanded stream is a :class:`LineStream`: parallel numpy arrays of
absolute line addresses and per-transaction byte counts, in program order.
These streams drive the hardware-structure models: the remote write queue
sees store streams, the L2 sees read streams, TLB models see the page
projection of either.

Expansion is deterministic: RANDOM and REUSE patterns derive their RNG from
``pattern.seed`` (plus the range's position), so two expansions of the same
program produce byte-identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CACHE_BLOCK
from ..errors import TraceError
from .records import AccessRange, PatternKind


@dataclass
class LineStream:
    """An ordered stream of line-granule transactions.

    ``lines`` are absolute cacheline numbers (byte address // 128);
    ``bytes_per_txn`` is the payload each transaction carries.
    """

    lines: np.ndarray  # int64, shape (n,)
    bytes_per_txn: np.ndarray  # int32, shape (n,)

    def __post_init__(self) -> None:
        if self.lines.shape != self.bytes_per_txn.shape:
            raise TraceError("line and byte arrays must be parallel")

    def __len__(self) -> int:
        return int(self.lines.shape[0])

    @property
    def total_bytes(self) -> int:
        """Payload bytes across the whole stream."""
        return int(self.bytes_per_txn.sum())

    @property
    def distinct_lines(self) -> int:
        """Number of distinct lines touched."""
        return int(np.unique(self.lines).shape[0])

    def pages(self, page_size: int) -> np.ndarray:
        """Distinct page numbers touched, sorted."""
        lines_per_page = page_size // CACHE_BLOCK
        return np.unique(self.lines // lines_per_page)

    @staticmethod
    def concat(streams: "list[LineStream]") -> "LineStream":
        """Concatenate streams in order; empty input gives an empty stream."""
        if not streams:
            return LineStream(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32)
            )
        return LineStream(
            np.concatenate([s.lines for s in streams]),
            np.concatenate([s.bytes_per_txn for s in streams]),
        )


def _expand_once(access: AccessRange, base_line: int, sweep: int) -> np.ndarray:
    """Line sequence for one sweep of the range. ``base_line`` is absolute."""
    pattern = access.pattern
    first = base_line + access.offset // CACHE_BLOCK
    count = max(1, -(-access.length // CACHE_BLOCK))

    if pattern.kind is PatternKind.SEQUENTIAL:
        lines = np.arange(first, first + count, dtype=np.int64)
    elif pattern.kind is PatternKind.STRIDED:
        lines = np.arange(first, first + count, pattern.stride, dtype=np.int64)
    elif pattern.kind is PatternKind.RANDOM:
        rng = np.random.default_rng((pattern.seed, sweep, first))
        n = max(1, int(count * pattern.touch_fraction))
        lines = rng.integers(first, first + count, size=n, dtype=np.int64)
        return lines  # touch_fraction already applied via n
    elif pattern.kind is PatternKind.REUSE:
        rng = np.random.default_rng((pattern.seed, sweep, first))
        n = max(1, int(count * pattern.touch_fraction))
        fresh = np.arange(first, first + count, dtype=np.int64)
        if n < count:
            fresh = fresh[rng.permutation(count)[:n]]
            fresh.sort()
        lines = _weave_revisits(rng, fresh, pattern.revisit_prob, pattern.revisit_window)
        return lines
    else:  # pragma: no cover - enum is closed
        raise TraceError(f"unknown pattern kind {pattern.kind}")

    if pattern.touch_fraction < 1.0:
        rng = np.random.default_rng((pattern.seed, sweep, first))
        n = max(1, int(lines.shape[0] * pattern.touch_fraction))
        keep = np.sort(rng.permutation(lines.shape[0])[:n])
        lines = lines[keep]
    return lines


def _weave_revisits(
    rng: np.random.Generator, fresh: np.ndarray, revisit_prob: float, window: int
) -> np.ndarray:
    """Interleave revisits to recently used lines into a fresh-line walk.

    The output stream has ``len(fresh) / (1 - p)`` events (approximately):
    each event is, with probability ``p``, a revisit to one of the last
    ``window`` distinct lines, else the next fresh line. Revisit distance is
    what the remote write queue's hit rate measures, so this knob directly
    shapes the Figure 14 curves.
    """
    if revisit_prob <= 0.0 or fresh.shape[0] == 0:
        return fresh
    n_fresh = fresh.shape[0]
    total = int(n_fresh / (1.0 - revisit_prob)) + 1
    is_revisit = rng.random(total) < revisit_prob
    # indices into fresh[] for each event position
    fresh_idx = np.cumsum(~is_revisit) - 1
    fresh_idx = np.clip(fresh_idx, 0, n_fresh - 1)
    # revisit targets: a uniformly random recent line within the window
    back = rng.integers(1, window + 1, size=total)
    revisit_idx = np.clip(fresh_idx - back, 0, n_fresh - 1)
    idx = np.where(is_revisit, revisit_idx, fresh_idx)
    # trim trailing events past the last fresh line
    last_needed = np.nonzero(~is_revisit)[0]
    if last_needed.shape[0] >= n_fresh:
        idx = idx[: last_needed[n_fresh - 1] + 1]
    return fresh[idx]


def expand_range(access: AccessRange, buffer_base: int, max_events: int = 2_000_000) -> LineStream:
    """Expand one access range into a :class:`LineStream`.

    ``buffer_base`` is the buffer's absolute start address (line-aligned by
    the address space's page alignment). All ``repeat`` sweeps are
    concatenated in order. ``max_events`` is a safety valve against
    accidentally exploding a huge range; exceeding it raises rather than
    silently truncating.
    """
    if buffer_base % CACHE_BLOCK != 0:
        raise TraceError(f"buffer base {buffer_base:#x} not line-aligned")
    base_line = buffer_base // CACHE_BLOCK
    sweeps = [_expand_once(access, base_line, sweep) for sweep in range(access.repeat)]
    lines = np.concatenate(sweeps) if len(sweeps) > 1 else sweeps[0]
    if lines.shape[0] > max_events:
        raise TraceError(
            f"access range over {access.buffer!r} expands to {lines.shape[0]} events "
            f"(cap {max_events}); shrink the workload scale"
        )
    txn_bytes = np.full(lines.shape[0], access.pattern.bytes_per_txn, dtype=np.int32)
    return LineStream(lines, txn_bytes)


def expanded_bytes(access: AccessRange) -> int:
    """Exact payload bytes :func:`expand_range` will produce, without expanding."""
    # Mirrors AccessRange.total_bytes but uses the expansion's own rounding.
    pattern = access.pattern
    count = max(1, -(-access.length // CACHE_BLOCK))
    if pattern.kind is PatternKind.STRIDED:
        count = len(range(0, count, pattern.stride))
    if pattern.kind in (PatternKind.RANDOM, PatternKind.SEQUENTIAL, PatternKind.STRIDED):
        n = max(1, int(count * pattern.touch_fraction)) if pattern.touch_fraction < 1.0 else count
        return n * pattern.bytes_per_txn * access.repeat
    # REUSE streams are longer than their fresh walk; compute per sweep.
    total = 0
    n_fresh = max(1, int(count * pattern.touch_fraction))
    if pattern.revisit_prob > 0:
        per_sweep = int(n_fresh / (1.0 - pattern.revisit_prob)) + 1
    else:
        per_sweep = n_fresh
    total = per_sweep * pattern.bytes_per_txn * access.repeat
    return total


def touched_lines(access: AccessRange, buffer_base: int) -> np.ndarray:
    """Distinct absolute lines one sweep of the range touches, sorted."""
    stream = _expand_once(access, buffer_base // CACHE_BLOCK, sweep=0)
    return np.unique(stream)


def touched_pages(access: AccessRange, buffer_base: int, page_size: int) -> np.ndarray:
    """Distinct absolute page numbers the range touches, sorted."""
    lines_per_page = page_size // CACHE_BLOCK
    return np.unique(touched_lines(access, buffer_base) // lines_per_page)
