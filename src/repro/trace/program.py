"""Trace programs: buffers, kernels, phases — the unit paradigms execute.

A :class:`TraceProgram` is the synthetic analogue of an NVBit trace: a fixed
sequence of :class:`Phase` objects, each holding the kernels that run
concurrently (one per participating GPU) before a global barrier. Iterative
applications tag phases with their iteration index so GPS's automatic
profiling (iteration 0, paper Listing 1) knows where tracking starts and
stops.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Optional

from ..errors import TraceError
from .records import AccessRange, MemOp


@dataclass(frozen=True)
class BufferSpec:
    """One shared or private data buffer of the application."""

    name: str
    size: int
    #: GPU whose partition "owns" the buffer for first-touch placement; for
    #: buffers written by all GPUs this is just where UM first places pages.
    home_gpu: int = 0
    #: Buffers holding synchronisation flags must opt out of GPS
    #: (paper section 5.3) — allocated with cudaMalloc, accessed sys-scoped.
    sync: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise TraceError(f"buffer {self.name!r} must have positive size")


@dataclass(frozen=True)
class KernelSpec:
    """One kernel launch on one GPU."""

    name: str
    gpu: int
    #: Scalar arithmetic operations executed (drives the compute roofline).
    compute_ops: float
    accesses: tuple[AccessRange, ...]
    #: Kernel launch overhead charged once per launch.
    launch_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if self.gpu < 0:
            raise TraceError(f"kernel {self.name!r} has negative GPU id")
        if self.compute_ops < 0:
            raise TraceError(f"kernel {self.name!r} has negative compute_ops")

    def reads(self) -> tuple[AccessRange, ...]:
        """Ranges this kernel loads from."""
        return tuple(a for a in self.accesses if a.op is MemOp.READ)

    def stores(self) -> tuple[AccessRange, ...]:
        """Ranges this kernel writes or atomically updates."""
        return tuple(a for a in self.accesses if a.op.is_store)


@dataclass(frozen=True)
class Phase:
    """Kernels running concurrently between two global barriers."""

    name: str
    kernels: tuple[KernelSpec, ...]
    #: Iteration index for iterative programs; -1 marks setup phases.
    iteration: int = 0

    def __post_init__(self) -> None:
        gpus = [k.gpu for k in self.kernels]
        if len(set(gpus)) != len(gpus):
            raise TraceError(
                f"phase {self.name!r} launches more than one kernel on one GPU; "
                "split them into successive phases"
            )

    def kernel_on(self, gpu: int) -> Optional[KernelSpec]:
        """The kernel this phase runs on ``gpu``, if any."""
        for kernel in self.kernels:
            if kernel.gpu == gpu:
                return kernel
        return None

    @property
    def gpus(self) -> tuple[int, ...]:
        """GPUs participating in this phase."""
        return tuple(k.gpu for k in self.kernels)


@dataclass
class TraceProgram:
    """A complete application trace.

    ``buffers`` declare the data; ``phases`` execute in order with an
    implicit global barrier (and, under the GPU memory model, an implicit
    release/fence: the GPS write queue drains) between consecutive phases.
    """

    name: str
    num_gpus: int
    buffers: tuple[BufferSpec, ...]
    phases: tuple[Phase, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise TraceError("program needs at least one GPU")
        names = [b.name for b in self.buffers]
        if len(set(names)) != len(names):
            raise TraceError(f"duplicate buffer names in program {self.name!r}")
        by_name = {b.name: b for b in self.buffers}
        for phase in self.phases:
            for kernel in phase.kernels:
                if kernel.gpu >= self.num_gpus:
                    raise TraceError(
                        f"{phase.name}/{kernel.name}: GPU {kernel.gpu} out of range "
                        f"for a {self.num_gpus}-GPU program"
                    )
                for access in kernel.accesses:
                    buf = by_name.get(access.buffer)
                    if buf is None:
                        raise TraceError(
                            f"{phase.name}/{kernel.name}: unknown buffer {access.buffer!r}"
                        )
                    if access.end > buf.size:
                        raise TraceError(
                            f"{phase.name}/{kernel.name}: access [{access.offset}, "
                            f"{access.end}) overruns buffer {buf.name!r} of {buf.size} B"
                        )

    def buffer(self, name: str) -> BufferSpec:
        """Look up a buffer by name."""
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise TraceError(f"unknown buffer {name!r}")

    @property
    def iterations(self) -> int:
        """Number of distinct non-setup iterations."""
        indices = {p.iteration for p in self.phases if p.iteration >= 0}
        return len(indices)

    def phases_in_iteration(self, iteration: int) -> list[Phase]:
        """All phases tagged with one iteration index."""
        return [p for p in self.phases if p.iteration == iteration]

    def iter_kernels(self) -> Iterator[KernelSpec]:
        """Every kernel launch in program order."""
        for phase in self.phases:
            yield from phase.kernels

    def total_compute_ops(self) -> float:
        """Sum of compute across all kernels (sanity metric)."""
        return sum(k.compute_ops for k in self.iter_kernels())

    def with_phases(self, phases: "tuple[Phase, ...]") -> "TraceProgram":
        """Copy of the program with ``phases`` replaced (re-validated)."""
        return TraceProgram(
            name=self.name,
            num_gpus=self.num_gpus,
            buffers=self.buffers,
            phases=phases,
            metadata=dict(self.metadata),
        )

    def with_buffers(self, buffers: "tuple[BufferSpec, ...]") -> "TraceProgram":
        """Copy of the program with ``buffers`` replaced (re-validated)."""
        return TraceProgram(
            name=self.name,
            num_gpus=self.num_gpus,
            buffers=buffers,
            phases=self.phases,
            metadata=dict(self.metadata),
        )

    def splice_phases(
        self, index: int, replacement: "tuple[Phase, ...]"
    ) -> "TraceProgram":
        """Copy with the phase at ``index`` replaced by ``replacement``.

        The replacement may be empty (drop the phase) or hold several
        phases (split one phase into a barrier-separated sequence) — the
        program-repair engine uses both.
        """
        if not 0 <= index < len(self.phases):
            raise TraceError(
                f"phase index {index} out of range for {len(self.phases)} phases"
            )
        phases = self.phases[:index] + replacement + self.phases[index + 1:]
        return self.with_phases(phases)

    def rewrite_accesses(
        self,
        fn: "Callable[[int, KernelSpec, int, AccessRange], Optional[AccessRange]]",
    ) -> "TraceProgram":
        """Copy with every access mapped through ``fn``.

        ``fn(phase_index, kernel, access_index, access)`` returns the
        replacement access (or the access itself / ``None`` to keep it).
        Untouched phases and kernels are shared, not copied.
        """
        new_phases: list[Phase] = []
        changed_any = False
        for phase_index, phase in enumerate(self.phases):
            new_kernels: list[KernelSpec] = []
            phase_changed = False
            for kernel in phase.kernels:
                new_accesses: list[AccessRange] = []
                kernel_changed = False
                for access_index, access in enumerate(kernel.accesses):
                    replacement = fn(phase_index, kernel, access_index, access)
                    if replacement is None or replacement is access:
                        new_accesses.append(access)
                    else:
                        new_accesses.append(replacement)
                        kernel_changed = True
                if kernel_changed:
                    new_kernels.append(
                        replace(kernel, accesses=tuple(new_accesses))
                    )
                    phase_changed = True
                else:
                    new_kernels.append(kernel)
            if phase_changed:
                new_phases.append(replace(phase, kernels=tuple(new_kernels)))
                changed_any = True
            else:
                new_phases.append(phase)
        if not changed_any:
            return self
        return self.with_phases(tuple(new_phases))

    def shared_buffers(self) -> list[BufferSpec]:
        """Buffers accessed by more than one GPU anywhere in the program."""
        touchers: dict[str, set[int]] = {}
        for kernel in self.iter_kernels():
            for access in kernel.accesses:
                touchers.setdefault(access.buffer, set()).add(kernel.gpu)
        return [b for b in self.buffers if len(touchers.get(b.name, set())) > 1]
