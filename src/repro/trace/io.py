"""Trace program serialization: save/load programs as JSON.

Lets workload traces be captured once and shared (the moral equivalent of
shipping NVBit trace files), and makes custom programs editable as data.
The format is versioned; loading validates through the same constructors
as the builder API, so a hand-edited file cannot produce an inconsistent
program silently.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import TraceError
from .program import BufferSpec, KernelSpec, Phase, TraceProgram
from .records import AccessRange, MemOp, PatternKind, PatternSpec, Scope

FORMAT_VERSION = 1


def _pattern_to_dict(pattern: PatternSpec) -> dict:
    return {
        "kind": pattern.kind.value,
        "stride": pattern.stride,
        "touch_fraction": pattern.touch_fraction,
        "revisit_prob": pattern.revisit_prob,
        "revisit_window": pattern.revisit_window,
        "bytes_per_txn": pattern.bytes_per_txn,
        "seed": pattern.seed,
    }


def _pattern_from_dict(data: dict) -> PatternSpec:
    return PatternSpec(
        kind=PatternKind(data["kind"]),
        stride=data.get("stride", 1),
        touch_fraction=data.get("touch_fraction", 1.0),
        revisit_prob=data.get("revisit_prob", 0.0),
        revisit_window=data.get("revisit_window", 64),
        bytes_per_txn=data.get("bytes_per_txn", 128),
        seed=data.get("seed", 0),
    )


def _access_to_dict(access: AccessRange) -> dict:
    return {
        "buffer": access.buffer,
        "offset": access.offset,
        "length": access.length,
        "op": access.op.value,
        "scope": access.scope.value,
        "repeat": access.repeat,
        "pattern": _pattern_to_dict(access.pattern),
    }


def _access_from_dict(data: dict) -> AccessRange:
    return AccessRange(
        buffer=data["buffer"],
        offset=data["offset"],
        length=data["length"],
        op=MemOp(data["op"]),
        pattern=_pattern_from_dict(data.get("pattern", {"kind": "sequential"})),
        scope=Scope(data.get("scope", "weak")),
        repeat=data.get("repeat", 1),
    )


def program_to_dict(program: TraceProgram) -> dict:
    """Serialise a program to a JSON-safe dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": program.name,
        "num_gpus": program.num_gpus,
        "metadata": dict(program.metadata),
        "buffers": [
            {
                "name": b.name,
                "size": b.size,
                "home_gpu": b.home_gpu,
                "sync": b.sync,
            }
            for b in program.buffers
        ],
        "phases": [
            {
                "name": phase.name,
                "iteration": phase.iteration,
                "kernels": [
                    {
                        "name": k.name,
                        "gpu": k.gpu,
                        "compute_ops": k.compute_ops,
                        "launch_overhead": k.launch_overhead,
                        "accesses": [_access_to_dict(a) for a in k.accesses],
                    }
                    for k in phase.kernels
                ],
            }
            for phase in program.phases
        ],
    }


def program_from_dict(data: dict) -> TraceProgram:
    """Reconstruct (and re-validate) a program from its dict form."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {version!r} (expected {FORMAT_VERSION})"
        )
    buffers = tuple(
        BufferSpec(
            name=b["name"],
            size=b["size"],
            home_gpu=b.get("home_gpu", 0),
            sync=b.get("sync", False),
        )
        for b in data["buffers"]
    )
    phases = []
    for phase_data in data["phases"]:
        kernels = tuple(
            KernelSpec(
                name=k["name"],
                gpu=k["gpu"],
                compute_ops=k["compute_ops"],
                accesses=tuple(_access_from_dict(a) for a in k["accesses"]),
                launch_overhead=k.get("launch_overhead", 5e-6),
            )
            for k in phase_data["kernels"]
        )
        phases.append(
            Phase(phase_data["name"], kernels, iteration=phase_data.get("iteration", 0))
        )
    return TraceProgram(
        name=data["name"],
        num_gpus=data["num_gpus"],
        buffers=buffers,
        phases=tuple(phases),
        metadata=data.get("metadata", {}),
    )


def save_program(program: TraceProgram, path: "str | Path") -> None:
    """Write a program to a JSON file."""
    Path(path).write_text(json.dumps(program_to_dict(program), indent=1) + "\n")


def load_program(path: "str | Path") -> TraceProgram:
    """Read a program back from a JSON file (validating on construction)."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as err:
        raise TraceError(f"malformed trace file {path}: {err}") from err
    return program_from_dict(data)
