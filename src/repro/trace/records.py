"""Access descriptors: the vocabulary trace programs are written in.

An :class:`AccessRange` says "this kernel performs ``op`` accesses over
``[offset, offset+length)`` of ``buffer`` with spatial/temporal structure
``pattern`` at consistency ``scope``". Workload generators compose these;
:mod:`repro.trace.expand` lowers them to event streams.
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass

from ..errors import TraceError


def stable_seed(*parts: "int | str") -> int:
    """Deterministic, process-independent seed from mixed int/str parts.

    Workload generators derive :attr:`PatternSpec.seed` values from labels
    and loop indices. Using builtin ``hash()`` for that is a trap: string
    hashes are randomised per process (``PYTHONHASHSEED``), so a pool
    worker would expand a *different* trace than the parent that submitted
    the job — the paths diverge silently. This helper folds every part
    through CRC-32, which is stable across processes, platforms, and
    Python versions.
    """
    acc = 0
    for part in parts:
        data = str(part).encode("utf-8") if not isinstance(part, bytes) else part
        acc = zlib.crc32(data, acc)
    return acc


class MemOp(enum.Enum):
    """Kind of memory operation."""

    READ = "read"
    WRITE = "write"
    #: Read-modify-write. GPS forwards atomics like stores (section 5.1) but
    #: the remote write queue does not coalesce them (section 7.4: Pagerank,
    #: ALS, SSSP show 0% write-queue hit rate because they issue atomics).
    ATOMIC = "atomic"

    @property
    def is_store(self) -> bool:
        """Whether the op dirties memory (WRITE or ATOMIC)."""
        return self is not MemOp.READ


class Scope(enum.Enum):
    """Memory-model scope of an access (paper section 2.3).

    WEAK accesses need only become visible to other GPUs at the next
    sys-scoped synchronisation; SYS accesses are strong and must go to a
    single point of coherence uncoalesced.
    """

    WEAK = "weak"
    SYS = "sys"


class PatternKind(enum.Enum):
    """Spatial/temporal access structure within a range."""

    #: Every line in the range, ascending, contiguous full-line transactions.
    SEQUENTIAL = "sequential"
    #: Every ``stride``-th line, ascending — halo planes, matrix columns.
    STRIDED = "strided"
    #: Uniformly random lines — graph gather/scatter.
    RANDOM = "random"
    #: Mostly-new lines with probabilistic revisits to a recent working set —
    #: stencils and transforms with temporal locality (CT, EQWP, HIT).
    REUSE = "reuse"


@dataclass(frozen=True)
class PatternSpec:
    """Parameters refining a :class:`PatternKind`.

    ``bytes_per_txn`` models how much of each 128 B line a transaction
    actually dirties after the intra-SM coalescer: contiguous float stores
    fill whole lines (128), scattered graph updates dirty 4-32 bytes
    (section 7.5 discusses exactly this partial-line waste).
    """

    kind: PatternKind = PatternKind.SEQUENTIAL
    stride: int = 1
    #: Fraction of the range's lines the kernel touches (sparsity).
    touch_fraction: float = 1.0
    #: REUSE only: probability a given event revisits a recently used line.
    revisit_prob: float = 0.0
    #: REUSE only: how many distinct recent lines form the revisit pool.
    revisit_window: int = 64
    bytes_per_txn: int = 128
    seed: int = 0

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise TraceError(f"stride must be >= 1, got {self.stride}")
        if not 0.0 < self.touch_fraction <= 1.0:
            raise TraceError(f"touch_fraction must be in (0, 1], got {self.touch_fraction}")
        if not 0.0 <= self.revisit_prob < 1.0:
            raise TraceError(f"revisit_prob must be in [0, 1), got {self.revisit_prob}")
        if self.revisit_window < 1:
            raise TraceError(f"revisit_window must be >= 1, got {self.revisit_window}")
        if not 1 <= self.bytes_per_txn <= 128:
            raise TraceError(f"bytes_per_txn must be in [1, 128], got {self.bytes_per_txn}")


#: Convenience singleton: dense sequential full-line sweep.
SEQUENTIAL = PatternSpec(PatternKind.SEQUENTIAL)


@dataclass(frozen=True)
class AccessRange:
    """One kernel's accesses to one slice of one buffer."""

    buffer: str
    offset: int
    length: int
    op: MemOp
    pattern: PatternSpec = SEQUENTIAL
    scope: Scope = Scope.WEAK
    #: Number of times the kernel sweeps the range (temporal reuse knob for
    #: the L2 model; also multiplies bytes moved for demand paradigms).
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise TraceError(f"negative offset {self.offset}")
        if self.length <= 0:
            raise TraceError(f"access range must have positive length, got {self.length}")
        if self.repeat < 1:
            raise TraceError(f"repeat must be >= 1, got {self.repeat}")

    @property
    def end(self) -> int:
        """One past the last byte of the range (buffer-relative)."""
        return self.offset + self.length

    def total_bytes(self) -> int:
        """Bytes of payload the kernel moves for this range (all sweeps).

        This is transaction bytes, not lines-touched x 128: sparse patterns
        move fewer bytes than the footprint they touch.
        """
        lines = -(-self.length // 128)
        reachable = max(1, lines // self.pattern.stride)
        touched = max(1, int(reachable * self.pattern.touch_fraction))
        return touched * self.pattern.bytes_per_txn * self.repeat

    def footprint_bytes(self) -> int:
        """Distinct bytes the range can touch (capacity footprint)."""
        return self.length
