"""Exception hierarchy for the GPS reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AllocationError(ReproError):
    """Physical or virtual memory could not be allocated."""


class TranslationError(ReproError):
    """A virtual address has no mapping in the relevant page table."""


class SubscriptionError(ReproError):
    """An illegal subscription operation was attempted.

    The canonical case, from paper section 4: unsubscribing the *last*
    subscriber of a GPS region is an error — GPS guarantees at least one
    physical replica exists.
    """


class TraceError(ReproError):
    """A trace program or access range is malformed."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ParadigmError(ReproError):
    """A memory-management paradigm was misused or misconfigured."""
