"""Exception hierarchy for the GPS reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class AllocationError(ReproError):
    """Physical or virtual memory could not be allocated."""


class TranslationError(ReproError):
    """A virtual address has no mapping in the relevant page table."""


class SubscriptionError(ReproError):
    """An illegal subscription operation was attempted.

    The canonical case, from paper section 4: unsubscribing the *last*
    subscriber of a GPS region is an error — GPS guarantees at least one
    physical replica exists.
    """


class TraceError(ReproError):
    """A trace program or access range is malformed."""


class AnalysisError(ReproError):
    """Static analysis found error-severity diagnostics in a trace program.

    ``diagnostics`` carries the full finding list (all severities) so
    callers can report more than the exception message.
    """

    def __init__(self, message: str, diagnostics: "list | None" = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ParadigmError(ReproError):
    """A memory-management paradigm was misused or misconfigured."""


class ServiceError(ReproError):
    """The simulation service rejected or failed a request.

    Base class for the service layer's failures (queue backpressure,
    draining shutdown, client-side HTTP errors) so callers embedding the
    client can catch one type.
    """

