"""The simulation service: a stdlib-only JSON-over-HTTP asyncio server.

One process hosts the whole serving stack — HTTP frontend, priority queue,
batching scheduler — in a single event loop; simulations run off-loop via
the harness runner's process pool. The API surface:

==========================  ==================================================
``POST /jobs``              submit a simulation; ``202`` + job status payload
                            (``200`` when answered from cache), ``400`` on a
                            bad request, ``429`` on backpressure, ``503``
                            while draining
``GET /jobs/{id}``          job status (state, latencies, attempts, coalesced)
``GET /results/{id}``       ``200`` + full result once done, ``202`` while
                            pending, ``500`` once failed
``GET /healthz``            liveness + queue gauges
``GET /metrics``            the service's ``obs.CounterRegistry`` snapshot
``POST /shutdown``          graceful drain (``{"drain": false}`` aborts the
                            queue instead)
==========================  ==================================================

Submission body: ``{"workload": "jacobi", "paradigm": "gps", "gpus": 4,
"link": "pcie6", "scale": 0.5, "iterations": 8, "priority": 0}`` — every
field but ``workload`` optional. Ops knobs come from ``REPRO_SERVICE_*``
environment variables via :meth:`ServiceSettings.from_env`.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection: close``,
JSON bodies only): the service fronts a trusted local/CI network, and
keeping it stdlib-only is a hard constraint of this repo.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass

from ..config import LINKS_BY_NAME
from ..harness.runner import SimJob
from ..paradigms.registry import PARADIGMS
from ..workloads.registry import (
    EXTRA_WORKLOADS,
    is_known_workload,
    resolve_workload_name,
    workload_names,
)
from .metrics import ServiceMetrics
from .queue import JobQueue, JobState, QueueFull, ServiceClosed
from .scheduler import BatchScheduler

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request body the server will read, in bytes.
MAX_BODY_BYTES = 1 << 20


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    return float(raw) if raw else default


@dataclass(frozen=True)
class ServiceSettings:
    """Tunable knobs of one service instance (see ``docs/SERVICE.md``)."""

    host: str = "127.0.0.1"
    port: int = 8787
    queue_depth: int = 256
    batch_size: int = 8
    max_wait_s: float = 0.05
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    max_workers: "int | None" = None

    @classmethod
    def from_env(cls, **overrides) -> "ServiceSettings":
        """Settings from ``REPRO_SERVICE_*`` variables, then ``overrides``.

        Only overrides whose value is not ``None`` apply, so CLI flags can
        pass through unset options without clobbering the environment.
        """
        workers = os.environ.get("REPRO_SERVICE_MAX_WORKERS", "")
        values = {
            "host": os.environ.get("REPRO_SERVICE_HOST") or cls.host,
            "port": _env_int("REPRO_SERVICE_PORT", cls.port),
            "queue_depth": _env_int("REPRO_SERVICE_QUEUE_DEPTH", cls.queue_depth),
            "batch_size": _env_int("REPRO_SERVICE_BATCH_SIZE", cls.batch_size),
            "max_wait_s": _env_float("REPRO_SERVICE_MAX_WAIT_MS", cls.max_wait_s * 1000.0)
            / 1000.0,
            "max_retries": _env_int("REPRO_SERVICE_MAX_RETRIES", cls.max_retries),
            "retry_backoff_s": _env_float(
                "REPRO_SERVICE_RETRY_BACKOFF_MS", cls.retry_backoff_s * 1000.0
            )
            / 1000.0,
            "max_workers": int(workers) if workers else None,
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)


def parse_job_payload(payload) -> "tuple[SimJob, int]":
    """Validate a ``POST /jobs`` body into ``(SimJob, priority)``.

    Raises ``ValueError`` with a client-presentable message on any problem;
    the HTTP layer maps that to ``400``.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    known = {"workload", "paradigm", "gpus", "link", "scale", "iterations", "priority"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(unknown)}")

    workload = resolve_workload_name(payload.get("workload", ""))
    if not is_known_workload(workload):
        valid = workload_names() + list(EXTRA_WORKLOADS) + ["fuzz/<seed>"]
        raise ValueError(f"unknown workload {payload.get('workload')!r}; one of {valid}")
    paradigm = payload.get("paradigm", "gps")
    if paradigm not in PARADIGMS:
        raise ValueError(f"unknown paradigm {paradigm!r}; one of {sorted(PARADIGMS)}")
    link = payload.get("link", "pcie6")
    if link not in LINKS_BY_NAME:
        raise ValueError(f"unknown link {link!r}; one of {sorted(LINKS_BY_NAME)}")

    def _int(name: str, default: int, minimum: int) -> int:
        value = payload.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise ValueError(f"{name} must be an integer >= {minimum}")
        return value

    gpus = _int("gpus", 4, 1)
    iterations = _int("iterations", 8, 1)
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ValueError("priority must be an integer")
    scale = payload.get("scale", 0.5)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise ValueError("scale must be a positive number")

    sim = SimJob(workload, paradigm, gpus, link, float(scale), iterations)
    return sim, priority


class SimulationService:
    """Queue + scheduler + HTTP frontend, wired to one event loop."""

    def __init__(
        self,
        settings: "ServiceSettings | None" = None,
        registry=None,
    ) -> None:
        self.settings = settings if settings is not None else ServiceSettings.from_env()
        self.metrics = ServiceMetrics(registry)
        self.queue = JobQueue(self.metrics, max_depth=self.settings.queue_depth)
        self.scheduler = BatchScheduler(
            self.queue,
            self.metrics,
            batch_size=self.settings.batch_size,
            max_wait_s=self.settings.max_wait_s,
            max_retries=self.settings.max_retries,
            retry_backoff_s=self.settings.retry_backoff_s,
            max_workers=self.settings.max_workers,
        )
        self._server: "asyncio.Server | None" = None
        self._stopped: "asyncio.Event | None" = None
        self.host = self.settings.host
        self.port = self.settings.port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Bind the socket and start the scheduler; returns ``(host, port)``.

        ``port=0`` binds an ephemeral port; the resolved one is stored on
        ``self.port``.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._stopped = asyncio.Event()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work, settle (or abort) the backlog, close up."""
        if self._server is None:
            return
        self.queue.close()
        await self.scheduler.stop(drain=drain)
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        assert self._stopped is not None
        self._stopped.set()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            status, payload = await self._route(method, path, body)
            writer.write(_render_response(status, payload))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, bytes] | None":
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            return "GET", "/__malformed__", b""
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = min(int(value.strip()), MAX_BODY_BYTES)
                except ValueError:
                    content_length = 0
        body = await reader.readexactly(content_length) if content_length else b""
        return method.upper(), target.split("?", 1)[0], body

    async def _route(self, method: str, path: str, body: bytes) -> "tuple[int, dict]":
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "queued": self.queue.depth,
                "inflight": self.queue.inflight,
                "draining": self.queue.closed,
            }
        if path == "/metrics" and method == "GET":
            return 200, {"metrics": self.metrics.snapshot()}
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path.startswith("/jobs/") and method == "GET":
            return self._job_status(path[len("/jobs/"):])
        if path.startswith("/results/") and method == "GET":
            return self._job_result(path[len("/results/"):])
        if path == "/shutdown" and method == "POST":
            return self._shutdown_request(body)
        if path in ("/jobs", "/shutdown") or path.startswith(("/jobs/", "/results/")):
            return 405, {"error": f"method {method} not allowed on {path}"}
        return 404, {"error": f"no such route: {method} {path}"}

    # -- route handlers ------------------------------------------------------

    def _submit(self, body: bytes) -> "tuple[int, dict]":
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            return 400, {"error": "request body is not valid JSON"}
        try:
            sim, priority = parse_job_payload(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        try:
            job = self.queue.submit(sim, priority)
        except QueueFull as exc:
            return 429, {"error": str(exc)}
        except ServiceClosed as exc:
            return 503, {"error": str(exc)}
        return (200 if job.cache_hit else 202), job.as_dict()

    def _job_status(self, job_id: str) -> "tuple[int, dict]":
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        return 200, job.as_dict()

    def _job_result(self, job_id: str) -> "tuple[int, dict]":
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        if job.state is JobState.FAILED:
            return 500, {"id": job.id, "state": job.state.value, "error": job.error}
        result = job.result
        if result is None:
            return 202, {"id": job.id, "state": job.state.value}
        return 200, {
            "id": job.id,
            "key": job.key,
            "state": job.state.value,
            "job": job.sim.meta(),
            "result": result.to_dict(),
        }

    def _shutdown_request(self, body: bytes) -> "tuple[int, dict]":
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            payload = {}
        drain = bool(payload.get("drain", True)) if isinstance(payload, dict) else True
        asyncio.get_running_loop().create_task(self.shutdown(drain=drain))
        return 202, {"status": "draining" if drain else "stopping"}


def _render_response(status: int, payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def serve(settings: "ServiceSettings | None" = None, *, quiet: bool = False) -> int:
    """Blocking entry point for ``repro serve``: run until shut down.

    Returns the process exit code. Ctrl-C drains gracefully.
    """

    async def _main() -> None:
        service = SimulationService(settings)
        host, port = await service.start()
        if not quiet:
            print(f"repro service listening on http://{host}:{port}", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            await service.shutdown(drain=True)
            raise
        if not quiet:
            print("repro service stopped", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
