"""The simulation service: a stdlib-only JSON-over-HTTP asyncio server.

One process hosts the whole serving stack — HTTP frontend, a pool of
``shards`` independent (priority queue, batching scheduler) pairs
partitioned by config fingerprint — in a single event loop; simulations
run off-loop via the harness runner's process pool. The API surface:

==========================  ==================================================
``POST /jobs``              submit a simulation; ``202`` + job status payload
                            (``200`` when answered from cache), ``400`` on a
                            bad request, ``429`` on backpressure or rate
                            limiting (with ``Retry-After``), ``503`` while
                            draining; honours W3C ``traceparent`` and
                            ``x-repro-client`` request headers
``GET /jobs/{id}``          job status (state, latencies, attempts, coalesced,
                            shard, trace id)
``GET /jobs/{id}/events``   the job's lifecycle event log as streamed JSON
                            lines (chunked); ``?follow=0`` dumps and closes
``GET /results/{id}``       ``200`` + full result once done, ``202`` while
                            pending, ``500`` once failed
``GET /healthz``            liveness + per-shard queue gauges + live SLO
                            evaluation
``GET /metrics``            the service's ``obs.CounterRegistry`` snapshot;
                            ``?format=prometheus`` serves text exposition
``GET /metrics/series``     ring-buffered time-series, bucketed server-side
                            (``?name=jobs.total_s&bucket=60``)
``GET /query``              attribute-filtered rows over the attached result
                            store (repeatable ``?where=``, ``columns``,
                            ``order_by``, ``limit``, ``at``); dataframe-shaped
``GET /query/buckets``      floor-aligned min/max/avg/p50/p99 buckets over one
                            metric series (the analytics alias of
                            ``/metrics/series``)
``GET /traces/{id}``        one distributed trace's span closure;
                            ``?format=perfetto`` serves Chrome-trace JSON
``POST /drain``             ``?shard=i`` quiesces one shard (in-flight work
                            completes; new jobs reroute or 503 per policy)
                            while the others keep serving
``POST /shutdown``          graceful drain of every shard in sequence
                            (``{"drain": false}`` aborts the queues instead)
==========================  ==================================================

Submission body: ``{"workload": "jacobi", "paradigm": "gps", "gpus": 4,
"link": "pcie6", "scale": 0.5, "iterations": 8, "priority": 0}`` — every
field but ``workload`` optional. Ops knobs come from ``REPRO_SERVICE_*``
environment variables via :meth:`ServiceSettings.from_env`.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection: close``,
JSON bodies only): the service fronts a trusted local/CI network, and
keeping it stdlib-only is a hard constraint of this repo.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import math
import os
from dataclasses import dataclass
from urllib.parse import parse_qs

from ..config import LINKS_BY_NAME
from ..harness.runner import SimJob
from ..obs.distributed import TraceStore, distributed_chrome_trace, parse_traceparent
from ..paradigms.registry import PARADIGMS
from ..workloads.registry import (
    EXTRA_WORKLOADS,
    is_known_workload,
    resolve_workload_name,
    workload_names,
)
from .metrics import ServiceMetrics
from .queue import Job, JobQueue, JobState, QueueFull, ServiceClosed
from .scheduler import BatchScheduler
from .sharding import RateLimiter, shard_for_key
from .slo import evaluate_slos, slos_from_env
from .store_sink import StoreSink
from .timeseries import DEFAULT_SERIES_SAMPLES

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request body the server will read, in bytes.
MAX_BODY_BYTES = 1 << 20


def _qlast(query: "dict[str, list[str]]", name: str, default: "str | None" = None):
    """Last value of a (multi-valued) query parameter, or ``default``."""
    values = query.get(name)
    return values[-1] if values else default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    return float(raw) if raw else default


def _env_weights(name: str) -> "tuple[tuple[str, float], ...]":
    """Client WFQ weights from a JSON object, e.g. ``{"sweeper": 4}``."""
    raw = os.environ.get(name, "")
    if not raw:
        return ()
    try:
        decoded = json.loads(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be a JSON object of client: weight") from exc
    if not isinstance(decoded, dict):
        raise ValueError(f"{name} must be a JSON object of client: weight")
    return tuple(sorted((str(k), float(v)) for k, v in decoded.items()))


@dataclass(frozen=True)
class ServiceSettings:
    """Tunable knobs of one service instance (see ``docs/SERVICE.md``)."""

    host: str = "127.0.0.1"
    port: int = 8787
    #: Scheduler shards: independent (queue, scheduler) pairs partitioned
    #: by config fingerprint. ``queue_depth`` applies **per shard**.
    shards: int = 1
    queue_depth: int = 256
    batch_size: int = 8
    max_wait_s: float = 0.05
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    max_workers: "int | None" = None
    trace: bool = True
    max_traces: int = 256
    series_samples: int = DEFAULT_SERIES_SAMPLES
    #: When set, completed jobs are committed to the result lakehouse at
    #: this directory (one append snapshot per batch) and ``GET /query``
    #: serves attribute-filtered reads over it; ``None`` disables both.
    store_dir: "str | None" = None
    #: Per-client token-bucket admission: sustained submissions/second per
    #: client id (``0`` disables rate limiting) and the burst allowance.
    rate_limit: float = 0.0
    rate_burst: float = 8.0
    #: What happens to a submission whose home shard is draining:
    #: ``"reroute"`` sends it to the next live shard, ``"reject"`` answers
    #: ``503`` until the shard is back.
    drain_policy: str = "reroute"
    #: WFQ weights by client id as ``((client, weight), ...)`` pairs
    #: (tuple-of-pairs keeps the settings dataclass hashable); unlisted
    #: clients weigh ``1.0``.
    client_weights: "tuple[tuple[str, float], ...]" = ()

    @classmethod
    def from_env(cls, **overrides) -> "ServiceSettings":
        """Settings from ``REPRO_SERVICE_*`` variables, then ``overrides``.

        Only overrides whose value is not ``None`` apply, so CLI flags can
        pass through unset options without clobbering the environment.
        """
        workers = os.environ.get("REPRO_SERVICE_MAX_WORKERS", "")
        values = {
            "host": os.environ.get("REPRO_SERVICE_HOST") or cls.host,
            "port": _env_int("REPRO_SERVICE_PORT", cls.port),
            "shards": _env_int("REPRO_SERVICE_SHARDS", cls.shards),
            "queue_depth": _env_int("REPRO_SERVICE_QUEUE_DEPTH", cls.queue_depth),
            "batch_size": _env_int("REPRO_SERVICE_BATCH_SIZE", cls.batch_size),
            "max_wait_s": _env_float("REPRO_SERVICE_MAX_WAIT_MS", cls.max_wait_s * 1000.0)
            / 1000.0,
            "max_retries": _env_int("REPRO_SERVICE_MAX_RETRIES", cls.max_retries),
            "retry_backoff_s": _env_float(
                "REPRO_SERVICE_RETRY_BACKOFF_MS", cls.retry_backoff_s * 1000.0
            )
            / 1000.0,
            "max_workers": int(workers) if workers else None,
            "trace": os.environ.get("REPRO_SERVICE_TRACE", "1") not in ("0", "false"),
            "max_traces": _env_int("REPRO_SERVICE_MAX_TRACES", cls.max_traces),
            "series_samples": _env_int("REPRO_SERVICE_SERIES_SAMPLES", cls.series_samples),
            "store_dir": os.environ.get("REPRO_SERVICE_STORE_DIR") or None,
            "rate_limit": _env_float("REPRO_SERVICE_RATE_LIMIT", cls.rate_limit),
            "rate_burst": _env_float("REPRO_SERVICE_RATE_BURST", cls.rate_burst),
            "drain_policy": os.environ.get("REPRO_SERVICE_DRAIN_POLICY")
            or cls.drain_policy,
            "client_weights": _env_weights("REPRO_SERVICE_CLIENT_WEIGHTS"),
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        weights = values.get("client_weights")
        if isinstance(weights, dict):  # allow dict overrides from the CLI/tests
            values["client_weights"] = tuple(sorted(weights.items()))
        return cls(**values)


def parse_job_payload(payload) -> "tuple[SimJob, int]":
    """Validate a ``POST /jobs`` body into ``(SimJob, priority)``.

    Raises ``ValueError`` with a client-presentable message on any problem;
    the HTTP layer maps that to ``400``.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    known = {"workload", "paradigm", "gpus", "link", "scale", "iterations", "priority"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(unknown)}")

    workload = resolve_workload_name(payload.get("workload", ""))
    if not is_known_workload(workload):
        valid = workload_names() + list(EXTRA_WORKLOADS) + ["fuzz/<seed>"]
        raise ValueError(f"unknown workload {payload.get('workload')!r}; one of {valid}")
    paradigm = payload.get("paradigm", "gps")
    if paradigm not in PARADIGMS:
        raise ValueError(f"unknown paradigm {paradigm!r}; one of {sorted(PARADIGMS)}")
    link = payload.get("link", "pcie6")
    if link not in LINKS_BY_NAME:
        raise ValueError(f"unknown link {link!r}; one of {sorted(LINKS_BY_NAME)}")

    def _int(name: str, default: int, minimum: int) -> int:
        value = payload.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise ValueError(f"{name} must be an integer >= {minimum}")
        return value

    gpus = _int("gpus", 4, 1)
    iterations = _int("iterations", 8, 1)
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ValueError("priority must be an integer")
    scale = payload.get("scale", 0.5)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise ValueError("scale must be a positive number")

    sim = SimJob(workload, paradigm, gpus, link, float(scale), iterations)
    return sim, priority


class _Shard:
    """One scheduler shard: an independent (queue, scheduler) pair."""

    __slots__ = ("index", "queue", "scheduler", "draining")

    def __init__(self, index: int, queue: JobQueue, scheduler: BatchScheduler) -> None:
        self.index = index
        self.queue = queue
        self.scheduler = scheduler
        #: Set by ``POST /drain``: the shard finishes its backlog but the
        #: router stops sending it new work (reroute or 503 per policy).
        self.draining = False


class SimulationService:
    """Shard pool (queues + schedulers) + HTTP frontend on one event loop."""

    def __init__(
        self,
        settings: "ServiceSettings | None" = None,
        registry=None,
    ) -> None:
        self.settings = settings if settings is not None else ServiceSettings.from_env()
        if self.settings.shards < 1:
            raise ValueError("shard count must be at least 1")
        if self.settings.drain_policy not in ("reroute", "reject"):
            raise ValueError("drain_policy must be 'reroute' or 'reject'")
        self.metrics = ServiceMetrics(registry, series_samples=self.settings.series_samples)
        self.tracer = (
            TraceStore(max_traces=self.settings.max_traces) if self.settings.trace else None
        )
        self.slos = slos_from_env()
        self.limiter = (
            RateLimiter(self.settings.rate_limit, self.settings.rate_burst)
            if self.settings.rate_limit > 0
            else None
        )
        self._weights = dict(self.settings.client_weights)
        self.store_sink = (
            StoreSink(self.settings.store_dir, self.metrics)
            if self.settings.store_dir
            else None
        )
        # One (queue, scheduler) pair per shard, sharing the job-id counter
        # (ids stay globally unique) and, through per-shard metric views,
        # one metrics surface. ``queue_depth`` bounds each shard's queue.
        ids = itertools.count(1)
        self.shards: "list[_Shard]" = []
        for index in range(self.settings.shards):
            view = self.metrics.shard_view(index, self.settings.shards)
            queue = JobQueue(
                view,
                max_depth=self.settings.queue_depth,
                tracer=self.tracer,
                shard=index,
                ids=ids,
            )
            scheduler = BatchScheduler(
                queue,
                view,
                batch_size=self.settings.batch_size,
                max_wait_s=self.settings.max_wait_s,
                max_retries=self.settings.max_retries,
                retry_backoff_s=self.settings.retry_backoff_s,
                max_workers=self.settings.max_workers,
                sink=self.store_sink,
                name=f"shard{index}" if self.settings.shards > 1 else None,
            )
            self.shards.append(_Shard(index, queue, scheduler))
        #: Shard 0's pair, kept as attributes for single-shard callers and
        #: backward compatibility (the historical single-scheduler layout).
        self.queue = self.shards[0].queue
        self.scheduler = self.shards[0].scheduler
        self._query_store = None  # lazily opened ResultStore for GET /query
        self._server: "asyncio.Server | None" = None
        self._stopped: "asyncio.Event | None" = None
        self.host = self.settings.host
        self.port = self.settings.port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Bind the socket and start the scheduler; returns ``(host, port)``.

        ``port=0`` binds an ephemeral port; the resolved one is stored on
        ``self.port``.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._stopped = asyncio.Event()
        for shard in self.shards:
            shard.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work, settle (or abort) the backlog, close up.

        Every shard's queue closes first (no shard can pick up rerouted
        work mid-shutdown), then the shards drain **in sequence** — the
        rolling-drain story applied to the whole pool.
        """
        if self._server is None:
            return
        for shard in self.shards:
            shard.draining = True
            shard.queue.close()
        for shard in self.shards:
            await shard.scheduler.stop(drain=drain)
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        assert self._stopped is not None
        self._stopped.set()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, headers, body = request
            response = await self._route(method, path, query, headers, body)
            # Handlers return (status, payload) or (status, payload, headers).
            status, payload = response[0], response[1]
            extra_headers = response[2] if len(response) > 2 else None
            if isinstance(payload, _EventStream):
                await self._stream_events(writer, payload)
            elif isinstance(payload, _TextResponse):
                writer.write(_render_text(status, payload))
                await writer.drain()
            else:
                writer.write(_render_response(status, payload, extra_headers))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, dict, dict, bytes] | None":
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            return "GET", "/__malformed__", {}, {}, b""
        headers: "dict[str, str]" = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = min(int(headers.get("content-length", "0")), MAX_BODY_BYTES)
        except ValueError:
            content_length = 0
        body = await reader.readexactly(content_length) if content_length else b""
        path, _, raw_query = target.partition("?")
        # Multi-valued: ``GET /query?where=a&where=b`` keeps every clause.
        query = parse_qs(raw_query)
        return method.upper(), path, query, headers, body

    async def _route(
        self, method: str, path: str, query: dict, headers: dict, body: bytes
    ) -> "tuple[int, object] | tuple[int, object, dict]":
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "queued": sum(s.queue.depth for s in self.shards),
                "inflight": sum(s.queue.inflight for s in self.shards),
                "draining": all(s.queue.closed for s in self.shards),
                "shards": [
                    {
                        "shard": s.index,
                        "queued": s.queue.depth,
                        "inflight": s.queue.inflight,
                        "draining": s.draining or s.queue.closed,
                    }
                    for s in self.shards
                ],
                "trace": self.tracer is not None,
                "slo": evaluate_slos(self.slos, self.metrics.series),
            }
        if path == "/metrics" and method == "GET":
            if _qlast(query, "format") == "prometheus":
                return 200, _TextResponse(
                    self.metrics.prometheus(), "text/plain; version=0.0.4; charset=utf-8"
                )
            return 200, {"metrics": self.metrics.snapshot()}
        if path == "/metrics/series" and method == "GET":
            return self._series(query)
        if path == "/query" and method == "GET":
            return await self._query(query)
        if path == "/query/buckets" and method == "GET":
            # The analytics alias: identical bucketing, under the query
            # surface so the QueryClient speaks to one prefix.
            return self._series(query)
        if path == "/jobs" and method == "POST":
            return self._submit(headers, body)
        if path.startswith("/jobs/") and path.endswith("/events") and method == "GET":
            return self._job_events(path[len("/jobs/"):-len("/events")], query)
        if path.startswith("/jobs/") and method == "GET":
            return self._job_status(path[len("/jobs/"):])
        if path.startswith("/results/") and method == "GET":
            return self._job_result(path[len("/results/"):])
        if path.startswith("/traces/") and method == "GET":
            return self._trace(path[len("/traces/"):], query)
        if path == "/drain" and method == "POST":
            return self._drain_request(query)
        if path == "/shutdown" and method == "POST":
            return self._shutdown_request(body)
        if path in (
            "/jobs",
            "/shutdown",
            "/drain",
            "/metrics/series",
            "/query",
            "/query/buckets",
        ) or path.startswith(("/jobs/", "/results/", "/traces/")):
            return 405, {"error": f"method {method} not allowed on {path}"}
        return 404, {"error": f"no such route: {method} {path}"}

    # -- route handlers ------------------------------------------------------

    def _shard_for(self, key: str) -> "_Shard | None":
        """Route a fingerprint to its home shard, honouring the drain policy.

        Returns ``None`` when the submission must be refused (home shard
        draining under ``reject``, or every shard draining).
        """
        home = shard_for_key(key, len(self.shards))
        shard = self.shards[home]
        if not shard.draining:
            return shard
        if self.settings.drain_policy == "reject":
            return None
        for offset in range(1, len(self.shards)):
            candidate = self.shards[(home + offset) % len(self.shards)]
            if not candidate.draining:
                return candidate
        return None

    def _submit(
        self, headers: dict, body: bytes
    ) -> "tuple[int, dict] | tuple[int, dict, dict]":
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            return 400, {"error": "request body is not valid JSON"}
        try:
            sim, priority = parse_job_payload(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        client = headers.get("x-repro-client", "")
        if self.limiter is not None:
            retry_after = self.limiter.check(client)
            if retry_after > 0:
                self.metrics.rate_limit_throttled()
                label = client or "anonymous"
                return (
                    429,
                    {
                        "error": f"client {label!r} exceeded "
                        f"{self.settings.rate_limit:g} jobs/s; retry later",
                        "retry_after_s": round(retry_after, 3),
                    },
                    {"Retry-After": str(max(1, math.ceil(retry_after)))},
                )
            self.metrics.rate_limit_allowed()
        trace = parse_traceparent(headers.get("traceparent"))
        shard = self._shard_for(sim.key())
        if shard is None:
            return 503, {"error": "the target shard is draining; retry later"}
        try:
            job = shard.queue.submit(
                sim,
                priority,
                trace=trace,
                client=client,
                weight=self._weights.get(client, 1.0),
            )
        except QueueFull as exc:
            return 429, {"error": str(exc)}, {"Retry-After": "1"}
        except ServiceClosed as exc:
            return 503, {"error": str(exc)}
        return (200 if job.cache_hit else 202), job.as_dict()

    def _drain_request(self, query: dict) -> "tuple[int, dict]":
        """``POST /drain?shard=i``: quiesce one shard, keep the rest serving."""
        raw = _qlast(query, "shard")
        if raw is None:
            return 400, {"error": "missing ?shard=<index> query parameter"}
        try:
            index = int(raw)
        except ValueError:
            return 400, {"error": f"shard index must be an integer, got {raw!r}"}
        if not 0 <= index < len(self.shards):
            return 404, {
                "error": f"no shard {index}; this service has {len(self.shards)}"
            }
        shard = self.shards[index]
        if not shard.draining:
            shard.draining = True
            shard.queue.close()
            # Drain in the background: in-flight and queued work completes,
            # then the shard's scheduler task exits. The 202 returns now.
            asyncio.get_running_loop().create_task(
                shard.scheduler.stop(drain=True),
                name=f"repro-service-drain-shard{index}",
            )
        return 202, {
            "status": "draining",
            "shard": index,
            "policy": self.settings.drain_policy,
            "live_shards": [s.index for s in self.shards if not s.draining],
        }

    def _open_query_store(self):
        if self._query_store is None and self.settings.store_dir:
            from ..store import ResultStore

            # A separate read instance from the sink's: queries must never
            # contend with commit-side state. Snapshot discovery re-lists
            # the log directory, so sink commits are visible immediately.
            self._query_store = ResultStore.open(self.settings.store_dir)
        return self._query_store

    async def _query(self, query: dict) -> "tuple[int, dict]":
        """``GET /query``: attribute-filtered rows over the attached store."""
        from ..store import StoreError
        from ..store.query import run_query

        store = self._open_query_store()
        if store is None:
            return 404, {
                "error": "no result store attached; start the service with "
                "REPRO_SERVICE_STORE_DIR (or repro serve --store)"
            }
        where = query.get("where", [])
        columns = _qlast(query, "columns")
        order_by = _qlast(query, "order_by")
        raw_limit = _qlast(query, "limit")
        at: "int | str | None" = _qlast(query, "at")
        try:
            limit = int(raw_limit) if raw_limit is not None else None
        except ValueError:
            return 400, {"error": f"limit must be an integer, got {raw_limit!r}"}
        if isinstance(at, str) and at.lstrip("-").isdigit():
            at = int(at)

        def _run() -> "tuple[int, dict]":
            try:
                reader = store.at(at)
                result = run_query(
                    reader,
                    where=where,
                    columns=columns.split(",") if columns else None,
                    order_by=order_by,
                    limit=limit,
                )
            except StoreError as exc:
                return 400, {"error": str(exc)}
            return 200, {
                "column_names": list(result.column_names()),
                "columns": result.columns(),
                "count": len(result),
                "rows": result.rows(),
                "snapshot": reader.snapshot_id,
            }

        # Partition scans are blocking disk I/O: run off-loop.
        return await asyncio.to_thread(_run)

    def _series(self, query: dict) -> "tuple[int, dict]":
        series = self.metrics.series
        name = _qlast(query, "name")
        if not name:
            return 200, {"series": series.names()}
        if name not in series.names():
            return 404, {"error": f"unknown series {name!r}", "series": series.names()}
        try:
            bucket_s = float(_qlast(query, "bucket", "60"))
            start = float(_qlast(query, "start")) if "start" in query else None
            end = float(_qlast(query, "end")) if "end" in query else None
            buckets = series.bucketed(name, bucket_s, start, end)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        return 200, {"name": name, "bucket_s": bucket_s, "buckets": buckets}

    def _job_events(self, job_id: str, query: dict) -> "tuple[int, object]":
        job = self._find_job(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        follow = _qlast(query, "follow", "1") not in ("0", "false")
        return 200, _EventStream(job, follow)

    def _trace(self, trace_id: str, query: dict) -> "tuple[int, dict]":
        if self.tracer is None:
            return 404, {"error": "tracing is disabled (REPRO_SERVICE_TRACE=0)"}
        spans = self.tracer.closure(trace_id)
        if not spans:
            return 404, {"error": f"unknown trace id {trace_id!r}"}
        if _qlast(query, "format") == "perfetto":
            return 200, distributed_chrome_trace(trace_id, spans)
        return 200, {
            "trace_id": trace_id,
            "spans": [span.to_dict() for span in sorted(spans, key=lambda s: (s.start, s.span_id))],
        }

    async def _stream_events(self, writer: asyncio.StreamWriter, stream: "_EventStream") -> None:
        """Serve one job's event log as chunked JSON lines, following live."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        job = stream.job
        sent = 0
        while True:
            while sent < len(job.events):
                line = (json.dumps(job.events[sent], sort_keys=True) + "\n").encode("utf-8")
                writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
                sent += 1
            await writer.drain()
            if not stream.follow or (job.terminal and sent >= len(job.events)):
                break
            await job.wait_events(sent)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    def _find_job(self, job_id: str) -> "Job | None":
        """Look one job id up across every shard (ids are pool-unique)."""
        for shard in self.shards:
            job = shard.queue.get(job_id)
            if job is not None:
                return job
        return None

    def _job_status(self, job_id: str) -> "tuple[int, dict]":
        job = self._find_job(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        return 200, job.as_dict()

    def _job_result(self, job_id: str) -> "tuple[int, dict]":
        job = self._find_job(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        if job.state is JobState.FAILED:
            return 500, {"id": job.id, "state": job.state.value, "error": job.error}
        result = job.result
        if result is None:
            return 202, {"id": job.id, "state": job.state.value}
        return 200, {
            "id": job.id,
            "key": job.key,
            "state": job.state.value,
            "job": job.sim.meta(),
            "result": result.to_dict(),
        }

    def _shutdown_request(self, body: bytes) -> "tuple[int, dict]":
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            payload = {}
        drain = bool(payload.get("drain", True)) if isinstance(payload, dict) else True
        asyncio.get_running_loop().create_task(self.shutdown(drain=drain))
        return 202, {"status": "draining" if drain else "stopping"}


class _TextResponse:
    """Marker: serve a non-JSON body (the Prometheus scrape)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


class _EventStream:
    """Marker: stream this job's event log instead of one JSON body."""

    __slots__ = ("job", "follow")

    def __init__(self, job: Job, follow: bool) -> None:
        self.job = job
        self.follow = follow


def _render_text(status: int, payload: _TextResponse) -> bytes:
    body = payload.text.encode("utf-8")
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {payload.content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _render_response(status: int, payload, extra_headers: "dict | None" = None) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    extras = "".join(
        f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extras}"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def serve(settings: "ServiceSettings | None" = None, *, quiet: bool = False) -> int:
    """Blocking entry point for ``repro serve``: run until shut down.

    Returns the process exit code. Ctrl-C drains gracefully.
    """

    async def _main() -> None:
        service = SimulationService(settings)
        host, port = await service.start()
        if not quiet:
            print(f"repro service listening on http://{host}:{port}", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            await service.shutdown(drain=True)
            raise
        if not quiet:
            print("repro service stopped", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
