"""The simulation service: a stdlib-only JSON-over-HTTP asyncio server.

One process hosts the whole serving stack — HTTP frontend, priority queue,
batching scheduler — in a single event loop; simulations run off-loop via
the harness runner's process pool. The API surface:

==========================  ==================================================
``POST /jobs``              submit a simulation; ``202`` + job status payload
                            (``200`` when answered from cache), ``400`` on a
                            bad request, ``429`` on backpressure, ``503``
                            while draining; honours a W3C ``traceparent``
                            request header
``GET /jobs/{id}``          job status (state, latencies, attempts, coalesced,
                            trace id)
``GET /jobs/{id}/events``   the job's lifecycle event log as streamed JSON
                            lines (chunked); ``?follow=0`` dumps and closes
``GET /results/{id}``       ``200`` + full result once done, ``202`` while
                            pending, ``500`` once failed
``GET /healthz``            liveness + queue gauges + live SLO evaluation
``GET /metrics``            the service's ``obs.CounterRegistry`` snapshot;
                            ``?format=prometheus`` serves text exposition
``GET /metrics/series``     ring-buffered time-series, bucketed server-side
                            (``?name=jobs.total_s&bucket=60``)
``GET /traces/{id}``        one distributed trace's span closure;
                            ``?format=perfetto`` serves Chrome-trace JSON
``POST /shutdown``          graceful drain (``{"drain": false}`` aborts the
                            queue instead)
==========================  ==================================================

Submission body: ``{"workload": "jacobi", "paradigm": "gps", "gpus": 4,
"link": "pcie6", "scale": 0.5, "iterations": 8, "priority": 0}`` — every
field but ``workload`` optional. Ops knobs come from ``REPRO_SERVICE_*``
environment variables via :meth:`ServiceSettings.from_env`.

The HTTP layer is deliberately minimal (HTTP/1.1, ``Connection: close``,
JSON bodies only): the service fronts a trusted local/CI network, and
keeping it stdlib-only is a hard constraint of this repo.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass
from urllib.parse import parse_qs

from ..config import LINKS_BY_NAME
from ..harness.runner import SimJob
from ..obs.distributed import TraceStore, distributed_chrome_trace, parse_traceparent
from ..paradigms.registry import PARADIGMS
from ..workloads.registry import (
    EXTRA_WORKLOADS,
    is_known_workload,
    resolve_workload_name,
    workload_names,
)
from .metrics import ServiceMetrics
from .queue import Job, JobQueue, JobState, QueueFull, ServiceClosed
from .scheduler import BatchScheduler
from .slo import evaluate_slos, slos_from_env
from .store_sink import StoreSink
from .timeseries import DEFAULT_SERIES_SAMPLES

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Largest request body the server will read, in bytes.
MAX_BODY_BYTES = 1 << 20


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    return float(raw) if raw else default


@dataclass(frozen=True)
class ServiceSettings:
    """Tunable knobs of one service instance (see ``docs/SERVICE.md``)."""

    host: str = "127.0.0.1"
    port: int = 8787
    queue_depth: int = 256
    batch_size: int = 8
    max_wait_s: float = 0.05
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    max_workers: "int | None" = None
    trace: bool = True
    max_traces: int = 256
    series_samples: int = DEFAULT_SERIES_SAMPLES
    #: When set, completed jobs are committed to the result lakehouse at
    #: this directory (one append snapshot per batch); ``None`` disables.
    store_dir: "str | None" = None

    @classmethod
    def from_env(cls, **overrides) -> "ServiceSettings":
        """Settings from ``REPRO_SERVICE_*`` variables, then ``overrides``.

        Only overrides whose value is not ``None`` apply, so CLI flags can
        pass through unset options without clobbering the environment.
        """
        workers = os.environ.get("REPRO_SERVICE_MAX_WORKERS", "")
        values = {
            "host": os.environ.get("REPRO_SERVICE_HOST") or cls.host,
            "port": _env_int("REPRO_SERVICE_PORT", cls.port),
            "queue_depth": _env_int("REPRO_SERVICE_QUEUE_DEPTH", cls.queue_depth),
            "batch_size": _env_int("REPRO_SERVICE_BATCH_SIZE", cls.batch_size),
            "max_wait_s": _env_float("REPRO_SERVICE_MAX_WAIT_MS", cls.max_wait_s * 1000.0)
            / 1000.0,
            "max_retries": _env_int("REPRO_SERVICE_MAX_RETRIES", cls.max_retries),
            "retry_backoff_s": _env_float(
                "REPRO_SERVICE_RETRY_BACKOFF_MS", cls.retry_backoff_s * 1000.0
            )
            / 1000.0,
            "max_workers": int(workers) if workers else None,
            "trace": os.environ.get("REPRO_SERVICE_TRACE", "1") not in ("0", "false"),
            "max_traces": _env_int("REPRO_SERVICE_MAX_TRACES", cls.max_traces),
            "series_samples": _env_int("REPRO_SERVICE_SERIES_SAMPLES", cls.series_samples),
            "store_dir": os.environ.get("REPRO_SERVICE_STORE_DIR") or None,
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)


def parse_job_payload(payload) -> "tuple[SimJob, int]":
    """Validate a ``POST /jobs`` body into ``(SimJob, priority)``.

    Raises ``ValueError`` with a client-presentable message on any problem;
    the HTTP layer maps that to ``400``.
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    known = {"workload", "paradigm", "gpus", "link", "scale", "iterations", "priority"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ValueError(f"unknown fields: {', '.join(unknown)}")

    workload = resolve_workload_name(payload.get("workload", ""))
    if not is_known_workload(workload):
        valid = workload_names() + list(EXTRA_WORKLOADS) + ["fuzz/<seed>"]
        raise ValueError(f"unknown workload {payload.get('workload')!r}; one of {valid}")
    paradigm = payload.get("paradigm", "gps")
    if paradigm not in PARADIGMS:
        raise ValueError(f"unknown paradigm {paradigm!r}; one of {sorted(PARADIGMS)}")
    link = payload.get("link", "pcie6")
    if link not in LINKS_BY_NAME:
        raise ValueError(f"unknown link {link!r}; one of {sorted(LINKS_BY_NAME)}")

    def _int(name: str, default: int, minimum: int) -> int:
        value = payload.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise ValueError(f"{name} must be an integer >= {minimum}")
        return value

    gpus = _int("gpus", 4, 1)
    iterations = _int("iterations", 8, 1)
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ValueError("priority must be an integer")
    scale = payload.get("scale", 0.5)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) or scale <= 0:
        raise ValueError("scale must be a positive number")

    sim = SimJob(workload, paradigm, gpus, link, float(scale), iterations)
    return sim, priority


class SimulationService:
    """Queue + scheduler + HTTP frontend, wired to one event loop."""

    def __init__(
        self,
        settings: "ServiceSettings | None" = None,
        registry=None,
    ) -> None:
        self.settings = settings if settings is not None else ServiceSettings.from_env()
        self.metrics = ServiceMetrics(registry, series_samples=self.settings.series_samples)
        self.tracer = (
            TraceStore(max_traces=self.settings.max_traces) if self.settings.trace else None
        )
        self.slos = slos_from_env()
        self.queue = JobQueue(
            self.metrics, max_depth=self.settings.queue_depth, tracer=self.tracer
        )
        self.store_sink = (
            StoreSink(self.settings.store_dir, self.metrics)
            if self.settings.store_dir
            else None
        )
        self.scheduler = BatchScheduler(
            self.queue,
            self.metrics,
            batch_size=self.settings.batch_size,
            max_wait_s=self.settings.max_wait_s,
            max_retries=self.settings.max_retries,
            retry_backoff_s=self.settings.retry_backoff_s,
            max_workers=self.settings.max_workers,
            sink=self.store_sink,
        )
        self._server: "asyncio.Server | None" = None
        self._stopped: "asyncio.Event | None" = None
        self.host = self.settings.host
        self.port = self.settings.port

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "tuple[str, int]":
        """Bind the socket and start the scheduler; returns ``(host, port)``.

        ``port=0`` binds an ephemeral port; the resolved one is stored on
        ``self.port``.
        """
        if self._server is not None:
            raise RuntimeError("service already started")
        self._stopped = asyncio.Event()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.settings.host, self.settings.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work, settle (or abort) the backlog, close up."""
        if self._server is None:
            return
        self.queue.close()
        await self.scheduler.stop(drain=drain)
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        assert self._stopped is not None
        self._stopped.set()

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, headers, body = request
            status, payload = await self._route(method, path, query, headers, body)
            if isinstance(payload, _EventStream):
                await self._stream_events(writer, payload)
            elif isinstance(payload, _TextResponse):
                writer.write(_render_text(status, payload))
                await writer.drain()
            else:
                writer.write(_render_response(status, payload))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> "tuple[str, str, dict, dict, bytes] | None":
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            return "GET", "/__malformed__", {}, {}, b""
        headers: "dict[str, str]" = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            content_length = min(int(headers.get("content-length", "0")), MAX_BODY_BYTES)
        except ValueError:
            content_length = 0
        body = await reader.readexactly(content_length) if content_length else b""
        path, _, raw_query = target.partition("?")
        query = {name: values[-1] for name, values in parse_qs(raw_query).items()}
        return method.upper(), path, query, headers, body

    async def _route(
        self, method: str, path: str, query: dict, headers: dict, body: bytes
    ) -> "tuple[int, object]":
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "queued": self.queue.depth,
                "inflight": self.queue.inflight,
                "draining": self.queue.closed,
                "trace": self.tracer is not None,
                "slo": evaluate_slos(self.slos, self.metrics.series),
            }
        if path == "/metrics" and method == "GET":
            if query.get("format") == "prometheus":
                return 200, _TextResponse(
                    self.metrics.prometheus(), "text/plain; version=0.0.4; charset=utf-8"
                )
            return 200, {"metrics": self.metrics.snapshot()}
        if path == "/metrics/series" and method == "GET":
            return self._series(query)
        if path == "/jobs" and method == "POST":
            return self._submit(headers, body)
        if path.startswith("/jobs/") and path.endswith("/events") and method == "GET":
            return self._job_events(path[len("/jobs/"):-len("/events")], query)
        if path.startswith("/jobs/") and method == "GET":
            return self._job_status(path[len("/jobs/"):])
        if path.startswith("/results/") and method == "GET":
            return self._job_result(path[len("/results/"):])
        if path.startswith("/traces/") and method == "GET":
            return self._trace(path[len("/traces/"):], query)
        if path == "/shutdown" and method == "POST":
            return self._shutdown_request(body)
        if path in ("/jobs", "/shutdown", "/metrics/series") or path.startswith(
            ("/jobs/", "/results/", "/traces/")
        ):
            return 405, {"error": f"method {method} not allowed on {path}"}
        return 404, {"error": f"no such route: {method} {path}"}

    # -- route handlers ------------------------------------------------------

    def _submit(self, headers: dict, body: bytes) -> "tuple[int, dict]":
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            return 400, {"error": "request body is not valid JSON"}
        try:
            sim, priority = parse_job_payload(payload)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        trace = parse_traceparent(headers.get("traceparent"))
        try:
            job = self.queue.submit(sim, priority, trace=trace)
        except QueueFull as exc:
            return 429, {"error": str(exc)}
        except ServiceClosed as exc:
            return 503, {"error": str(exc)}
        return (200 if job.cache_hit else 202), job.as_dict()

    def _series(self, query: dict) -> "tuple[int, dict]":
        series = self.metrics.series
        name = query.get("name")
        if not name:
            return 200, {"series": series.names()}
        if name not in series.names():
            return 404, {"error": f"unknown series {name!r}", "series": series.names()}
        try:
            bucket_s = float(query.get("bucket", "60"))
            start = float(query["start"]) if "start" in query else None
            end = float(query["end"]) if "end" in query else None
            buckets = series.bucketed(name, bucket_s, start, end)
        except ValueError as exc:
            return 400, {"error": str(exc)}
        return 200, {"name": name, "bucket_s": bucket_s, "buckets": buckets}

    def _job_events(self, job_id: str, query: dict) -> "tuple[int, object]":
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        follow = query.get("follow", "1") not in ("0", "false")
        return 200, _EventStream(job, follow)

    def _trace(self, trace_id: str, query: dict) -> "tuple[int, dict]":
        if self.tracer is None:
            return 404, {"error": "tracing is disabled (REPRO_SERVICE_TRACE=0)"}
        spans = self.tracer.closure(trace_id)
        if not spans:
            return 404, {"error": f"unknown trace id {trace_id!r}"}
        if query.get("format") == "perfetto":
            return 200, distributed_chrome_trace(trace_id, spans)
        return 200, {
            "trace_id": trace_id,
            "spans": [span.to_dict() for span in sorted(spans, key=lambda s: (s.start, s.span_id))],
        }

    async def _stream_events(self, writer: asyncio.StreamWriter, stream: "_EventStream") -> None:
        """Serve one job's event log as chunked JSON lines, following live."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        job = stream.job
        sent = 0
        while True:
            while sent < len(job.events):
                line = (json.dumps(job.events[sent], sort_keys=True) + "\n").encode("utf-8")
                writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
                sent += 1
            await writer.drain()
            if not stream.follow or (job.terminal and sent >= len(job.events)):
                break
            await job.wait_events(sent)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    def _job_status(self, job_id: str) -> "tuple[int, dict]":
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        return 200, job.as_dict()

    def _job_result(self, job_id: str) -> "tuple[int, dict]":
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job id {job_id!r}"}
        if job.state is JobState.FAILED:
            return 500, {"id": job.id, "state": job.state.value, "error": job.error}
        result = job.result
        if result is None:
            return 202, {"id": job.id, "state": job.state.value}
        return 200, {
            "id": job.id,
            "key": job.key,
            "state": job.state.value,
            "job": job.sim.meta(),
            "result": result.to_dict(),
        }

    def _shutdown_request(self, body: bytes) -> "tuple[int, dict]":
        try:
            payload = json.loads(body or b"{}")
        except ValueError:
            payload = {}
        drain = bool(payload.get("drain", True)) if isinstance(payload, dict) else True
        asyncio.get_running_loop().create_task(self.shutdown(drain=drain))
        return 202, {"status": "draining" if drain else "stopping"}


class _TextResponse:
    """Marker: serve a non-JSON body (the Prometheus scrape)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


class _EventStream:
    """Marker: stream this job's event log instead of one JSON body."""

    __slots__ = ("job", "follow")

    def __init__(self, job: Job, follow: bool) -> None:
        self.job = job
        self.follow = follow


def _render_text(status: int, payload: _TextResponse) -> bytes:
    body = payload.text.encode("utf-8")
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {payload.content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _render_response(status: int, payload) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def serve(settings: "ServiceSettings | None" = None, *, quiet: bool = False) -> int:
    """Blocking entry point for ``repro serve``: run until shut down.

    Returns the process exit code. Ctrl-C drains gracefully.
    """

    async def _main() -> None:
        service = SimulationService(settings)
        host, port = await service.start()
        if not quiet:
            print(f"repro service listening on http://{host}:{port}", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            await service.shutdown(drain=True)
            raise
        if not quiet:
            print("repro service stopped", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0
