"""Service-level metrics, published through the obs counter registry.

Everything the service counts lives under the ``service.`` scope of one
:class:`repro.obs.CounterRegistry`, so ``GET /metrics`` is a plain registry
snapshot and the naming convention (dot-separated ``component.metric``)
matches the hardware counters the simulator already exports:

* ``service.queue.*`` — submission outcomes (accepted / coalesced /
  cache_hits / rejected) plus live ``depth`` and ``inflight`` gauges;
* ``service.jobs.*`` — completion outcomes (completed / failed / retried);
* ``service.scheduler.*`` — batch fan-out accounting;
* ``service.latency.*`` — wait (queue) and run (simulate) histograms;
* ``service.runner.*`` — a lazy provider bridging the harness runner's
  :class:`~repro.harness.runner.CacheStats` /
  :class:`~repro.harness.runner.FleetStats` (cache hit ratio, jobs
  computed) into the same snapshot.

Counters are created eagerly so the ``/metrics`` payload exposes a stable
key set from the first scrape, before any job has been submitted.

Two export shapes share the one registry: the JSON snapshot
(:meth:`ServiceMetrics.snapshot`, ``GET /metrics``) and Prometheus text
exposition (:meth:`ServiceMetrics.prometheus`,
``GET /metrics?format=prometheus``) with full histogram families. Alongside
the registry, a :class:`~repro.service.timeseries.SeriesStore` records
*when* things happened (``jobs.wait_s`` / ``jobs.run_s`` / ``jobs.total_s``
latency samples, ``jobs.ok`` success bits, ``queue.depth`` snapshots) for
``GET /metrics/series`` bucketing and SLO evaluation.
"""

from __future__ import annotations

from ..harness.runner import cache_stats, fleet_stats
from ..obs import CounterRegistry, prometheus_text
from ..obs.registry import Number
from .timeseries import DEFAULT_SERIES_SAMPLES, SeriesStore

#: Latency bucket upper bounds, in seconds (1 ms .. 1 min).
LATENCY_BUCKETS_S = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0)

#: Counter names created eagerly under ``service.`` at startup.
_COUNTERS = (
    "queue.submitted",
    "queue.accepted",
    "queue.coalesced",
    "queue.cache_hits",
    "queue.rejected",
    "jobs.completed",
    "jobs.failed",
    "jobs.retried",
    "scheduler.batches",
    "scheduler.batched_jobs",
    "ratelimit.allowed",
    "ratelimit.throttled",
    "trace.spans_attached",
    "trace.evicted_spans",
    "store.persisted",
    "store.errors",
)

#: The subset of :data:`_COUNTERS` mirrored per shard (``service.shard{i}.*``)
#: by :meth:`ServiceMetrics.shard_view`. Trace/store/ratelimit counters stay
#: global: span attachment and lakehouse commits are service-wide concerns,
#: and admission control happens before a submission is routed to a shard.
_SHARD_COUNTERS = (
    "queue.submitted",
    "queue.accepted",
    "queue.coalesced",
    "queue.cache_hits",
    "queue.rejected",
    "jobs.completed",
    "jobs.failed",
    "jobs.retried",
    "scheduler.batches",
    "scheduler.batched_jobs",
)


def _runner_bridge() -> "dict[str, Number]":
    """Snapshot of the harness runner's cache/fleet counters."""
    cache = cache_stats()
    fleet = fleet_stats()
    return {
        "cache.hit_rate": cache.hit_rate,
        "cache.hits": cache.hits,
        "cache.lookups": cache.lookups,
        "fleet.jobs_computed": fleet.jobs_computed,
        "fleet.jobs_cached": fleet.jobs_cached,
        "fleet.jobs_failed": fleet.jobs_failed,
        "fleet.wall_clock_s": fleet.wall_clock,
    }


class ServiceMetrics:
    """The service's counter/gauge/histogram surface over one registry."""

    def __init__(
        self,
        registry: "CounterRegistry | None" = None,
        series_samples: int = DEFAULT_SERIES_SAMPLES,
    ) -> None:
        self.registry = registry if registry is not None else CounterRegistry()
        scope = self.registry.scope("service")
        self._scope = scope
        for name in _COUNTERS:
            scope.counter(name)
        scope.gauge("queue.depth", 0)
        scope.gauge("queue.inflight", 0)
        self.wait_latency = scope.histogram("latency.wait_s", LATENCY_BUCKETS_S)
        self.run_latency = scope.histogram("latency.run_s", LATENCY_BUCKETS_S)
        scope.provide("runner", _runner_bridge)
        self.series = SeriesStore(series_samples)
        # Per-shard queue gauges, keyed by shard index. The *global*
        # ``service.queue.depth``/``inflight`` gauges and the ``queue.depth``
        # series are always the SUM over shards — each shard reports its own
        # numbers through its view and the aggregate is recomputed here, so
        # sharding never double-counts a queue sample (the SLO burn-rate
        # series ``jobs.ok``/``jobs.total_s`` likewise receive exactly one
        # sample per job, recorded by the one shard that owns it).
        self._shard_gauges: "dict[int, tuple[int, int]]" = {}

    # -- submission outcomes -------------------------------------------------

    def job_submitted(self) -> None:
        """One ``POST /jobs`` reached the queue (any outcome)."""
        self._scope.add("queue.submitted")

    def job_accepted(self) -> None:
        """A submission enqueued a brand-new simulation."""
        self._scope.add("queue.accepted")

    def job_coalesced(self) -> None:
        """A submission attached to an in-flight job with the same fingerprint."""
        self._scope.add("queue.coalesced")

    def job_cache_hit(self) -> None:
        """A submission was answered straight from the result cache."""
        self._scope.add("queue.cache_hits")

    def job_rejected(self) -> None:
        """A submission bounced off the bounded queue (backpressure)."""
        self._scope.add("queue.rejected")

    def set_queue_gauges(self, depth: int, inflight: int) -> None:
        """Update the live queue-depth and in-flight gauges (and sample them)."""
        self._scope.gauge("queue.depth", depth)
        self._scope.gauge("queue.inflight", inflight)
        self.series.record("queue.depth", depth)

    def _set_shard_queue_gauges(self, shard: int, depth: int, inflight: int) -> None:
        """One shard's queue changed: refresh the cross-shard aggregate."""
        self._shard_gauges[shard] = (depth, inflight)
        total_depth = sum(d for d, _ in self._shard_gauges.values())
        total_inflight = sum(n for _, n in self._shard_gauges.values())
        self.set_queue_gauges(total_depth, total_inflight)

    def rate_limit_allowed(self) -> None:
        """A submission passed the per-client token-bucket admission gate."""
        self._scope.add("ratelimit.allowed")

    def rate_limit_throttled(self) -> None:
        """A submission was bounced with ``429`` by the token bucket."""
        self._scope.add("ratelimit.throttled")

    # -- execution outcomes --------------------------------------------------

    def batch_started(self, jobs: int) -> None:
        """The scheduler dispatched one batch of ``jobs`` unique simulations."""
        self._scope.add("scheduler.batches")
        self._scope.add("scheduler.batched_jobs", jobs)

    def job_completed(self, wait_s: float, run_s: float) -> None:
        """One job finished successfully; record its latency split."""
        self._scope.add("jobs.completed")
        self.wait_latency.observe(wait_s)
        self.run_latency.observe(run_s)
        self.series.record("jobs.wait_s", wait_s)
        self.series.record("jobs.run_s", run_s)
        self.series.record("jobs.total_s", wait_s + run_s)
        self.series.record("jobs.ok", 1)

    def job_failed(self) -> None:
        """One job exhausted its retries and failed."""
        self._scope.add("jobs.failed")
        self.series.record("jobs.ok", 0)

    def job_retried(self) -> None:
        """One job failed an attempt and was requeued."""
        self._scope.add("jobs.retried")

    # -- result-store sink ---------------------------------------------------

    def store_persisted(self, count: int) -> None:
        """``count`` completed jobs were committed to the result lakehouse."""
        self._scope.add("store.persisted", count)

    def store_error(self) -> None:
        """One lakehouse commit failed (jobs still completed normally)."""
        self._scope.add("store.errors")

    # -- tracing -------------------------------------------------------------

    def spans_attached(self, count: int) -> None:
        """Engine spans from one run were re-parented under a request trace."""
        self._scope.add("trace.spans_attached", count)

    def spans_evicted(self, count: int) -> None:
        """The run's bounded collector dropped ``count`` spans (ring full)."""
        if count:
            self._scope.add("trace.evicted_spans", count)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> "dict[str, Number]":
        """The full registry snapshot served at ``GET /metrics``."""
        return self.registry.as_dict()

    def prometheus(self) -> str:
        """Text exposition 0.0.4 rendering (``GET /metrics?format=prometheus``)."""
        return prometheus_text(self.registry)

    # -- sharding ------------------------------------------------------------

    def shard_view(self, shard: int, total_shards: int) -> "ServiceMetrics":
        """A per-shard facade over this surface for shard ``shard``.

        With one shard the service's metrics are exactly the historical
        single-scheduler surface, so the view is *this object* — no
        ``shard0.*`` scope ever appears and every committed golden stays
        byte-stable. With multiple shards each view dual-writes: global
        ``service.*`` counters/series exactly once per event (the roll-up),
        plus a ``service.shard{i}.*`` scope and ``shard{i}.*`` series for
        per-shard visibility. Queue gauges aggregate by summation through
        :meth:`_set_shard_queue_gauges`.
        """
        if total_shards <= 1:
            return self
        return _ShardMetrics(self, shard)  # type: ignore[return-value]


class _ShardMetrics:
    """One shard's dual-writing view of a shared :class:`ServiceMetrics`.

    Duck-typed to the subset of the parent surface that :class:`JobQueue`
    and :class:`BatchScheduler` call. Every event lands on the parent's
    global scope exactly once (a job belongs to exactly one shard, so the
    global counters, latency histograms, and SLO series never double-count)
    and on this shard's ``service.shard{i}.*`` scope for per-shard
    dashboards.
    """

    def __init__(self, parent: ServiceMetrics, shard: int) -> None:
        self.parent = parent
        self.shard = shard
        self.series = parent.series
        self._prefix = f"shard{shard}"
        scope = parent.registry.scope(f"service.{self._prefix}")
        self._scope = scope
        for name in _SHARD_COUNTERS:
            scope.counter(name)
        scope.gauge("queue.depth", 0)
        scope.gauge("queue.inflight", 0)

    # -- submission outcomes -------------------------------------------------

    def job_submitted(self) -> None:
        self.parent.job_submitted()
        self._scope.add("queue.submitted")

    def job_accepted(self) -> None:
        self.parent.job_accepted()
        self._scope.add("queue.accepted")

    def job_coalesced(self) -> None:
        self.parent.job_coalesced()
        self._scope.add("queue.coalesced")

    def job_cache_hit(self) -> None:
        self.parent.job_cache_hit()
        self._scope.add("queue.cache_hits")

    def job_rejected(self) -> None:
        self.parent.job_rejected()
        self._scope.add("queue.rejected")

    def set_queue_gauges(self, depth: int, inflight: int) -> None:
        self._scope.gauge("queue.depth", depth)
        self._scope.gauge("queue.inflight", inflight)
        self.series.record(f"{self._prefix}.queue.depth", depth)
        self.parent._set_shard_queue_gauges(self.shard, depth, inflight)

    # -- execution outcomes --------------------------------------------------

    def batch_started(self, jobs: int) -> None:
        self.parent.batch_started(jobs)
        self._scope.add("scheduler.batches")
        self._scope.add("scheduler.batched_jobs", jobs)

    def job_completed(self, wait_s: float, run_s: float) -> None:
        self.parent.job_completed(wait_s, run_s)
        self._scope.add("jobs.completed")
        self.series.record(f"{self._prefix}.jobs.total_s", wait_s + run_s)

    def job_failed(self) -> None:
        self.parent.job_failed()
        self._scope.add("jobs.failed")

    def job_retried(self) -> None:
        self.parent.job_retried()
        self._scope.add("jobs.retried")

    # -- pass-throughs (service-wide concerns) --------------------------------

    def store_persisted(self, count: int) -> None:
        self.parent.store_persisted(count)

    def store_error(self) -> None:
        self.parent.store_error()

    def spans_attached(self, count: int) -> None:
        self.parent.spans_attached(count)

    def spans_evicted(self, count: int) -> None:
        self.parent.spans_evicted(count)
