"""Service-level metrics, published through the obs counter registry.

Everything the service counts lives under the ``service.`` scope of one
:class:`repro.obs.CounterRegistry`, so ``GET /metrics`` is a plain registry
snapshot and the naming convention (dot-separated ``component.metric``)
matches the hardware counters the simulator already exports:

* ``service.queue.*`` — submission outcomes (accepted / coalesced /
  cache_hits / rejected) plus live ``depth`` and ``inflight`` gauges;
* ``service.jobs.*`` — completion outcomes (completed / failed / retried);
* ``service.scheduler.*`` — batch fan-out accounting;
* ``service.latency.*`` — wait (queue) and run (simulate) histograms;
* ``service.runner.*`` — a lazy provider bridging the harness runner's
  :class:`~repro.harness.runner.CacheStats` /
  :class:`~repro.harness.runner.FleetStats` (cache hit ratio, jobs
  computed) into the same snapshot.

Counters are created eagerly so the ``/metrics`` payload exposes a stable
key set from the first scrape, before any job has been submitted.

Two export shapes share the one registry: the JSON snapshot
(:meth:`ServiceMetrics.snapshot`, ``GET /metrics``) and Prometheus text
exposition (:meth:`ServiceMetrics.prometheus`,
``GET /metrics?format=prometheus``) with full histogram families. Alongside
the registry, a :class:`~repro.service.timeseries.SeriesStore` records
*when* things happened (``jobs.wait_s`` / ``jobs.run_s`` / ``jobs.total_s``
latency samples, ``jobs.ok`` success bits, ``queue.depth`` snapshots) for
``GET /metrics/series`` bucketing and SLO evaluation.
"""

from __future__ import annotations

from ..harness.runner import cache_stats, fleet_stats
from ..obs import CounterRegistry, prometheus_text
from ..obs.registry import Number
from .timeseries import DEFAULT_SERIES_SAMPLES, SeriesStore

#: Latency bucket upper bounds, in seconds (1 ms .. 1 min).
LATENCY_BUCKETS_S = (0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0)

#: Counter names created eagerly under ``service.`` at startup.
_COUNTERS = (
    "queue.submitted",
    "queue.accepted",
    "queue.coalesced",
    "queue.cache_hits",
    "queue.rejected",
    "jobs.completed",
    "jobs.failed",
    "jobs.retried",
    "scheduler.batches",
    "scheduler.batched_jobs",
    "trace.spans_attached",
    "trace.evicted_spans",
    "store.persisted",
    "store.errors",
)


def _runner_bridge() -> "dict[str, Number]":
    """Snapshot of the harness runner's cache/fleet counters."""
    cache = cache_stats()
    fleet = fleet_stats()
    return {
        "cache.hit_rate": cache.hit_rate,
        "cache.hits": cache.hits,
        "cache.lookups": cache.lookups,
        "fleet.jobs_computed": fleet.jobs_computed,
        "fleet.jobs_cached": fleet.jobs_cached,
        "fleet.jobs_failed": fleet.jobs_failed,
        "fleet.wall_clock_s": fleet.wall_clock,
    }


class ServiceMetrics:
    """The service's counter/gauge/histogram surface over one registry."""

    def __init__(
        self,
        registry: "CounterRegistry | None" = None,
        series_samples: int = DEFAULT_SERIES_SAMPLES,
    ) -> None:
        self.registry = registry if registry is not None else CounterRegistry()
        scope = self.registry.scope("service")
        self._scope = scope
        for name in _COUNTERS:
            scope.counter(name)
        scope.gauge("queue.depth", 0)
        scope.gauge("queue.inflight", 0)
        self.wait_latency = scope.histogram("latency.wait_s", LATENCY_BUCKETS_S)
        self.run_latency = scope.histogram("latency.run_s", LATENCY_BUCKETS_S)
        scope.provide("runner", _runner_bridge)
        self.series = SeriesStore(series_samples)

    # -- submission outcomes -------------------------------------------------

    def job_submitted(self) -> None:
        """One ``POST /jobs`` reached the queue (any outcome)."""
        self._scope.add("queue.submitted")

    def job_accepted(self) -> None:
        """A submission enqueued a brand-new simulation."""
        self._scope.add("queue.accepted")

    def job_coalesced(self) -> None:
        """A submission attached to an in-flight job with the same fingerprint."""
        self._scope.add("queue.coalesced")

    def job_cache_hit(self) -> None:
        """A submission was answered straight from the result cache."""
        self._scope.add("queue.cache_hits")

    def job_rejected(self) -> None:
        """A submission bounced off the bounded queue (backpressure)."""
        self._scope.add("queue.rejected")

    def set_queue_gauges(self, depth: int, inflight: int) -> None:
        """Update the live queue-depth and in-flight gauges (and sample them)."""
        self._scope.gauge("queue.depth", depth)
        self._scope.gauge("queue.inflight", inflight)
        self.series.record("queue.depth", depth)

    # -- execution outcomes --------------------------------------------------

    def batch_started(self, jobs: int) -> None:
        """The scheduler dispatched one batch of ``jobs`` unique simulations."""
        self._scope.add("scheduler.batches")
        self._scope.add("scheduler.batched_jobs", jobs)

    def job_completed(self, wait_s: float, run_s: float) -> None:
        """One job finished successfully; record its latency split."""
        self._scope.add("jobs.completed")
        self.wait_latency.observe(wait_s)
        self.run_latency.observe(run_s)
        self.series.record("jobs.wait_s", wait_s)
        self.series.record("jobs.run_s", run_s)
        self.series.record("jobs.total_s", wait_s + run_s)
        self.series.record("jobs.ok", 1)

    def job_failed(self) -> None:
        """One job exhausted its retries and failed."""
        self._scope.add("jobs.failed")
        self.series.record("jobs.ok", 0)

    def job_retried(self) -> None:
        """One job failed an attempt and was requeued."""
        self._scope.add("jobs.retried")

    # -- result-store sink ---------------------------------------------------

    def store_persisted(self, count: int) -> None:
        """``count`` completed jobs were committed to the result lakehouse."""
        self._scope.add("store.persisted", count)

    def store_error(self) -> None:
        """One lakehouse commit failed (jobs still completed normally)."""
        self._scope.add("store.errors")

    # -- tracing -------------------------------------------------------------

    def spans_attached(self, count: int) -> None:
        """Engine spans from one run were re-parented under a request trace."""
        self._scope.add("trace.spans_attached", count)

    def spans_evicted(self, count: int) -> None:
        """The run's bounded collector dropped ``count`` spans (ring full)."""
        if count:
            self._scope.add("trace.evicted_spans", count)

    # -- export --------------------------------------------------------------

    def snapshot(self) -> "dict[str, Number]":
        """The full registry snapshot served at ``GET /metrics``."""
        return self.registry.as_dict()

    def prometheus(self) -> str:
        """Text exposition 0.0.4 rendering (``GET /metrics?format=prometheus``)."""
        return prometheus_text(self.registry)
