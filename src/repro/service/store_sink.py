"""Persisting completed service jobs into the result lakehouse.

When ``ServiceSettings.store_dir`` is set (``REPRO_SERVICE_STORE_DIR``),
the scheduler hands every batch's successful completions to a
:class:`StoreSink`, which commits them to :class:`repro.store.ResultStore`
as **one append snapshot per batch** — the batching the scheduler already
does for the process pool doubles as commit batching, so a busy service
produces a bounded snapshot rate instead of one commit per job.

Persistence is strictly out-of-band: the sink runs off the event loop
(``asyncio.to_thread``) after futures have settled, and a store failure
increments a counter instead of failing jobs — results are already
durable in the runner's own persistent layer when that is enabled.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Sequence

from ..harness.runner import MODEL_FINGERPRINT
from .metrics import ServiceMetrics

if TYPE_CHECKING:
    from ..system.results import SimulationResult
    from .queue import Job


class StoreSink:
    """Commits completed jobs into one :class:`~repro.store.ResultStore`."""

    def __init__(self, directory: str, metrics: "ServiceMetrics | None" = None) -> None:
        self.directory = directory
        self.metrics = metrics
        self.persisted = 0
        self.errors = 0
        self._store: Any = None
        # One sink is shared by every scheduler shard, each persisting from
        # its own ``asyncio.to_thread`` worker. The lock serializes both the
        # lazy open and the appends: within one process there is nothing to
        # gain from concurrent commits (they'd just rebase against each
        # other), while the store's own rebase-and-retry path still covers
        # *cross-process* writers racing this one.
        self._lock = threading.Lock()

    def _open(self) -> Any:
        if self._store is None:
            from ..store import ResultStore

            self._store = ResultStore.open(self.directory, auto_refresh=True)
        return self._store

    def persist(self, completions: "Sequence[tuple[Job, SimulationResult]]") -> int:
        """Commit one batch's successes; returns records committed.

        Blocking (disk I/O + view refresh): call via ``asyncio.to_thread``.
        Never raises — the service must keep serving when the store is
        sick; failures count on the sink and the service metrics.
        """
        if not completions:
            return 0
        from ..store import StoreError, StoredRecord

        records = [
            StoredRecord(
                key=job.key,
                meta=job.sim.meta(),
                result=result.to_dict(),
                model=MODEL_FINGERPRINT,
            )
            for job, result in completions
        ]
        try:
            with self._lock:
                self._open().append(records)
        except (OSError, StoreError):
            self.errors += 1
            if self.metrics is not None:
                self.metrics.store_error()
            return 0
        self.persisted += len(records)
        if self.metrics is not None:
            self.metrics.store_persisted(len(records))
        return len(records)
