"""The service's priority job queue: bounded, coalescing, loop-confined.

One :class:`JobQueue` instance lives inside the server's asyncio event loop
and is only ever touched from that loop (HTTP handlers and the scheduler
coroutine), so it needs no locks. Three properties drive its design:

* **bounded depth + backpressure** — at most ``max_depth`` distinct
  simulations may be queued; further submissions raise :class:`QueueFull`,
  which the HTTP layer maps to ``429 Too Many Requests``. Coalesced and
  cache-hit submissions never consume a slot.
* **request coalescing** — simulations are deterministic and keyed by the
  canonical config fingerprint (:meth:`repro.harness.runner.SimJob.key`),
  so a submission whose key matches an in-flight job (queued *or* running)
  attaches to that job's future instead of re-simulating. Every submission
  still gets its own job id and latency accounting; only the simulation is
  shared.
* **cached-result short-circuit** — a submission whose key is already in
  the runner's memo cache completes immediately without touching the queue.

Priorities are integers, higher first. Within a priority level, dispatch
order is **weighted fair queueing** across client ids rather than plain
FIFO: each new group is stamped with its client's *virtual finish time*
(``max(queue virtual time, client's last stamp) + 1/weight``), and the
heap orders groups by ``(-priority, virtual_finish, seq)``. With a single
client (or all-anonymous submissions) every stamp increments by one and
the order degenerates to exact FIFO — the pre-WFQ behaviour — but when a
greedy client floods the queue, a slow client's occasional jobs carry
*earlier* virtual stamps and dispatch ahead of the flood's backlog, so
nobody starves and long-run dispatch share converges to the configured
weight ratio (see ``tests/service/test_fairness.py``).

In a sharded service (``docs/SERVICE.md``), one ``JobQueue`` exists per
shard: ``shard`` tags the queue's index and ``ids`` shares one job-id
counter across the pool so ids stay globally unique.

Beyond queueing, every job carries two observability channels (see
``docs/OBSERVABILITY.md``):

* an **event log** — an append-only list of timestamped lifecycle events
  (``queued`` / ``coalesced`` / ``cache_hit`` / ``scheduled`` / ``running``
  / ``attempt_failed`` / ``spans_attached`` / ``done`` / ``failed``) that
  the streaming ``GET /jobs/{id}/events`` endpoint follows live; always on.
* **distributed trace spans** — when the queue owns a
  :class:`~repro.obs.distributed.TraceStore` (``tracer``), each submission
  opens a ``request`` span under the client's ``traceparent`` (or a
  server-minted root), a ``queue.wait`` span until dispatch, one shared
  ``execute`` span per group on the *primary* submitter's trace (coalesced
  submitters record a ``coalesced`` span *linking* to it), and a ``run``
  span per dispatch attempt under which the worker's engine spans are
  re-parented.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from enum import Enum

from ..errors import ServiceError
from ..harness.runner import SimJob
from ..harness.runner import memo
from ..obs.distributed import DistSpan, TraceContext, TraceStore, mint_span_id, mint_trace_id
from ..system.results import SimulationResult
from .metrics import ServiceMetrics


class QueueFull(ServiceError):
    """The bounded queue is at capacity; the caller should back off."""


class ServiceClosed(ServiceError):
    """The service is draining for shutdown and accepts no new work."""


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One client submission (coalesced submissions are distinct ``Job``s).

    Jobs sharing a fingerprint form a *group*: they share the asyncio
    future, the simulation, and state transitions, but keep their own id,
    submission timestamp, and latency accounting.
    """

    id: str
    sim: SimJob
    key: str
    priority: int = 0
    client: str = ""
    shard: int = 0
    state: JobState = JobState.QUEUED
    coalesced: bool = False
    cache_hit: bool = False
    attempts: int = 0
    submitted_at: float = field(default_factory=time.time)
    queued_mono: float = field(default_factory=time.monotonic)
    started_mono: "float | None" = None
    finished_mono: "float | None" = None
    error: "str | None" = None
    future: "asyncio.Future | None" = None
    trace_id: "str | None" = None
    client_span_id: "str | None" = None
    events: "list[dict]" = field(default_factory=list)
    batch: "dict | None" = None
    request_span: "DistSpan | None" = field(default=None, repr=False)
    queue_span: "DistSpan | None" = field(default=None, repr=False)
    exec_span_id: "str | None" = field(default=None, repr=False)  # primary only
    exec_span: "DistSpan | None" = field(default=None, repr=False)  # primary only
    run_span: "DistSpan | None" = field(default=None, repr=False)  # primary only
    vft: float = field(default=0.0, repr=False)  # WFQ virtual finish (primary only)
    _event_flag: "asyncio.Event | None" = field(default=None, repr=False)

    def add_event(self, event: str, **fields) -> None:
        """Append one lifecycle event and wake any streaming followers."""
        entry: dict = {"seq": len(self.events), "t": time.time(), "event": event}
        entry.update(fields)
        self.events.append(entry)
        flag = self._event_flag
        if flag is not None:
            self._event_flag = None
            flag.set()

    async def wait_events(self, have: int) -> None:
        """Block until the job has more than ``have`` events."""
        while len(self.events) <= have:
            if self._event_flag is None:
                self._event_flag = asyncio.Event()
            flag = self._event_flag
            await flag.wait()

    @property
    def terminal(self) -> bool:
        """Whether the job reached DONE or FAILED."""
        return self.state in (JobState.DONE, JobState.FAILED)

    @property
    def result(self) -> "SimulationResult | None":
        """The simulation result once the job is DONE, else ``None``."""
        if self.future is not None and self.future.done() and not self.future.exception():
            return self.future.result()
        return None

    @property
    def wait_s(self) -> "float | None":
        """Queue wait: submission to dispatch (None until dispatched)."""
        if self.started_mono is None:
            return None
        return self.started_mono - self.queued_mono

    @property
    def run_s(self) -> "float | None":
        """Execution time: dispatch to completion (None until finished)."""
        if self.started_mono is None or self.finished_mono is None:
            return None
        return self.finished_mono - self.started_mono

    def as_dict(self) -> dict:
        """Status payload for ``GET /jobs/{id}`` (no result body)."""
        payload = {
            "id": self.id,
            "key": self.key,
            "state": self.state.value,
            "priority": self.priority,
            "client": self.client,
            "shard": self.shard,
            "coalesced": self.coalesced,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "wait_s": self.wait_s,
            "run_s": self.run_s,
            "trace_id": self.trace_id,
            "job": self.sim.meta(),
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobQueue:
    """Priority queue of job *groups*, keyed by config fingerprint."""

    def __init__(
        self,
        metrics: ServiceMetrics,
        max_depth: int = 256,
        tracer: "TraceStore | None" = None,
        shard: int = 0,
        ids: "itertools.count | None" = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("queue depth must be at least 1")
        self.metrics = metrics
        self.max_depth = max_depth
        self.tracer = tracer
        self.shard = shard
        self._jobs: "dict[str, Job]" = {}  # every job ever submitted, by id
        self._groups: "dict[str, list[Job]]" = {}  # fingerprint -> active group
        # (-priority, virtual_finish, seq, key) — see the module docstring's
        # weighted-fair-queueing notes.
        self._heap: "list[tuple[int, float, int, str]]" = []
        self._queued: "set[str]" = set()  # keys currently in the heap
        self._running: "set[str]" = set()  # keys dispatched to the runner
        self._seq = itertools.count()
        self._ids = ids if ids is not None else itertools.count(1)
        self._vtime = 0.0  # WFQ virtual time: advances to each popped stamp
        self._client_vft: "dict[str, float]" = {}  # client -> last stamp handed out
        self._nonempty = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = False

    # -- introspection -------------------------------------------------------

    @property
    def depth(self) -> int:
        """Distinct simulations waiting for dispatch."""
        return len(self._queued)

    @property
    def inflight(self) -> int:
        """Distinct simulations queued or running."""
        return len(self._groups)

    @property
    def closed(self) -> bool:
        """Whether the queue has stopped accepting submissions."""
        return self._closed

    def get(self, job_id: str) -> "Job | None":
        """Look one job up by id (any state), or ``None``."""
        return self._jobs.get(job_id)

    def jobs(self) -> "list[Job]":
        """Every job ever submitted, in submission order."""
        return list(self._jobs.values())

    def _gauges(self) -> None:
        self.metrics.set_queue_gauges(self.depth, self.inflight)
        if self._groups:
            self._idle.clear()
        else:
            self._idle.set()

    # -- submission ----------------------------------------------------------

    def _open_request(self, job: Job, trace: "TraceContext | None") -> None:
        """Assign the job's trace identity and open its ``request`` span.

        With a ``traceparent`` the request joins the client's trace as a
        child of the client's root span; without one the server mints a
        fresh root trace so the journey is traceable either way.
        """
        if self.tracer is None:
            return
        if trace is not None:
            job.trace_id = trace.trace_id
            job.client_span_id = trace.span_id
        else:
            job.trace_id = mint_trace_id()
        job.request_span = self.tracer.start_span(
            job.trace_id,
            "request",
            job.client_span_id,
            kind="server",
            track="server",
            attrs={"job_id": job.id, "fingerprint": job.key[:16]},
        )

    def submit(
        self,
        sim: SimJob,
        priority: int = 0,
        trace: "TraceContext | None" = None,
        client: str = "",
        weight: float = 1.0,
    ) -> Job:
        """Submit one simulation; returns the (possibly coalesced) job.

        ``trace`` is the client's parsed ``traceparent`` context, if any.
        ``client``/``weight`` feed the weighted-fair-queueing order: jobs
        from heavier clients accrue virtual time more slowly and therefore
        win a proportionally larger dispatch share under contention.
        Coalesced and cache-hit submissions consume no WFQ credit — they
        occupy no queue slot. Raises :class:`ServiceClosed` when draining
        and :class:`QueueFull` when the submission needs a queue slot and
        none is free.
        """
        if self._closed:
            raise ServiceClosed("service is draining; not accepting new jobs")
        self.metrics.job_submitted()
        key = sim.key()
        job_id = f"job-{next(self._ids):06d}"

        group = self._groups.get(key)
        if group is not None:
            primary = group[0]
            job = Job(
                id=job_id,
                sim=sim,
                key=key,
                priority=priority,
                client=client,
                shard=self.shard,
                state=primary.state,
                coalesced=True,
                attempts=primary.attempts,
                started_mono=primary.started_mono,
                future=primary.future,
            )
            group.append(job)
            self._jobs[job_id] = job
            self.metrics.job_coalesced()
            self._open_request(job, trace)
            if job.request_span is not None and primary.exec_span_id is not None:
                # The shared execution lives on the primary's trace; this
                # submitter's own trace records the wait with a link to it.
                job.queue_span = self.tracer.start_span(  # type: ignore[union-attr]
                    job.trace_id,  # type: ignore[arg-type]
                    "coalesced",
                    job.request_span.span_id,
                    track="job",
                    attrs={"primary_job_id": primary.id},
                    links=[{"trace_id": primary.trace_id, "span_id": primary.exec_span_id}],
                )
            job.add_event("coalesced", primary=primary.id, state=primary.state.value)
            return job

        cached = memo.lookup(key)
        if cached is not None:
            future = asyncio.get_running_loop().create_future()
            future.set_result(cached)
            job = Job(
                id=job_id,
                sim=sim,
                key=key,
                priority=priority,
                client=client,
                shard=self.shard,
                state=JobState.DONE,
                cache_hit=True,
                future=future,
            )
            job.started_mono = job.finished_mono = job.queued_mono
            self._jobs[job_id] = job
            self.metrics.job_cache_hit()
            self.metrics.job_completed(0.0, 0.0)
            self._open_request(job, trace)
            if job.request_span is not None:
                self.tracer.add_span(  # type: ignore[union-attr]
                    job.trace_id,  # type: ignore[arg-type]
                    "cache.hit",
                    parent_id=job.request_span.span_id,
                    track="job",
                )
                self.tracer.end_span(job.request_span)  # type: ignore[union-attr]
            job.add_event("cache_hit")
            job.add_event("done")
            return job

        if self.depth >= self.max_depth:
            self.metrics.job_rejected()
            raise QueueFull(
                f"queue is full ({self.max_depth} jobs); retry after the backlog drains"
            )

        job = Job(
            id=job_id,
            sim=sim,
            key=key,
            priority=priority,
            client=client,
            shard=self.shard,
            future=asyncio.get_running_loop().create_future(),
        )
        # WFQ stamp: the client's virtual finish time. Starting from
        # max(queue virtual time, client's last stamp) means an idle client
        # re-enters *now* rather than banking credit for its quiet period.
        start = max(self._vtime, self._client_vft.get(client, 0.0))
        job.vft = start + 1.0 / max(weight, 1e-9)
        self._client_vft[client] = job.vft
        self._jobs[job_id] = job
        self._groups[key] = [job]
        self._push(key, priority, job.vft)
        self.metrics.job_accepted()
        self._open_request(job, trace)
        if job.request_span is not None:
            # The execution span's id is minted now — before the span even
            # starts — so a coalescing submission arriving while this group
            # is still queued can already link to it. The span itself opens
            # at :meth:`mark_running`.
            job.exec_span_id = mint_span_id()
            job.queue_span = self.tracer.start_span(  # type: ignore[union-attr]
                job.trace_id,  # type: ignore[arg-type]
                "queue.wait",
                job.request_span.span_id,
                track="job",
                attrs={"priority": priority},
            )
        job.add_event("queued", depth=self.depth)
        self._gauges()
        return job

    def _push(self, key: str, priority: int, vft: float) -> None:
        heapq.heappush(self._heap, (-priority, vft, next(self._seq), key))
        self._queued.add(key)
        self._nonempty.set()

    # -- scheduler interface -------------------------------------------------

    async def wait_nonempty(self) -> None:
        """Block until at least one group is queued."""
        await self._nonempty.wait()

    async def wait_idle(self) -> None:
        """Block until no group is queued or running (drain barrier)."""
        await self._idle.wait()

    def pop_ready(self, limit: int) -> "list[Job]":
        """Dequeue up to ``limit`` primary jobs, highest priority first."""
        batch: "list[Job]" = []
        while self._heap and len(batch) < limit:
            _, vft, _, key = heapq.heappop(self._heap)
            if key not in self._queued:
                continue
            self._queued.discard(key)
            self._vtime = max(self._vtime, vft)
            batch.append(self._groups[key][0])
        if not self._heap:
            self._nonempty.clear()
        self._gauges()
        return batch

    def note_scheduled(self, key: str, batch_seq: int, batch_size: int) -> None:
        """Record which scheduler batch picked this group up."""
        batch = {"batch_seq": batch_seq, "batch_size": batch_size}
        for job in self._groups[key]:
            job.batch = batch
            job.add_event("scheduled", **batch)

    def mark_running(self, key: str) -> None:
        """Transition a group to RUNNING (dispatch time for latency)."""
        now = time.monotonic()
        self._running.add(key)
        group = self._groups[key]
        primary = group[0]
        for job in group:
            job.state = JobState.RUNNING
            if job.started_mono is None:
                job.started_mono = now
            job.add_event("running", attempt=primary.attempts + 1)
        if self.tracer is not None and primary.exec_span_id is not None:
            if primary.exec_span is None:
                # First dispatch: close the queue wait, open the shared
                # execution span under the pre-minted id.
                self.tracer.end_span(primary.queue_span)
                parent = (
                    primary.request_span.span_id if primary.request_span is not None else None
                )
                primary.exec_span = self.tracer.start_span(
                    primary.trace_id,  # type: ignore[arg-type]
                    "execute",
                    parent,
                    track="job",
                    span_id=primary.exec_span_id,
                    attrs={"group_size": len(group)},
                )
            else:
                primary.exec_span.attrs["group_size"] = len(group)
            attrs = {"attempt": primary.attempts + 1}
            attrs.update(primary.batch or {})
            primary.run_span = self.tracer.start_span(
                primary.trace_id,  # type: ignore[arg-type]
                "run",
                primary.exec_span_id,
                track="attempt",
                attrs=attrs,
            )
        self._gauges()

    def record_attempt(self, key: str) -> int:
        """Bump the group's attempt counter; returns attempts so far."""
        group = self._groups[key]
        attempts = group[0].attempts + 1
        primary = group[0]
        if self.tracer is not None and primary.run_span is not None:
            primary.run_span.attrs["failed"] = True
            self.tracer.end_span(primary.run_span)
            primary.run_span = None
        for job in group:
            job.attempts = attempts
            job.add_event("attempt_failed", attempt=attempts)
        return attempts

    def attach_spans(self, key: str, spans: "list[dict] | None", evicted: int) -> None:
        """Re-parent one run's engine spans under the group's ``run`` span.

        Called by the traced scheduler after a successful attempt, before
        :meth:`finish`. ``spans`` is the worker's ``Span.to_dict`` list
        (``None`` when the result came from a cache — nothing to attach).
        Closes the attempt's ``run`` span either way.
        """
        primary = self._groups[key][0]
        if self.tracer is None or primary.run_span is None:
            return
        self.tracer.end_span(primary.run_span)
        if spans:
            count = self.tracer.attach_engine_tree(
                primary.trace_id,  # type: ignore[arg-type]
                primary.run_span.span_id,
                spans,
                anchor=primary.run_span.start,
            )
            self.metrics.spans_attached(count)
            self.metrics.spans_evicted(evicted)
            for job in self._groups[key]:
                job.add_event("spans_attached", count=count, evicted=evicted)
        primary.run_span = None

    def requeue(self, key: str) -> None:
        """Put a failed-attempt group back in the queue for retry."""
        self._running.discard(key)
        group = self._groups[key]
        for job in group:
            job.state = JobState.QUEUED
        # Retries keep their original WFQ stamp: a failed attempt re-enters
        # ahead of work submitted after it, rather than paying fresh credit.
        self._push(key, group[0].priority, group[0].vft)
        self.metrics.job_retried()
        self._gauges()

    def finish(
        self,
        key: str,
        result: "SimulationResult | None" = None,
        error: "Exception | None" = None,
    ) -> None:
        """Resolve a group: every job in it completes (or fails) together."""
        self._running.discard(key)
        group = self._groups.pop(key)
        now = time.monotonic()
        primary = group[0]
        future = primary.future
        if self.tracer is not None:
            if primary.run_span is not None:  # failed attempt never re-dispatched
                primary.run_span.attrs["failed"] = True
                self.tracer.end_span(primary.run_span)
                primary.run_span = None
            self.tracer.end_span(primary.exec_span)
        for job in group:
            job.finished_mono = now
            if job.started_mono is None:  # failed before ever dispatching
                job.started_mono = now
            if error is None:
                job.state = JobState.DONE
                self.metrics.job_completed(job.wait_s or 0.0, job.run_s or 0.0)
                job.add_event("done")
            else:
                job.state = JobState.FAILED
                job.error = f"{type(error).__name__}: {error}"
                self.metrics.job_failed()
                job.add_event("failed", error=job.error)
            if self.tracer is not None:
                if job.queue_span is not None:
                    job.queue_span.attrs.setdefault("outcome", job.state.value)
                    self.tracer.end_span(job.queue_span)
                if job.request_span is not None:
                    job.request_span.attrs["outcome"] = job.state.value
                    self.tracer.end_span(job.request_span)
        assert future is not None
        if error is None:
            future.set_result(result)
        else:
            future.set_exception(error)
            # The HTTP layer reads job.error; nobody may ever await the
            # future, so pre-retrieve the exception to silence asyncio's
            # "exception was never retrieved" warning.
            future.exception()
        self._gauges()

    # -- shutdown ------------------------------------------------------------

    def close(self) -> None:
        """Stop accepting submissions (in-flight groups still complete)."""
        self._closed = True

    def abort_queued(self) -> int:
        """Fail every still-queued group (non-drain shutdown); returns count."""
        aborted = 0
        for key in list(self._queued):
            self._queued.discard(key)
            self.finish(key, error=ServiceClosed("service shut down before the job ran"))
            aborted += 1
        self._heap.clear()
        self._nonempty.clear()
        self._gauges()
        return aborted
