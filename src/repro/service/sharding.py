"""Shard routing and per-client rate limiting for the sharded service.

Two small, independently testable pieces back the scheduler shard pool
(``docs/SERVICE.md`` has the operational story):

* :func:`shard_for_key` — a **stable** hash from config fingerprints to
  shard indices. Stability matters twice over: a resubmitted simulation
  must land on the same shard so fingerprint-level request coalescing
  keeps working (a group can only dedup against jobs in its own queue),
  and the mapping must not depend on process state (``hash()`` is
  randomized per interpreter) so multi-process deployments agree.
* :class:`TokenBucket` / :class:`RateLimiter` — continuous-refill token
  buckets, one per client id, behind the ``429 Too Many Requests`` +
  ``Retry-After`` admission gate on ``POST /jobs``.

Both are pure data structures with injectable clocks; the HTTP layer in
``server.py`` owns all policy (which header names the client, what the
rejection body looks like).
"""

from __future__ import annotations

import time
import zlib


def shard_for_key(key: str, shards: int) -> int:
    """Map one config fingerprint onto a shard index, stably and totally.

    ``key`` is normally the canonical SHA-256 hex fingerprint from
    :meth:`repro.harness.runner.SimJob.key`, whose leading 64 bits are
    already uniformly distributed; arbitrary strings fall back to CRC-32.
    The mapping depends only on ``(key, shards)`` — never on interpreter
    hash randomization or submission order.
    """
    if shards < 1:
        raise ValueError("shard count must be at least 1")
    if shards == 1:
        return 0
    try:
        value = int(key[:16], 16)
    except ValueError:
        value = zlib.crc32(key.encode("utf-8"))
    return value % shards


class TokenBucket:
    """One client's continuous-refill token bucket.

    Holds at most ``burst`` tokens, refilling at ``rate`` tokens/second.
    :meth:`try_take` either consumes a token (returning ``0.0``) or
    returns the seconds until one will have accrued — the number the HTTP
    layer surfaces as ``Retry-After``.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("token rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    @property
    def tokens(self) -> float:
        """Tokens available right now (refills as a side effect)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, cost: float = 1.0) -> float:
        """Take ``cost`` tokens if available; else seconds until possible."""
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        return (cost - self._tokens) / self.rate


class RateLimiter:
    """Per-client admission control: one :class:`TokenBucket` per client id.

    Clients identify themselves with the ``x-repro-client`` request header;
    anonymous submissions share the ``""`` bucket. Buckets are created
    lazily on first sight and live for the service's lifetime (client
    cardinality is operator-bounded, not attacker-controlled, on the
    trusted networks this service fronts).
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._buckets: "dict[str, TokenBucket]" = {}

    def check(self, client: str) -> float:
        """Admit one submission for ``client``: ``0.0``, or retry-after seconds."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, clock=self._clock
            )
        return bucket.try_take()
