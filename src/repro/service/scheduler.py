"""Batched dispatch from the job queue into the harness runner.

The scheduler is one long-lived coroutine that repeatedly:

1. waits for the queue to become non-empty;
2. holds the batch open over a **size/age window** — dispatch fires as soon
   as ``batch_size`` distinct simulations are queued, or ``max_wait_s``
   after the window opened, whichever comes first (small batches trade a
   bounded latency hit for process-pool fan-out and in-batch dedup);
3. packs the drained jobs into one
   :func:`repro.harness.runner.run_many_settled` call, pushed off the event
   loop with ``asyncio.to_thread`` so the loop keeps serving HTTP while
   simulations run;
4. settles each job individually: successes resolve their group's future,
   failures retry with linear backoff up to ``max_retries`` additional
   attempts, then fail the future.

Shutdown is graceful by default: :meth:`BatchScheduler.stop` with
``drain=True`` waits until every queued and running group has settled
before cancelling the loop.
"""

from __future__ import annotations

import asyncio
import itertools

from ..harness.runner import run_many_settled, run_many_traced_settled
from .metrics import ServiceMetrics
from .queue import Job, JobQueue


class BatchScheduler:
    """Drains the :class:`JobQueue` into ``run_many_settled`` batches.

    When ``traced`` is on (the default whenever the queue owns a tracer),
    batches run through :func:`run_many_traced_settled` instead: each
    successful attempt ships its engine spans back out-of-band and the
    scheduler re-parents them under the group's ``run`` span via
    :meth:`JobQueue.attach_spans` before settling the future — so by the
    time a client sees ``state: done``, the trace is complete.
    """

    def __init__(
        self,
        queue: JobQueue,
        metrics: ServiceMetrics,
        *,
        batch_size: int = 8,
        max_wait_s: float = 0.05,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        max_workers: "int | None" = None,
        runner=run_many_settled,
        traced_runner=run_many_traced_settled,
        traced: "bool | None" = None,
        sink=None,
        name: "str | None" = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.queue = queue
        self.metrics = metrics
        self.batch_size = batch_size
        self.max_wait_s = max_wait_s
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.max_workers = max_workers
        self._runner = runner
        self._traced_runner = traced_runner
        #: Optional :class:`~repro.service.store_sink.StoreSink`: successful
        #: completions of each batch are committed to the result lakehouse
        #: as one append snapshot, after their futures settle.
        self.sink = sink
        self.traced = (queue.tracer is not None) if traced is None else traced
        self.name = name
        self._batch_seq = itertools.count(1)
        self._task: "asyncio.Task | None" = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the scheduling loop on the running event loop."""
        if self._task is not None:
            raise RuntimeError("scheduler already started")
        label = "repro-service-scheduler" + (f"-{self.name}" if self.name else "")
        self._task = asyncio.get_running_loop().create_task(self._run(), name=label)

    async def stop(self, drain: bool = True) -> None:
        """Stop the loop; with ``drain`` wait for in-flight work first.

        The queue should already be closed to submissions (the server does
        this) so the drain barrier cannot be starved by new work.
        """
        if drain:
            await self.queue.wait_idle()
        else:
            self.queue.abort_queued()
        # Claim the task before awaiting so concurrent stop() calls (a
        # rolling /drain racing a full /shutdown) are harmless no-ops.
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    # -- the loop ------------------------------------------------------------

    async def _run(self) -> None:
        while True:
            await self.queue.wait_nonempty()
            await self._hold_window()
            batch = self.queue.pop_ready(self.batch_size)
            if batch:
                await self._execute(batch)

    async def _hold_window(self) -> None:
        """Sleep until the batch is full or the age window expires."""
        if self.max_wait_s <= 0:
            return
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait_s
        tick = max(self.max_wait_s / 10.0, 0.001)
        while self.queue.depth < self.batch_size and loop.time() < deadline:
            await asyncio.sleep(tick)

    async def _execute(self, batch: "list[Job]") -> None:
        batch_seq = next(self._batch_seq)
        for job in batch:
            self.queue.note_scheduled(job.key, batch_seq, len(batch))
            self.queue.mark_running(job.key)
        self.metrics.batch_started(len(batch))
        sims = [job.sim for job in batch]
        if self.traced:
            slots = await asyncio.to_thread(self._traced_runner, sims, self.max_workers)
            outcomes = []
            for job, (outcome, spans, evicted) in zip(batch, slots):
                outcomes.append(outcome)
                if not isinstance(outcome, Exception):
                    self.queue.attach_spans(job.key, spans, evicted)
        else:
            outcomes = await asyncio.to_thread(self._runner, sims, self.max_workers)
        retry: "list[Job]" = []
        completed: "list[tuple[Job, object]]" = []
        for job, outcome in zip(batch, outcomes):
            if isinstance(outcome, Exception):
                attempts = self.queue.record_attempt(job.key)
                if attempts <= self.max_retries:
                    retry.append(job)
                else:
                    self.queue.finish(job.key, error=outcome)
            else:
                self.queue.finish(job.key, result=outcome)
                completed.append((job, outcome))
        if self.sink is not None and completed:
            # Off-loop and after the futures settled: persistence latency
            # (and failures) never touch job completion.
            await asyncio.to_thread(self.sink.persist, completed)
        if retry:
            # Linear backoff on the worst offender; one sleep covers the
            # whole batch so retries of a crashed pool don't thundering-herd.
            worst = max(job.attempts for job in retry)
            await asyncio.sleep(self.retry_backoff_s * worst)
            for job in retry:
                self.queue.requeue(job.key)
