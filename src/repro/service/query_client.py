"""The analytics SDK: filtered, bucketed, concurrent reads over the store.

Where :class:`~repro.service.client.ServiceClient` drives the *write* side
of the service (submit, wait, drain), :class:`QueryClient` and
:class:`AsyncQueryClient` drive the *read* side: ``GET /query`` serves
attribute-filtered, column-projected rows out of the service's attached
result lakehouse, and ``GET /query/buckets`` serves floor-aligned
min/max/avg/p50/p99 buckets over the service's metric time-series. Both
clients return :class:`QueryPayload` — dataframe-shaped without a dataframe
dependency (records-of-dicts *and* columns-of-lists orientations; either
drops straight into ``pandas.DataFrame`` when one is available).

Composed fetches fan out: :meth:`QueryClient.fetch` runs one query per
filter set concurrently (a thread pool here, ``asyncio.gather`` behind a
semaphore in the async client) and merges the answers into one payload,
deduplicating rows by fingerprint — the idiom for "give me stencil *and*
jacobi at 4 GPUs, as one frame" without N round-trip latencies stacking.

Typical use::

    q = QueryClient("http://127.0.0.1:8787")
    frame = q.query(where=["workload=stencil", "paradigm=gps", "num_gpus>=4"],
                    columns=["key", "total_time"], order_by="-total_time")
    frame.rows()       # [{"key": ..., "total_time": ...}, ...]
    frame.columns()    # {"key": [...], "total_time": [...]}

    buckets = q.buckets("jobs.run_s", bucket_s=60)
    merged = q.fetch([["workload=stencil"], ["workload=jacobi"]])

Filter strings use the ``repro store query`` grammar
(``field<op>value`` with ``==``/``=``/``!=``/``>=``/``<=``/``>``/``<`` and
comma lists for ``in``), parsed server-side by
:func:`repro.store.query.parse_filter`.
"""

from __future__ import annotations

import asyncio
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Sequence

from .client import AsyncServiceClient, ServiceClient, _check


class QueryPayload:
    """One ``GET /query`` answer (or a merge of several), dataframe-shaped."""

    def __init__(
        self,
        column_names: "list[str]",
        rows: "list[dict]",
        snapshot: "int | None" = None,
    ) -> None:
        self._column_names = list(column_names)
        self._rows = rows
        #: The store snapshot the rows were read at (``None`` for merges of
        #: payloads that disagree — time-travel reads pin it via ``at=``).
        self.snapshot = snapshot

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryPayload":
        return cls(
            payload.get("column_names") or list(payload.get("columns", {})),
            payload.get("rows", []),
            payload.get("snapshot"),
        )

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self):
        return iter(self._rows)

    def column_names(self) -> "list[str]":
        return list(self._column_names)

    def rows(self) -> "list[dict]":
        """Records orientation: one dict per stored result."""
        return [dict(row) for row in self._rows]

    def columns(self) -> "dict[str, list]":
        """Columnar orientation: ``{column: [values]}`` (dataframe-shaped)."""
        return {
            name: [row.get(name) for row in self._rows] for name in self._column_names
        }

    def table(self) -> "tuple[list[str], list[list]]":
        """(headers, rows) for :func:`repro.harness.report.format_table`."""
        headers = self.column_names()
        return headers, [[row.get(name) for name in headers] for row in self._rows]

    @classmethod
    def merge(
        cls, payloads: "Sequence[QueryPayload]", dedupe: "str | None" = "key"
    ) -> "QueryPayload":
        """Union several payloads into one frame.

        Rows concatenate in payload order; when ``dedupe`` names a column
        present in the frame, the first row per value wins (fan-out queries
        with overlapping filters return each result once). Column order is
        the first payload's, with unseen columns appended as encountered.
        """
        names: "list[str]" = []
        for payload in payloads:
            for name in payload._column_names:
                if name not in names:
                    names.append(name)
        rows: "list[dict]" = []
        seen: "set" = set()
        for payload in payloads:
            for row in payload._rows:
                if dedupe is not None and dedupe in row:
                    marker = row[dedupe]
                    if marker in seen:
                        continue
                    seen.add(marker)
                rows.append(dict(row))
        snapshots = {payload.snapshot for payload in payloads}
        snapshot = snapshots.pop() if len(snapshots) == 1 else None
        return cls(names, rows, snapshot)


def _query_path(
    where: "Iterable[str] | None",
    columns: "Iterable[str] | None",
    order_by: "str | None",
    limit: "int | None",
    at: "int | str | None",
) -> str:
    params: "list[tuple[str, str]]" = [("where", clause) for clause in (where or [])]
    if columns:
        params.append(("columns", ",".join(columns)))
    if order_by:
        params.append(("order_by", order_by))
    if limit is not None:
        params.append(("limit", str(limit)))
    if at is not None:
        params.append(("at", str(at)))
    query = urllib.parse.urlencode(params)
    return "/query" + (f"?{query}" if query else "")


def _buckets_path(
    name: "str | None",
    bucket_s: float,
    start: "float | None",
    end: "float | None",
) -> str:
    if name is None:
        return "/query/buckets"
    params = [("name", name), ("bucket", str(bucket_s))]
    if start is not None:
        params.append(("start", str(start)))
    if end is not None:
        params.append(("end", str(end)))
    return "/query/buckets?" + urllib.parse.urlencode(params)


class QueryClient:
    """Blocking analytics client; fans composed fetches over a thread pool."""

    def __init__(
        self, url: "str | None" = None, timeout: float = 30.0, pool_size: int = 4
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool size must be at least 1")
        self._client = ServiceClient(url, timeout=timeout)
        self.pool_size = pool_size

    def query(
        self,
        where: "Iterable[str] | None" = None,
        columns: "Iterable[str] | None" = None,
        order_by: "str | None" = None,
        limit: "int | None" = None,
        at: "int | str | None" = None,
    ) -> QueryPayload:
        """One filtered/projected read over the service's result store."""
        path = _query_path(where, columns, order_by, limit, at)
        payload = _check(*self._client._request("GET", path), accept=(200,))
        return QueryPayload.from_payload(payload)

    def buckets(
        self,
        name: str,
        bucket_s: float = 60.0,
        start: "float | None" = None,
        end: "float | None" = None,
    ) -> dict:
        """Server-side floor-aligned buckets over one metric series."""
        path = _buckets_path(name, bucket_s, start, end)
        return _check(*self._client._request("GET", path), accept=(200,))

    def series_names(self) -> "list[str]":
        """The metric series available to :meth:`buckets`."""
        payload = _check(
            *self._client._request("GET", "/query/buckets"), accept=(200,)
        )
        return payload.get("series", [])

    def fetch(
        self,
        filter_sets: "Sequence[Iterable[str]]",
        columns: "Iterable[str] | None" = None,
        order_by: "str | None" = None,
        limit: "int | None" = None,
        at: "int | str | None" = None,
        dedupe: "str | None" = "key",
    ) -> QueryPayload:
        """Fan out one query per filter set concurrently; merge the answers.

        ``columns``/``order_by``/``limit``/``at`` apply to every leg. The
        merged frame deduplicates rows by the ``dedupe`` column (default:
        the config fingerprint), so overlapping filters stay a union, not
        a multiset.
        """
        if not filter_sets:
            return QueryPayload([], [])
        columns = list(columns) if columns else None
        workers = min(self.pool_size, len(filter_sets))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            payloads = list(
                pool.map(
                    lambda clauses: self.query(
                        where=clauses,
                        columns=columns,
                        order_by=order_by,
                        limit=limit,
                        at=at,
                    ),
                    filter_sets,
                )
            )
        return QueryPayload.merge(payloads, dedupe=dedupe)


class AsyncQueryClient:
    """Asyncio analytics client; composed fetches gather under a semaphore."""

    def __init__(
        self, url: "str | None" = None, timeout: float = 30.0, pool_size: int = 4
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool size must be at least 1")
        self._client = AsyncServiceClient(url, timeout=timeout)
        self.pool_size = pool_size

    async def query(
        self,
        where: "Iterable[str] | None" = None,
        columns: "Iterable[str] | None" = None,
        order_by: "str | None" = None,
        limit: "int | None" = None,
        at: "int | str | None" = None,
    ) -> QueryPayload:
        """One filtered/projected read over the service's result store."""
        path = _query_path(where, columns, order_by, limit, at)
        payload = _check(*await self._client._request("GET", path), accept=(200,))
        return QueryPayload.from_payload(payload)

    async def buckets(
        self,
        name: str,
        bucket_s: float = 60.0,
        start: "float | None" = None,
        end: "float | None" = None,
    ) -> dict:
        """Server-side floor-aligned buckets over one metric series."""
        path = _buckets_path(name, bucket_s, start, end)
        return _check(*await self._client._request("GET", path), accept=(200,))

    async def series_names(self) -> "list[str]":
        """The metric series available to :meth:`buckets`."""
        payload = _check(
            *await self._client._request("GET", "/query/buckets"), accept=(200,)
        )
        return payload.get("series", [])

    async def fetch(
        self,
        filter_sets: "Sequence[Iterable[str]]",
        columns: "Iterable[str] | None" = None,
        order_by: "str | None" = None,
        limit: "int | None" = None,
        at: "int | str | None" = None,
        dedupe: "str | None" = "key",
    ) -> QueryPayload:
        """Concurrent composed fetch (bounded by ``pool_size``), merged."""
        if not filter_sets:
            return QueryPayload([], [])
        columns = list(columns) if columns else None
        gate = asyncio.Semaphore(self.pool_size)

        async def _one(clauses: "Iterable[str]") -> QueryPayload:
            async with gate:
                return await self.query(
                    where=clauses, columns=columns, order_by=order_by, limit=limit, at=at
                )

        payloads = await asyncio.gather(*(_one(clauses) for clauses in filter_sets))
        return QueryPayload.merge(list(payloads), dedupe=dedupe)
