"""Declarative SLOs evaluated live against the service's time-series.

An :class:`SLO` names a series, an objective (the fraction of *good*
samples), and an evaluation window. Two shapes:

* **latency** — ``threshold_s`` set: a sample is good when its value is at
  or under the threshold (e.g. "99% of jobs finish within 30 s over the
  last hour");
* **availability** — ``threshold_s`` unset, over a 0/1 series: a sample is
  good when non-zero (the service records ``jobs.ok`` as 1 per success, 0
  per failure, so this is the error budget).

Evaluation reports compliance, the remaining error budget, and the **burn
rate** — ``bad_fraction / (1 - objective)`` — the standard SRE signal: a
burn rate of 1.0 spends exactly the budget over the window; above 1.0 the
budget exhausts early. An SLO with no samples in its window reports
``ok: true`` with ``total: 0`` (no evidence of breach).

The default SLOs can be replaced wholesale via ``REPRO_SERVICE_SLO`` — a
JSON list of objects with the :class:`SLO` field names — and the result
surfaces on ``GET /healthz`` and the ``repro slo`` CLI verb.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..errors import ServiceError
from .timeseries import SeriesStore

#: Environment knob holding a JSON list of SLO definitions.
SLO_ENV = "REPRO_SERVICE_SLO"


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a recorded series."""

    name: str
    series: str
    objective: float
    window_s: float = 3600.0
    threshold_s: "float | None" = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"SLO {self.name}: objective must be in (0, 1)")
        if self.window_s <= 0:
            raise ValueError(f"SLO {self.name}: window_s must be positive")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "series": self.series,
            "objective": self.objective,
            "window_s": self.window_s,
            "threshold_s": self.threshold_s,
        }


#: Shipped defaults: submit→result latency and job availability.
DEFAULT_SLOS: "tuple[SLO, ...]" = (
    SLO(name="job-latency-30s", series="jobs.total_s", objective=0.99, threshold_s=30.0),
    SLO(name="job-availability", series="jobs.ok", objective=0.99),
)


def slos_from_env(env: "dict[str, str] | None" = None) -> "tuple[SLO, ...]":
    """The active SLO set: ``REPRO_SERVICE_SLO`` JSON, else the defaults.

    Raises :class:`~repro.errors.ServiceError` on malformed JSON or field
    errors — a service must not come up silently unprotected.
    """
    raw = (env if env is not None else os.environ).get(SLO_ENV, "")
    if not raw:
        return DEFAULT_SLOS
    try:
        payload = json.loads(raw)
        if not isinstance(payload, list):
            raise ValueError("expected a JSON list of SLO objects")
        return tuple(SLO(**item) for item in payload)
    except (ValueError, TypeError) as exc:
        raise ServiceError(f"bad {SLO_ENV}: {exc}") from exc


def evaluate_slo(slo: SLO, series: SeriesStore, now: "float | None" = None) -> dict:
    """Evaluate one SLO against the store's trailing window."""
    if now is None:
        now = series._clock()
    samples = series.window(slo.series, start=now - slo.window_s, end=now)
    total = len(samples)
    if slo.threshold_s is not None:
        good = sum(1 for _, value in samples if value <= slo.threshold_s)
    else:
        good = sum(1 for _, value in samples if value)
    bad_fraction = 0.0 if total == 0 else (total - good) / total
    budget = 1.0 - slo.objective
    burn_rate = bad_fraction / budget
    compliance = 1.0 if total == 0 else good / total
    return {
        "name": slo.name,
        "series": slo.series,
        "objective": slo.objective,
        "window_s": slo.window_s,
        "threshold_s": slo.threshold_s,
        "total": total,
        "good": good,
        "compliance": compliance,
        "burn_rate": burn_rate,
        "error_budget_remaining": max(0.0, 1.0 - burn_rate),
        "ok": total == 0 or compliance >= slo.objective,
    }


def evaluate_slos(
    slos: "tuple[SLO, ...]", series: SeriesStore, now: "float | None" = None
) -> "list[dict]":
    """Evaluate every SLO (the ``/healthz`` ``slo`` payload)."""
    return [evaluate_slo(slo, series, now) for slo in slos]
