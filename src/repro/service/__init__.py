"""repro.service — simulation-as-a-service over the harness runner.

The ROADMAP's serving tier: instead of every consumer calling
``run_many()`` in-process, a single service process owns the queue and the
process pool, and clients submit jobs over a JSON/HTTP API
(``repro serve`` / ``repro submit``). Four pieces (``docs/SERVICE.md`` has
the full reference):

* :class:`JobQueue` (``queue.py``) — bounded priority queue with
  backpressure and request coalescing on config fingerprints;
* :class:`BatchScheduler` (``scheduler.py``) — drains the queue on a
  size/age window into :func:`repro.harness.runner.run_many_settled`
  batches, with bounded per-job retry and graceful drain;
* :class:`SimulationService` (``server.py``) + the client SDKs
  (``client.py``) — the asyncio HTTP frontend and its blocking/async
  consumers;
* :class:`ServiceMetrics` (``metrics.py``) — queue depth, latency
  histograms, coalescing/retry/rejection counters, published through
  :class:`repro.obs.CounterRegistry` and served at ``GET /metrics``.

Everything is stdlib-only (asyncio + http.client); simulations themselves
run through the existing cached, analyzed, process-pooled harness runner.
"""

from .client import AsyncServiceClient, ClientError, JobFailed, ServiceClient, service_url
from .metrics import LATENCY_BUCKETS_S, ServiceMetrics
from .queue import Job, JobQueue, JobState, QueueFull, ServiceClosed
from .scheduler import BatchScheduler
from .server import ServiceSettings, SimulationService, parse_job_payload, serve

__all__ = [
    "AsyncServiceClient",
    "BatchScheduler",
    "ClientError",
    "Job",
    "JobFailed",
    "JobQueue",
    "JobState",
    "LATENCY_BUCKETS_S",
    "QueueFull",
    "ServiceClosed",
    "ServiceClient",
    "ServiceMetrics",
    "ServiceSettings",
    "SimulationService",
    "parse_job_payload",
    "serve",
    "service_url",
]
