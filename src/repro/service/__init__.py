"""repro.service — simulation-as-a-service over the harness runner.

The ROADMAP's serving tier: instead of every consumer calling
``run_many()`` in-process, a single service process owns the queue and the
process pool, and clients submit jobs over a JSON/HTTP API
(``repro serve`` / ``repro submit``). Four pieces (``docs/SERVICE.md`` has
the full reference):

* :class:`JobQueue` (``queue.py``) — bounded priority queue with
  backpressure, request coalescing on config fingerprints, and weighted
  fair queueing across clients;
* :class:`BatchScheduler` (``scheduler.py``) — drains the queue on a
  size/age window into :func:`repro.harness.runner.run_many_settled`
  batches, with bounded per-job retry and graceful drain;
* sharding (``sharding.py``) — the service partitions jobs across N
  queue+scheduler shards by config fingerprint (:func:`shard_for_key`),
  rate-limits clients with per-client token buckets
  (:class:`RateLimiter`), and supports rolling per-shard drain
  (``POST /drain?shard=i``);
* :class:`SimulationService` (``server.py``) + the client SDKs
  (``client.py`` / ``query_client.py``) — the asyncio HTTP frontend, its
  blocking/async consumers, and the :class:`QueryClient` analytics SDK
  over the attached result store (``GET /query``,
  ``GET /query/buckets``);
* :class:`ServiceMetrics` (``metrics.py``) — queue depth, latency
  histograms, coalescing/retry/rejection counters, published through
  :class:`repro.obs.CounterRegistry` and served at ``GET /metrics`` (JSON
  or Prometheus text exposition);
* observability (``timeseries.py`` / ``slo.py`` + the queue's tracer) —
  ring-buffered metric time-series with server-side bucketing
  (``GET /metrics/series``), streamed job lifecycle events
  (``GET /jobs/{id}/events``), distributed request traces
  (``GET /traces/{id}``), and declarative SLOs with burn-rate evaluation
  on ``/healthz`` (see ``docs/OBSERVABILITY.md``).

Everything is stdlib-only (asyncio + http.client); simulations themselves
run through the existing cached, analyzed, process-pooled harness runner.
"""

from .client import AsyncServiceClient, ClientError, JobFailed, ServiceClient, service_url
from .metrics import LATENCY_BUCKETS_S, ServiceMetrics
from .query_client import AsyncQueryClient, QueryClient, QueryPayload
from .queue import Job, JobQueue, JobState, QueueFull, ServiceClosed
from .scheduler import BatchScheduler
from .server import ServiceSettings, SimulationService, parse_job_payload, serve
from .sharding import RateLimiter, TokenBucket, shard_for_key
from .slo import DEFAULT_SLOS, SLO, evaluate_slo, evaluate_slos, slos_from_env
from .timeseries import DEFAULT_SERIES_SAMPLES, SeriesStore, percentile

__all__ = [
    "AsyncQueryClient",
    "AsyncServiceClient",
    "BatchScheduler",
    "ClientError",
    "DEFAULT_SERIES_SAMPLES",
    "DEFAULT_SLOS",
    "Job",
    "JobFailed",
    "JobQueue",
    "JobState",
    "LATENCY_BUCKETS_S",
    "QueryClient",
    "QueryPayload",
    "QueueFull",
    "RateLimiter",
    "SLO",
    "SeriesStore",
    "ServiceClosed",
    "ServiceClient",
    "ServiceMetrics",
    "ServiceSettings",
    "SimulationService",
    "TokenBucket",
    "evaluate_slo",
    "evaluate_slos",
    "parse_job_payload",
    "percentile",
    "serve",
    "service_url",
    "shard_for_key",
    "slos_from_env",
]
