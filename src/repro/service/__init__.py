"""repro.service — simulation-as-a-service over the harness runner.

The ROADMAP's serving tier: instead of every consumer calling
``run_many()`` in-process, a single service process owns the queue and the
process pool, and clients submit jobs over a JSON/HTTP API
(``repro serve`` / ``repro submit``). Four pieces (``docs/SERVICE.md`` has
the full reference):

* :class:`JobQueue` (``queue.py``) — bounded priority queue with
  backpressure and request coalescing on config fingerprints;
* :class:`BatchScheduler` (``scheduler.py``) — drains the queue on a
  size/age window into :func:`repro.harness.runner.run_many_settled`
  batches, with bounded per-job retry and graceful drain;
* :class:`SimulationService` (``server.py``) + the client SDKs
  (``client.py``) — the asyncio HTTP frontend and its blocking/async
  consumers;
* :class:`ServiceMetrics` (``metrics.py``) — queue depth, latency
  histograms, coalescing/retry/rejection counters, published through
  :class:`repro.obs.CounterRegistry` and served at ``GET /metrics`` (JSON
  or Prometheus text exposition);
* observability (``timeseries.py`` / ``slo.py`` + the queue's tracer) —
  ring-buffered metric time-series with server-side bucketing
  (``GET /metrics/series``), streamed job lifecycle events
  (``GET /jobs/{id}/events``), distributed request traces
  (``GET /traces/{id}``), and declarative SLOs with burn-rate evaluation
  on ``/healthz`` (see ``docs/OBSERVABILITY.md``).

Everything is stdlib-only (asyncio + http.client); simulations themselves
run through the existing cached, analyzed, process-pooled harness runner.
"""

from .client import AsyncServiceClient, ClientError, JobFailed, ServiceClient, service_url
from .metrics import LATENCY_BUCKETS_S, ServiceMetrics
from .queue import Job, JobQueue, JobState, QueueFull, ServiceClosed
from .scheduler import BatchScheduler
from .server import ServiceSettings, SimulationService, parse_job_payload, serve
from .slo import DEFAULT_SLOS, SLO, evaluate_slo, evaluate_slos, slos_from_env
from .timeseries import DEFAULT_SERIES_SAMPLES, SeriesStore, percentile

__all__ = [
    "AsyncServiceClient",
    "BatchScheduler",
    "ClientError",
    "DEFAULT_SERIES_SAMPLES",
    "DEFAULT_SLOS",
    "Job",
    "JobFailed",
    "JobQueue",
    "JobState",
    "LATENCY_BUCKETS_S",
    "QueueFull",
    "SLO",
    "SeriesStore",
    "ServiceClosed",
    "ServiceClient",
    "ServiceMetrics",
    "ServiceSettings",
    "SimulationService",
    "evaluate_slo",
    "evaluate_slos",
    "parse_job_payload",
    "percentile",
    "serve",
    "service_url",
    "slos_from_env",
]
